//! Supervision integration: a panicking per-entity operator must be
//! contained — the entity is restarted, then quarantined, the rest of the
//! fleet keeps processing, and the health report tells the story.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::{ComponentStatus, DatacronConfig, DatacronSystem, RejectReason};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::store::StoreConfig;

fn extent() -> BoundingBox {
    BoundingBox::new(0.0, 38.0, 6.0, 42.0)
}

fn rep(entity: u64, t_s: i64, lon: f64) -> PositionReport {
    PositionReport {
        speed_mps: 8.0,
        heading_deg: 90.0,
        ..PositionReport::basic(
            EntityId::vessel(entity),
            Timestamp::from_secs(t_s),
            GeoPoint::new(lon, 40.0),
        )
    }
}

#[test]
fn panicking_entity_is_restarted_then_quarantined_while_fleet_survives() {
    let config = DatacronConfig::maritime(extent());
    let max_restarts = config.supervision.max_restarts;
    let mut layer = RealTimeLayer::new(config, Vec::new(), Vec::new());
    // Entity 13 is poisoned: its records blow up the attached stage.
    layer.attach_entity_stage(|r: &PositionReport| {
        assert!(r.entity != EntityId::vessel(13), "poison record");
    });

    let mut lon_ok = 0.5f64;
    let mut lon_bad = 2.5f64;
    let mut poisoned_outputs = Vec::new();
    for i in 0..40i64 {
        // The healthy entity processes normally throughout.
        let out = layer.ingest(rep(1, i * 10, lon_ok));
        assert!(out.accepted, "healthy entity must not be affected at step {i}");
        poisoned_outputs.push(layer.ingest(rep(13, i * 10, lon_bad)));
        lon_ok += 0.001;
        lon_bad += 0.001;
    }

    // Every poisoned record was rejected, none accepted.
    assert!(poisoned_outputs.iter().all(|o| !o.accepted));
    // First records hit the panic (restart); later ones are quarantined
    // before reaching the pipeline.
    let panics = poisoned_outputs
        .iter()
        .filter(|o| o.rejected == Some(RejectReason::ProcessingPanic))
        .count();
    let quarantined = poisoned_outputs
        .iter()
        .filter(|o| o.rejected == Some(RejectReason::Quarantined))
        .count();
    assert_eq!(panics as u32, max_restarts + 1, "restarts are bounded");
    assert_eq!(panics + quarantined, 40);

    let health = layer.health();
    assert_eq!(health.status, ComponentStatus::Degraded);
    assert_eq!(health.panics as u32, max_restarts + 1);
    assert_eq!(health.restarts as u32, max_restarts + 1);
    assert_eq!(health.quarantined_entities, 1);
    assert_eq!(health.degraded.len(), 1);
    assert_eq!(health.degraded[0].entity, EntityId::vessel(13));
    assert_eq!(health.degraded[0].status, ComponentStatus::Quarantined);
    assert_eq!(health.accepted, 40, "the healthy entity's records all landed");
    assert_eq!(health.rejected, 40, "the poisoned entity's records all dead-lettered");

    // The dead-letter topic carries the full rejection history.
    let dead = layer
        .dead_letters
        .consumer()
        .drain()
        .expect("unbounded topic never lags");
    assert_eq!(dead.len(), 40);
    assert!(dead.iter().all(|d| d.report.entity == EntityId::vessel(13)));
}

#[test]
fn system_surfaces_health_in_situation_picture() {
    let config = DatacronConfig::maritime(extent());
    let mut system = DatacronSystem::new(config, Vec::new(), Vec::new(), StoreConfig::default());
    system.realtime.attach_entity_stage(|r: &PositionReport| {
        assert!(r.entity != EntityId::vessel(13), "poison record");
    });
    let mut lon = 0.5f64;
    for i in 0..20i64 {
        system.ingest(rep(1, i * 10, lon));
        system.ingest(rep(13, i * 10, lon + 2.0));
        lon += 0.001;
    }
    let health = system.health();
    assert_eq!(health.status, ComponentStatus::Degraded);
    assert_eq!(health.quarantined_entities, 1);
    assert!(health.panics > 0);

    let picture = system.situation(2, 10.0);
    assert_eq!(picture.health.status, ComponentStatus::Degraded);
    assert_eq!(picture.health.quarantined_entities, 1);
    assert_eq!(picture.health.accepted, 20);
    // The dead-letter topic is part of the health report's topic view.
    let dl = picture
        .health
        .topics
        .iter()
        .find(|t| t.name == "dead-letters")
        .expect("dead-letter topic in health report");
    assert_eq!(dl.end_offset, 20);
    // Only the healthy entity contributes a situation entry.
    assert_eq!(picture.entries.len(), 1);
    assert_eq!(picture.entries[0].entity, EntityId::vessel(1));
}

#[test]
fn clean_run_reports_all_ok() {
    let config = DatacronConfig::maritime(extent());
    let mut layer = RealTimeLayer::new(config, Vec::new(), Vec::new());
    let mut lon = 0.5f64;
    for i in 0..30i64 {
        layer.ingest(rep(1, i * 10, lon));
        lon += 0.001;
    }
    let health = layer.health();
    assert!(health.is_all_ok(), "{health:?}");
    assert_eq!(health.accepted, 30);
    assert_eq!(health.rejected, 0);
    assert!(health.degraded.is_empty());
    assert!(health.topics.iter().all(|t| t.is_lossless()));
}

//! Sharded-vs-single-threaded equivalence: the `ShardedRealTimeLayer` must
//! produce an output stream **positionally identical** to a plain
//! `RealTimeLayer` fed the same input — per-record outputs, end-of-stream
//! flush, health counters and dead-letter labels — for every shard count,
//! with and without fault injection, and lose nothing on shutdown.

use datacron::core::realtime::{HealthReport, IngestOutput, RealTimeLayer};
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;
use datacron::synopses::CriticalPoint;

const SEEDS: [u64; 4] = [3, 11, 42, 9001];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(-6.0, 36.0, 6.0, 44.0))
}

type Context = (Vec<(u64, Polygon)>, Vec<(u64, GeoPoint)>);

fn context() -> Context {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(-1.0, 39.0, 1.0, 41.0))),
        (8u64, Polygon::rect(BoundingBox::new(1.5, 37.5, 3.5, 39.5))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.0, 40.0)), (4u64, GeoPoint::new(2.0, 38.0))];
    (regions, ports)
}

/// A seeded maneuvering fleet: legs of steady cruising punctuated by turns
/// and speed changes, so every stage of the chain (synopses, area events,
/// links, RDF) does real work.
fn fleet(seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    let entities = 10 + seed % 5;
    let reports_each = 60i64;
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-2.0, 3.0), rng.uniform(38.0, 41.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(5, 20),
        })
        .collect();
    let mut out = Vec::new();
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(5, 20);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

/// A per-entity stage that panics on one poisoned entity, exercising
/// supervision (restarts, quarantine, dead letters) identically in the
/// single-threaded and sharded runs.
fn poison_stage(r: &PositionReport) {
    assert!(r.entity != EntityId::vessel(3), "poison record");
}

struct SingleRun {
    outputs: Vec<IngestOutput>,
    flush: Vec<CriticalPoint>,
    health: HealthReport,
}

fn run_single(input: &[PositionReport], poisoned: bool) -> SingleRun {
    let (regions, ports) = context();
    let mut layer = RealTimeLayer::new(config(), regions, ports);
    if poisoned {
        layer.attach_entity_stage(poison_stage);
    }
    let outputs: Vec<IngestOutput> = input.iter().map(|r| layer.ingest(*r)).collect();
    let flush = layer.flush();
    let health = layer.health();
    SingleRun { outputs, flush, health }
}

/// Runs the same input through the sharded layer and asserts bit-for-bit
/// equivalence with the single-threaded reference (outputs compared via
/// their `Debug` form, which spells every `f64` exactly as produced).
fn assert_equivalent(input: &[PositionReport], reference: &SingleRun, shards: usize, poisoned: bool, label: &str) {
    let (regions, ports) = context();
    let mut sharded = ShardedRealTimeLayer::with_setup(
        config(),
        regions,
        ports,
        ShardedConfig::with_shards(shards),
        move |layer| {
            if poisoned {
                layer.attach_entity_stage(poison_stage);
            }
        },
    );
    let mut got = Vec::new();
    for chunk in input.chunks(256) {
        sharded.ingest_batch(chunk.iter().copied());
        got.extend(sharded.poll_outputs());
    }
    let flush = sharded.flush();
    let done = sharded.finish();
    got.extend(done.outputs);

    assert_eq!(done.submitted, input.len() as u64, "{label}");
    assert_eq!(done.merged, input.len() as u64, "{label}: lossless merge");
    assert_eq!(done.duplicates, 0, "{label}: exactly-once");
    assert_eq!(got.len(), reference.outputs.len(), "{label}");
    for (i, (g, e)) in got.iter().zip(&reference.outputs).enumerate() {
        // Debug form spells every f64 bit-faithfully (and NaN == NaN as
        // text, which chaos-corrupted records require).
        assert_eq!(
            format!("{:?}", g.report),
            format!("{:?}", input[i]),
            "{label}: record {i} arrives in submission order"
        );
        assert_eq!(
            format!("{:?}", g.output),
            format!("{e:?}"),
            "{label}: output {i} must be bit-identical"
        );
    }
    // Dead-letter equivalence in global order: the rejection labels ride on
    // the merged output stream.
    let got_rejects: Vec<_> = got.iter().map(|o| o.output.rejected).collect();
    let want_rejects: Vec<_> = reference.outputs.iter().map(|o| o.rejected).collect();
    assert_eq!(got_rejects, want_rejects, "{label}: dead-letter labels");

    assert_eq!(
        format!("{flush:?}"),
        format!("{:?}", reference.flush),
        "{label}: end-of-stream flush"
    );
    assert_eq!(
        format!("{:?}", done.health),
        format!("{:?}", reference.health),
        "{label}: merged health report"
    );
}

#[test]
fn sharded_output_stream_matches_single_threaded() {
    for seed in SEEDS {
        let input = fleet(seed);
        let reference = run_single(&input, false);
        assert!(
            reference.outputs.iter().any(|o| !o.critical_points.is_empty()),
            "seed {seed}: the fleet must exercise the synopses stage"
        );
        for shards in SHARD_COUNTS {
            assert_equivalent(&input, &reference, shards, false, &format!("seed {seed}, {shards} shards"));
        }
    }
}

#[test]
fn sharded_run_matches_under_fault_injection_and_supervision() {
    for seed in SEEDS {
        // Materialise the chaos stream once: ChaosSource is deterministic
        // for a seed, and both runs must see the byte-identical input.
        let input: Vec<PositionReport> =
            ChaosSource::new(fleet(seed).into_iter(), FaultPlan::chaos(seed)).collect();
        let reference = run_single(&input, true);
        assert!(
            reference.health.panics > 0,
            "seed {seed}: the poisoned entity must exercise supervision"
        );
        for shards in SHARD_COUNTS {
            assert_equivalent(
                &input,
                &reference,
                shards,
                true,
                &format!("chaos seed {seed}, {shards} shards"),
            );
        }
    }
}

#[test]
fn shutdown_drains_everything_without_loss_or_duplication() {
    let input = fleet(42);
    let (regions, ports) = context();
    let mut sharded =
        ShardedRealTimeLayer::new(config(), regions, ports, ShardedConfig::with_shards(4));
    // Submit everything and immediately shut down, never polling: finish
    // must still drain and merge every in-flight record exactly once.
    sharded.ingest_batch(input.iter().copied());
    let done = sharded.finish();
    assert_eq!(done.submitted, input.len() as u64);
    assert_eq!(done.merged, input.len() as u64);
    assert_eq!(done.duplicates, 0);
    assert_eq!(done.outputs.len(), input.len());
    for (i, out) in done.outputs.iter().enumerate() {
        assert_eq!(out.report, input[i], "record {i} in submission order");
    }
    let processed: u64 = done.health.accepted + done.health.rejected;
    assert_eq!(processed, input.len() as u64, "every record accounted for");
}

//! Admission-window property tests: with `max_in_flight` set, the sharded
//! layer's reorder buffer must never exceed the window — under every chaos
//! seed and shard count — and bounding the window must not change a single
//! output bit relative to an unbounded run.

use datacron::core::sharded::{ShardedRealTimeLayer, ShardedShutdown};
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

/// The repo-wide chaos seeds (see tests/chaos.rs and .github/workflows).
const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WINDOW: usize = 64;

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(-6.0, 36.0, 6.0, 44.0))
}

type Context = (Vec<(u64, Polygon)>, Vec<(u64, GeoPoint)>);

fn context() -> Context {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(-1.0, 39.0, 1.0, 41.0))),
        (8u64, Polygon::rect(BoundingBox::new(1.5, 37.5, 3.5, 39.5))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.0, 40.0)), (4u64, GeoPoint::new(2.0, 38.0))];
    (regions, ports)
}

/// Same maneuvering-fleet generator as tests/sharded_equivalence.rs so the
/// window is exercised against realistic multi-stage work.
fn fleet(seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    let entities = 10 + seed % 5;
    let reports_each = 60i64;
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-2.0, 3.0), rng.uniform(38.0, 41.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(5, 20),
        })
        .collect();
    let mut out = Vec::new();
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(5, 20);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

fn chaos_input(seed: u64) -> Vec<PositionReport> {
    ChaosSource::new(fleet(seed).into_iter(), FaultPlan::chaos(seed)).collect()
}

/// Runs the input through a sharded layer with the given window, polling
/// between chunks like a real caller, and returns the merged stream plus
/// shutdown accounting.
fn run_sharded(
    input: &[PositionReport],
    shards: usize,
    max_in_flight: Option<usize>,
) -> (Vec<String>, String, ShardedShutdown) {
    let (regions, ports) = context();
    let mut sharded = ShardedRealTimeLayer::new(
        config(),
        regions,
        ports,
        ShardedConfig { max_in_flight, ..ShardedConfig::with_shards(shards) },
    );
    let mut got = Vec::new();
    for chunk in input.chunks(256) {
        sharded.ingest_batch(chunk.iter().copied());
        got.extend(sharded.poll_outputs());
    }
    let flush = sharded.flush();
    let done = sharded.finish();
    got.extend(done.outputs.iter().cloned());
    let rendered: Vec<String> = got.iter().map(|o| format!("{o:?}")).collect();
    (rendered, format!("{flush:?}"), done)
}

#[test]
fn reorder_buffer_never_exceeds_the_window_under_chaos() {
    for seed in SEEDS {
        let input = chaos_input(seed);
        for shards in SHARD_COUNTS {
            let (_, _, done) = run_sharded(&input, shards, Some(WINDOW));
            let label = format!("chaos seed {seed}, {shards} shards");
            assert!(
                done.max_reorder <= WINDOW,
                "{label}: max_pending {} exceeded the {WINDOW}-record window",
                done.max_reorder
            );
            assert_eq!(done.submitted, input.len() as u64, "{label}");
            assert_eq!(done.merged, input.len() as u64, "{label}: lossless merge");
            assert_eq!(done.late, 0, "{label}: no late arrivals");
            assert_eq!(done.duplicates, 0, "{label}: exactly-once");
        }
    }
}

#[test]
fn bounded_window_outputs_are_bit_identical_to_unbounded() {
    // The window changes scheduling, never results: for each seed and shard
    // count the bounded run's merged stream, flush, and health must render
    // byte-identically to an unbounded run of the same input.
    for seed in [42u64, 0xDEAD_BEEF] {
        let input = chaos_input(seed);
        for shards in SHARD_COUNTS {
            let label = format!("chaos seed {seed}, {shards} shards");
            let (bounded, bounded_flush, bounded_done) =
                run_sharded(&input, shards, Some(WINDOW));
            let (unbounded, unbounded_flush, unbounded_done) =
                run_sharded(&input, shards, None);
            assert_eq!(bounded.len(), unbounded.len(), "{label}");
            for (i, (b, u)) in bounded.iter().zip(&unbounded).enumerate() {
                assert_eq!(b, u, "{label}: output {i} must be bit-identical");
            }
            assert_eq!(bounded_flush, unbounded_flush, "{label}: end-of-stream flush");
            assert_eq!(
                format!("{:?}", bounded_done.health),
                format!("{:?}", unbounded_done.health),
                "{label}: merged health"
            );
            assert!(bounded_done.max_reorder <= WINDOW, "{label}: window held");
        }
    }
}

#[test]
fn tiny_window_still_merges_everything() {
    // Degenerate windows (1 record in flight) serialize the pipeline but
    // must stay lossless and ordered.
    let input = chaos_input(7);
    for window in [1usize, 2, 8] {
        let (_, _, done) = run_sharded(&input, 4, Some(window));
        assert!(done.max_reorder <= window, "window {window}");
        assert_eq!(done.merged, input.len() as u64, "window {window}: lossless");
        assert_eq!(done.duplicates, 0);
    }
}

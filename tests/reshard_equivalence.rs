//! Resize-equivalence chaos suite: a `ShardedRealTimeLayer` that resizes
//! 2 → 8 → 4 *mid-stream* must produce outputs, end-of-stream flush,
//! merged health and dead-letter labels bit-identical to a run whose
//! shard count was fixed from the start — under every chaos seed — and
//! the skewed-key scenario (one entity emitting half the traffic) must
//! end below the rebalance policy's imbalance threshold after the
//! hot key is pinned.
//!
//! Satellite properties ride along: `ShardAssigner` routing is total and
//! stable for any shard count, and a resize's migration plan moves
//! exactly the entities whose route changed (minimal movement, unlike a
//! naive full rehash).

use datacron::core::realtime::{IngestOutput, RealTimeLayer};
use datacron::core::sharded::{
    repartition_states, ResizeError, ShardOutput, ShardedRealTimeLayer,
};
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::{RebalancePolicy, ShardAssigner, ShardedConfig};
use proptest::prelude::*;

/// The eight fixed chaos seeds; CI runs the same set in the
/// `reshard-chaos` job.
const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(-6.0, 36.0, 6.0, 44.0))
}

type Context = (Vec<(u64, Polygon)>, Vec<(u64, GeoPoint)>);

fn context() -> Context {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(-1.0, 39.0, 1.0, 41.0))),
        (8u64, Polygon::rect(BoundingBox::new(1.5, 37.5, 3.5, 39.5))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.0, 40.0)), (4u64, GeoPoint::new(2.0, 38.0))];
    (regions, ports)
}

/// A seeded maneuvering fleet (as in `sharded_equivalence`): legs of
/// steady cruising punctuated by turns, so every stage of the chain does
/// real work and cleaning has something to reject once chaos corrupts it.
fn fleet(seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    let entities = 10 + seed % 5;
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-2.0, 3.0), rng.uniform(38.0, 41.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(5, 20),
        })
        .collect();
    let mut out = Vec::new();
    for t in 0..60i64 {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(5, 20);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

/// The faulted stream for one seed, materialised once so the elastic run
/// and the fixed-shard reference see byte-for-byte the same records
/// (drops, duplicates, reorders, corruption and all).
fn chaotic_stream(seed: u64) -> Vec<PositionReport> {
    ChaosSource::new(fleet(seed).into_iter(), FaultPlan::chaos(seed)).collect()
}

/// Everything a run must reproduce bit-identically: per-record outputs,
/// flush, merged health and the dead-letter labels (sorted, since shards
/// interleave).
struct Fingerprint {
    outputs: Vec<String>,
    flush: String,
    health: String,
    dead_letters: Vec<String>,
}

fn dead_letter_labels(layers: &[RealTimeLayer]) -> Vec<String> {
    let mut labels: Vec<String> = layers
        .iter()
        .flat_map(|l| l.checkpoint_state().dead_letters.retained)
        .map(|d| format!("{d:?}"))
        .collect();
    labels.sort();
    labels
}

/// The fixed-shard reference: `shards` workers from the first record to
/// the last (itself pinned bit-identical to the single-threaded layer by
/// `sharded_equivalence`).
fn run_fixed(stream: &[PositionReport], shards: usize) -> Fingerprint {
    let (regions, ports) = context();
    let mut layer = ShardedRealTimeLayer::new(
        config(),
        regions,
        ports,
        ShardedConfig::with_shards(shards),
    );
    let mut outputs: Vec<ShardOutput> = Vec::new();
    for r in stream {
        layer.ingest(*r);
        outputs.extend(layer.poll_outputs());
    }
    let flush = layer.flush();
    let health = layer.health();
    let done = layer.finish();
    outputs.extend(done.outputs);
    assert_eq!(done.merged, stream.len() as u64);
    Fingerprint {
        outputs: outputs.iter().map(|o| format!("{:?}", o.output)).collect(),
        flush: format!("{flush:?}"),
        health: format!("{health:?}"),
        dead_letters: dead_letter_labels(&done.layers),
    }
}

/// The elastic run: starts at 2 shards, resizes to 8 at one third of the
/// stream and down to 4 at two thirds, mid-ingest.
fn run_elastic(stream: &[PositionReport]) -> Fingerprint {
    let (regions, ports) = context();
    let mut layer = ShardedRealTimeLayer::new(
        config(),
        regions,
        ports,
        ShardedConfig::with_shards(2),
    );
    let mut outputs: Vec<ShardOutput> = Vec::new();
    let third = stream.len() / 3;
    for (i, r) in stream.iter().enumerate() {
        if i == third {
            let report = layer.resize(8).expect("resize 2 -> 8");
            assert_eq!((report.from_shards, report.to_shards), (2, 8));
        }
        if i == 2 * third {
            let report = layer.resize(4).expect("resize 8 -> 4");
            assert_eq!((report.from_shards, report.to_shards), (8, 4));
        }
        layer.ingest(*r);
        outputs.extend(layer.poll_outputs());
    }
    assert_eq!(layer.epoch(), 2);
    assert_eq!(layer.shards(), 4);
    let flush = layer.flush();
    let health = layer.health();
    let done = layer.finish();
    outputs.extend(done.outputs);
    // Exactly-once across all three routing epochs.
    assert_eq!(done.submitted, stream.len() as u64);
    assert_eq!(done.merged, stream.len() as u64);
    assert_eq!(done.late, 0, "no record may straddle an epoch boundary");
    assert_eq!(done.duplicates, 0);
    Fingerprint {
        outputs: outputs.iter().map(|o| format!("{:?}", o.output)).collect(),
        flush: format!("{flush:?}"),
        health: format!("{health:?}"),
        dead_letters: dead_letter_labels(&done.layers),
    }
}

#[test]
fn resize_mid_stream_is_bit_identical_to_fixed_shard_run_under_chaos() {
    for seed in SEEDS {
        let stream = chaotic_stream(seed);
        assert!(stream.len() > 100, "seed {seed}: chaos must leave a real stream");
        let fixed = run_fixed(&stream, 4);
        let elastic = run_elastic(&stream);

        assert_eq!(
            elastic.outputs.len(),
            fixed.outputs.len(),
            "seed {seed}: same record count"
        );
        for (i, (e, f)) in elastic.outputs.iter().zip(&fixed.outputs).enumerate() {
            assert_eq!(e, f, "seed {seed}: output {i} diverged across a resize");
        }
        assert_eq!(elastic.flush, fixed.flush, "seed {seed}: flush");
        assert_eq!(elastic.health, fixed.health, "seed {seed}: merged health");
        assert_eq!(
            elastic.dead_letters, fixed.dead_letters,
            "seed {seed}: dead-letter labels"
        );
    }
}

/// The same equivalence, pinned against the single-threaded layer for one
/// seed — so the elastic run is transitively anchored to the layer the
/// whole equivalence tower is built on.
#[test]
fn resize_mid_stream_matches_single_threaded_layer() {
    let stream = chaotic_stream(SEEDS[0]);
    let (regions, ports) = context();
    let mut single = RealTimeLayer::new(config(), regions, ports);
    let expected: Vec<IngestOutput> = stream.iter().map(|r| single.ingest(*r)).collect();
    let expected_flush = single.flush();
    let expected_health = single.health();
    let expected_dead: Vec<String> = {
        let mut v: Vec<String> = single
            .checkpoint_state()
            .dead_letters
            .retained
            .iter()
            .map(|d| format!("{d:?}"))
            .collect();
        v.sort();
        v
    };

    let elastic = run_elastic(&stream);
    assert_eq!(elastic.outputs.len(), expected.len());
    for (i, (e, f)) in elastic.outputs.iter().zip(&expected).enumerate() {
        assert_eq!(e, &format!("{f:?}"), "output {i}");
    }
    assert_eq!(elastic.flush, format!("{expected_flush:?}"));
    assert_eq!(elastic.health, format!("{expected_health:?}"));
    assert_eq!(elastic.dead_letters, expected_dead);
}

/// Background entity ids that hash to the same shard as `hot` — the
/// co-location that makes hot-key skew *addressable* (isolating the hot
/// key actually shrinks the max shard).
fn co_resident_ids(assigner: &ShardAssigner, hot: EntityId, n: usize) -> Vec<u64> {
    let hot_shard = assigner.assign(&hot);
    let mut out = Vec::new();
    let mut id = hot.id + 1;
    while out.len() < n {
        if assigner.assign(&EntityId::vessel(id)) == hot_shard {
            out.push(id);
        }
        id += 1;
    }
    out
}

/// The skewed-key chaos scenario: one entity emits 50% of the traffic and
/// shares its shard with the whole background fleet. The auto-rebalance
/// policy must trip, pin the hot key elsewhere, and leave the post-
/// rebalance per-shard load imbalance at the policy's achievable floor —
/// below its threshold — without disturbing a single output.
#[test]
fn skewed_hot_key_rebalances_below_policy_threshold() {
    let shards = 4usize;
    let assigner = ShardAssigner::new(shards);
    let hot = EntityId::vessel(0);
    let cold = co_resident_ids(&assigner, hot, 6);

    let mut input = Vec::new();
    for t in 0..600i64 {
        let e = if t % 2 == 0 { 0 } else { cold[(t as usize / 2) % cold.len()] };
        input.push(PositionReport {
            speed_mps: 8.0,
            heading_deg: 90.0,
            ..PositionReport::basic(
                EntityId::vessel(e),
                Timestamp::from_secs(t * 10),
                GeoPoint::new(-4.0 + 0.001 * t as f64, 38.0 + 0.0001 * e as f64),
            )
        });
    }

    let (regions, ports) = context();
    let mut single = RealTimeLayer::new(config(), regions.clone(), ports.clone());
    let expected: Vec<IngestOutput> = input.iter().map(|r| single.ingest(*r)).collect();

    let policy = RebalancePolicy {
        max_imbalance: 1.5,
        min_records: 128,
        cooldown_records: 128,
        ..RebalancePolicy::default()
    };
    let mut layer = ShardedRealTimeLayer::new(
        config(),
        regions,
        ports,
        ShardedConfig::with_shards(shards),
    );
    layer.set_rebalance_policy(policy.clone());

    let mut outputs: Vec<ShardOutput> = Vec::new();
    for (i, r) in input.iter().enumerate() {
        layer.ingest(*r);
        outputs.extend(layer.poll_outputs());
        if i % 64 == 63 {
            layer.maybe_rebalance().expect("rebalance never fails at a fixed count");
        }
    }
    assert!(layer.resizes() >= 1, "the 50% hot key must trip the policy");
    assert!(
        !layer.assigner().overrides().is_empty(),
        "the hot key must be pinned off the shared shard"
    );

    // Post-rebalance balance: loads accrued since the rebalance (the
    // current routing epoch) sit at the achievable floor.
    let loads = layer.shard_loads().to_vec();
    let max_key = layer.key_loads().iter().map(|&(_, n)| n).max().unwrap_or(0);
    let imbalance = RebalancePolicy::imbalance(&loads, max_key);
    assert!(
        imbalance <= policy.max_imbalance,
        "post-rebalance imbalance {imbalance} exceeds the policy threshold"
    );
    assert!(
        loads.iter().filter(|&&l| l > 0).count() >= 2,
        "the hot key and the background fleet must sit on different shards"
    );

    // The rebalance was invisible to the output stream.
    let done = layer.finish();
    outputs.extend(done.outputs);
    assert_eq!(outputs.len(), expected.len());
    for (i, (g, e)) in outputs.iter().zip(&expected).enumerate() {
        assert_eq!(format!("{:?}", g.output), format!("{e:?}"), "output {i}");
    }
    assert_eq!(done.late, 0);
    assert_eq!(done.duplicates, 0);
}

/// Regression (satellite): a state set whose shard count disagrees with
/// the config is a typed error from `with_states`, not a silent remap or
/// a downstream panic.
#[test]
fn with_states_shard_count_mismatch_is_a_typed_error() {
    let (regions, ports) = context();
    let mut layer = ShardedRealTimeLayer::new(
        config(),
        regions.clone(),
        ports.clone(),
        ShardedConfig::with_shards(2),
    );
    for r in fleet(3).iter().take(50) {
        layer.ingest(*r);
        layer.poll_outputs();
    }
    let states = layer.checkpoint();
    layer.finish();
    assert_eq!(states.len(), 2);

    let err = ShardedRealTimeLayer::with_states(
        config(),
        regions,
        ports,
        ShardedConfig::with_shards(5),
        states,
        |_| {},
    )
    .err()
    .expect("mismatched restore must be rejected");
    assert_eq!(err, ResizeError::StateCountMismatch { expected: 5, got: 2 });
    assert!(err.to_string().contains("5 shard state(s)"));
}

/// Real per-shard states for the migration-plan properties: a short run
/// over a 3-shard layer, checkpointed once and reused across proptest
/// cases.
fn checkpointed_states() -> &'static [datacron::core::realtime::LayerState] {
    use std::sync::OnceLock;
    static STATES: OnceLock<Vec<datacron::core::realtime::LayerState>> = OnceLock::new();
    STATES.get_or_init(|| {
        let (regions, ports) = context();
        let mut layer = ShardedRealTimeLayer::new(
            config(),
            regions,
            ports,
            ShardedConfig::with_shards(3),
        );
        for r in fleet(7).iter().take(300) {
            layer.ingest(*r);
            layer.poll_outputs();
        }
        let states = layer.checkpoint();
        layer.finish();
        states
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routing is total (always a shard in range) and stable (two
    /// assigners over the same count agree on every key) for any shard
    /// count — including with a hot-key override in play.
    #[test]
    fn assigner_routing_is_total_and_stable(
        shards in 1usize..65,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..50),
        pin_to in 0u32..u32::MAX,
    ) {
        let a = ShardAssigner::new(shards);
        let b = ShardAssigner::new(shards);
        for key in &keys {
            let shard = a.assign(key);
            prop_assert!((shard as usize) < shards, "total: {shard} < {shards}");
            prop_assert_eq!(shard, b.assign(key), "stable across construction");
            prop_assert_eq!(shard, a.assign(key), "stable across calls");
        }
        // Pin the first key somewhere explicit: only that key moves.
        let pinned_hash = datacron::geo::hash::fx_hash(&keys[0]);
        let target = pin_to % shards as u32;
        let mut overrides = datacron::geo::hash::FxHashMap::default();
        overrides.insert(pinned_hash, target);
        let pinned = ShardAssigner::with_overrides(shards, overrides);
        prop_assert_eq!(pinned.assign(&keys[0]), target);
        for key in &keys[1..] {
            if datacron::geo::hash::fx_hash(key) != pinned_hash {
                prop_assert_eq!(pinned.assign(key), a.assign(key), "unpinned keys untouched");
            }
        }
    }

    /// A resize's migration plan moves exactly the entities whose route
    /// changed: no entity whose old shard equals its new route appears in
    /// the plan (minimal movement — a naive full rehash would rebuild all
    /// placements), and every entity that did change routes is listed.
    #[test]
    fn migration_plan_moves_exactly_the_rerouted_entities(new_shards in 1usize..33) {
        let states = checkpointed_states().to_vec();
        let new = ShardAssigner::new(new_shards);
        let (migrated, plan) = repartition_states(states.clone(), &new);
        prop_assert_eq!(migrated.len(), new_shards);
        prop_assert_eq!(plan.from_shards, states.len());
        prop_assert_eq!(plan.to_shards, new_shards);

        for (old_shard, state) in states.iter().enumerate() {
            for e in &state.entities {
                let changed = new.assign(&e.entity) as usize != old_shard;
                prop_assert_eq!(
                    plan.moved.contains(&e.entity),
                    changed,
                    "entity {:?} on shard {}: moved iff rerouted", e.entity, old_shard
                );
            }
        }
        // Minimal vs naive: never more than the full entity population,
        // and a same-count resize moves nobody.
        prop_assert!(plan.moved.len() <= plan.total_entities);
        if new_shards == states.len() {
            prop_assert!(plan.moved.is_empty(), "identity resize moves nothing");
        }

        // Conservation: per-entity state and merged counters survive.
        let entities = |ss: &[datacron::core::realtime::LayerState]| -> usize {
            ss.iter().map(|s| s.entities.len()).sum()
        };
        prop_assert_eq!(entities(&migrated), entities(&states));
        let accepted = |ss: &[datacron::core::realtime::LayerState]| -> u64 {
            ss.iter().map(|s| s.accepted_total).sum()
        };
        prop_assert_eq!(accepted(&migrated), accepted(&states));
        // Every entity landed on its assigned shard.
        for (shard, s) in migrated.iter().enumerate() {
            for e in &s.entities {
                prop_assert_eq!(new.assign(&e.entity) as usize, shard);
            }
        }
    }
}

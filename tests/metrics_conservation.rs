//! The metrics conservation law, asserted under chaos:
//!
//! ```text
//! ingested = accepted + dead_lettered + dropped + in_flight
//! ```
//!
//! For the synchronous layer `dropped` and `in_flight` are zero by
//! construction, so `ingest.records == ingest.accepted +
//! ingest.dead_lettered` must hold exactly — for every fault seed, through
//! both the supervised single-threaded pipeline and the sharded pipeline —
//! and the counters must reconcile exactly against the topic statistics
//! and the dead-letter topic contents.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::{DatacronConfig, RejectReason};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::obs::MetricsSnapshot;
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

/// The eight fixed chaos seeds; CI runs the same set nightly.
const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(0.0, 38.0, 6.0, 42.0))
}

fn fleet(entities: u64, reports_each: i64) -> Vec<PositionReport> {
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.5 + 0.6 * e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..reports_each {
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: 90.0,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(90.0, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    all
}

/// Entity 2 panics on every record: exercises the supervision reject
/// paths (`panic` then, past `max_restarts`, `quarantined`) so the
/// conservation law is checked across *all* dead-letter reasons, not just
/// cleaning.
fn poison(layer: &mut RealTimeLayer) {
    layer.attach_entity_stage(|r| {
        if r.entity.id == 2 {
            panic!("injected");
        }
    });
}

/// Asserts the conservation law and the exact reconciliation of the
/// counter series against the dead-letter records and topic stats.
fn check_conservation(snap: &MetricsSnapshot, ingested: u64, dead: &[datacron::core::DeadLetter], seed: u64) {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(c("ingest.records"), ingested, "seed {seed}: every delivered record counted");
    assert_eq!(
        c("ingest.records"),
        c("ingest.accepted") + c("ingest.dead_lettered"),
        "seed {seed}: conservation law (dropped and in_flight are 0 in a drained run)"
    );

    // Per-reason counters reconcile exactly against the dead-letter topic
    // contents...
    let by_reason = |f: fn(&RejectReason) -> bool| dead.iter().filter(|d| f(&d.reason)).count() as u64;
    assert_eq!(
        c("ingest.rejected.cleaning"),
        by_reason(|r| matches!(r, RejectReason::Cleaning(_))),
        "seed {seed}"
    );
    assert_eq!(
        c("ingest.rejected.quarantined"),
        by_reason(|r| matches!(r, RejectReason::Quarantined)),
        "seed {seed}"
    );
    assert_eq!(
        c("ingest.rejected.panic"),
        by_reason(|r| matches!(r, RejectReason::ProcessingPanic)),
        "seed {seed}"
    );
    // ...and sum back to the dead-letter total, which equals the topic's
    // own published counter.
    assert_eq!(c("ingest.dead_lettered"), dead.len() as u64, "seed {seed}");
    assert_eq!(
        c("ingest.dead_lettered"),
        c("ingest.rejected.cleaning") + c("ingest.rejected.quarantined") + c("ingest.rejected.panic"),
        "seed {seed}"
    );
    assert_eq!(c("topic.dead-letters.published"), dead.len() as u64, "seed {seed}");
    assert_eq!(c("topic.cleaned.published"), c("ingest.accepted"), "seed {seed}");
    // Supervision counters agree with the panic-labelled dead letters.
    assert_eq!(c("supervision.panics"), c("ingest.rejected.panic"), "seed {seed}");
    assert_eq!(c("supervision.restarts"), c("ingest.rejected.panic"), "seed {seed}");
    // The layer topics are unbounded: nothing may ever drop or refuse.
    for t in ["cleaned", "critical-points", "area-events", "triples", "links", "dead-letters"] {
        assert_eq!(c(&format!("topic.{t}.dropped")), 0, "seed {seed}: {t}");
        assert_eq!(c(&format!("topic.{t}.rejected")), 0, "seed {seed}: {t}");
    }
}

#[test]
fn conservation_holds_under_chaos_single_threaded() {
    let input = fleet(5, 100);
    for seed in SEEDS {
        let mut chaos = ChaosSource::new(input.iter().copied(), FaultPlan::chaos(seed));
        let mut layer = RealTimeLayer::new(config(), Vec::new(), Vec::new());
        poison(&mut layer);
        let mut ingested = 0u64;
        for r in chaos.by_ref() {
            layer.ingest(r);
            ingested += 1;
        }
        layer.flush();
        assert_eq!(ingested, chaos.stats().emitted(), "seed {seed}");
        let dead = layer.dead_letters.consumer().drain().expect("unbounded topic never lags");
        check_conservation(&layer.metrics_snapshot(), ingested, &dead, seed);
    }
}

#[test]
fn conservation_holds_under_chaos_sharded() {
    let input = fleet(5, 100);
    for seed in SEEDS {
        let mut chaos = ChaosSource::new(input.iter().copied(), FaultPlan::chaos(seed));
        let stream: Vec<PositionReport> = chaos.by_ref().collect();
        let mut sharded = ShardedRealTimeLayer::with_setup(
            config(),
            Vec::new(),
            Vec::new(),
            ShardedConfig::with_shards(4),
            poison,
        );
        sharded.ingest_batch(stream.iter().copied());
        sharded.flush();
        // The merged snapshot is a consistent cut: taken at the metrics
        // barrier, after every shard drained its queue — so `in_flight` is
        // 0 and the law holds with the same exactness as single-threaded.
        let snap = sharded.metrics();
        let done = sharded.finish();
        let mut dead = Vec::new();
        for layer in &done.layers {
            dead.extend(layer.dead_letters.consumer().drain().expect("unbounded topic never lags"));
        }
        check_conservation(&snap, stream.len() as u64, &dead, seed);
    }
}

/// Mid-stream, before a barrier, the sharded law needs the `in_flight`
/// term: `submitted - merged` records are inside the executor. The
/// executor's own gauges expose exactly that quantity.
#[test]
fn in_flight_term_closes_the_law_mid_stream() {
    let input = fleet(6, 60);
    let mut sharded = ShardedRealTimeLayer::new(
        config(),
        Vec::new(),
        Vec::new(),
        ShardedConfig::with_shards(3),
    );
    sharded.ingest_batch(input.iter().copied());
    let snap = sharded.metrics();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    // After the metrics barrier every submitted record has been processed
    // by its shard; `exec.in_flight` counts those not yet merged out.
    let in_flight = snap.gauge("exec.in_flight").unwrap_or(0) as u64;
    assert_eq!(
        c("ingest.records"),
        c("ingest.accepted") + c("ingest.dead_lettered"),
        "shard-side accounting is already closed at the barrier"
    );
    assert_eq!(c("ingest.records"), input.len() as u64);
    assert!(in_flight <= input.len() as u64);
    sharded.finish();
}

//! Determinism of the count-typed metrics: for any seed and any shard
//! count, the sharded layer's merged counter series is **bit-identical**
//! to the single-threaded layer's over the same input. Gauges and
//! histograms carry wall-clock timings and instantaneous occupancies and
//! are excluded by [`MetricsSnapshot::counters_only`].

use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::system::DatacronSystem;
use datacron::core::DatacronConfig;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::store::StoreConfig;
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

const SEEDS: [u64; 4] = [3, 11, 42, 9001];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(0.0, 38.0, 6.0, 42.0))
}

/// A seed-shaped fleet with turns (critical points, CEP symbols) and a
/// chaos pass over it, so the counter series under test are non-trivial.
fn stream(seed: u64) -> Vec<PositionReport> {
    let entities = 4 + seed % 5;
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.5 + 0.5 * e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..80i64 {
            let heading = if i < 40 { 90.0 } else { 180.0 };
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: heading,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(heading, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    ChaosSource::new(all.into_iter(), FaultPlan::chaos(seed)).collect()
}

#[test]
fn sharded_counters_are_bit_identical_to_single_threaded() {
    for seed in SEEDS {
        let input = stream(seed);

        let mut single = RealTimeLayer::new(config(), Vec::new(), Vec::new());
        for r in &input {
            single.ingest(*r);
        }
        single.flush();
        let expected = single.metrics_snapshot().counters_only();
        assert!(
            expected.counter("ingest.records").unwrap_or(0) > 0,
            "seed {seed}: the fixture must exercise the counters"
        );

        for shards in SHARD_COUNTS {
            let mut sharded = ShardedRealTimeLayer::new(
                config(),
                Vec::new(),
                Vec::new(),
                ShardedConfig::with_shards(shards),
            );
            sharded.ingest_batch(input.iter().copied());
            sharded.flush();
            let got = sharded.metrics().counters_only();
            sharded.finish();
            // Structural equality of the sorted series == bit-identity,
            // and the JSON expositions agree byte-for-byte.
            assert_eq!(got, expected, "seed {seed}, {shards} shards");
            assert_eq!(got.to_json(), expected.to_json(), "seed {seed}, {shards} shards");
        }
    }
}

#[test]
fn system_metrics_are_deterministic_across_identical_runs() {
    let input = stream(42);
    let run = || {
        let mut system =
            DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
        for r in &input {
            system.ingest(*r);
        }
        system.sync_batch();
        system.metrics()
    };
    let a = run();
    let b = run();
    // Counters (including the topic.* folds with their consumed counts
    // from the batch-layer subscription) are fully deterministic...
    assert_eq!(a.counters_only(), b.counters_only());
    assert_eq!(a.counters_only().to_json(), b.counters_only().to_json());
    // ...and the full snapshot keeps deterministic *structure*: the same
    // instruments exist in the same order, whatever their timing values.
    let names = |s: &datacron::obs::MetricsSnapshot| {
        (
            s.counters().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            s.gauges().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            s.histograms().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(names(&a), names(&b));
}

#[test]
fn disabled_metrics_yield_empty_snapshots_and_identical_outputs() {
    let input = stream(11);
    let mut on = RealTimeLayer::new(config(), Vec::new(), Vec::new());
    let mut cfg_off = config();
    cfg_off.metrics = false;
    let mut off = RealTimeLayer::new(cfg_off, Vec::new(), Vec::new());

    let out_on: Vec<String> = input.iter().map(|r| format!("{:?}", on.ingest(*r))).collect();
    let out_off: Vec<String> = input.iter().map(|r| format!("{:?}", off.ingest(*r))).collect();
    assert_eq!(out_on, out_off, "instrumentation must never change pipeline outputs");

    let snap = off.metrics_snapshot();
    assert!(snap.counters().is_empty());
    assert!(snap.gauges().is_empty());
    assert!(snap.histograms().is_empty());
    assert!(!on.metrics_snapshot().counters().is_empty());
}

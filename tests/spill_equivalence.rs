//! Spill/rehydrate equivalence: a run under a resident-entity budget
//! (`DatacronConfig::max_resident_entities`) — cold entities evicted into
//! the spill store and rehydrated on their next report — must be
//! **bit-identical** to a fully-resident run: per-record outputs, all six
//! topic contents, end-of-stream flush, health, dead-letter labels and
//! every count-typed metric. Pinned under the 8 chaos seeds, single and
//! sharded, for tight (4), loose (64) and absent budgets, through the
//! directory tier, across supervision quarantines, and across a
//! crash/recover cycle with spill enabled.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::{DatacronConfig, DatacronSystem, DurabilityConfig};
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::obs::MetricsSnapshot;
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];

fn config(budget: Option<usize>) -> DatacronConfig {
    let mut c = DatacronConfig::maritime(BoundingBox::new(-6.0, 36.0, 6.0, 44.0));
    c.max_resident_entities = budget;
    c
}

type Context = (Vec<(u64, Polygon)>, Vec<(u64, GeoPoint)>);

fn context() -> Context {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(-1.0, 39.0, 1.0, 41.0))),
        (8u64, Polygon::rect(BoundingBox::new(1.5, 37.5, 3.5, 39.5))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.0, 40.0)), (4u64, GeoPoint::new(2.0, 38.0))];
    (regions, ports)
}

/// A seeded maneuvering fleet large enough that a budget of 4 keeps the
/// spill tier churning: most records of most entities arrive while the
/// entity is cold.
fn fleet(seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    let entities = 12 + seed % 5;
    let reports_each = 50i64;
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-2.0, 3.0), rng.uniform(38.0, 41.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(5, 20),
        })
        .collect();
    let mut out = Vec::new();
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(5, 20);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

/// The chaos-wrapped input of a seed, materialised once so every arm sees
/// byte-identical records.
fn chaotic_input(seed: u64) -> Vec<PositionReport> {
    ChaosSource::new(fleet(seed).into_iter(), FaultPlan::chaos(seed)).collect()
}

/// A per-entity stage that panics on one poisoned entity, exercising
/// supervision (restarts, quarantine, dead letters) while the tier churns.
fn poison_stage(r: &PositionReport) {
    assert!(r.entity != EntityId::vessel(3), "poison record");
}

/// Everything observable about a completed run, in comparable (Debug)
/// form. Debug spells every `f64` bit-faithfully, and NaN == NaN as text,
/// which chaos-corrupted records require.
struct RunTrace {
    outputs: Vec<String>,
    flush: String,
    health: String,
    counters: MetricsSnapshot,
    topics: Vec<String>,
    checkpoint: String,
}

fn finish_trace(mut layer: RealTimeLayer, outputs: Vec<String>) -> RunTrace {
    let flush = format!("{:?}", layer.flush());
    let health = format!("{:?}", layer.health());
    let counters = layer.metrics_snapshot().counters_only();
    // The durable state must also be budget-blind: spilled entities decode
    // back into the checkpoint.
    let checkpoint = format!("{:?}", layer.checkpoint_state().entities);
    let topics = vec![
        format!("{:?}", layer.cleaned.consumer().drain().expect("no lag")),
        format!("{:?}", layer.critical.consumer().drain().expect("no lag")),
        format!("{:?}", layer.area_events.consumer().drain().expect("no lag")),
        format!("{:?}", layer.triples.consumer().drain().expect("no lag")),
        format!("{:?}", layer.links.consumer().drain().expect("no lag")),
        format!("{:?}", layer.dead_letters.consumer().drain().expect("no lag")),
    ];
    RunTrace { outputs, flush, health, counters, topics, checkpoint }
}

/// Single-threaded arm under the given budget, asserting the budget is
/// actually enforced after every record.
fn trace_single(input: &[PositionReport], budget: Option<usize>, poisoned: bool) -> RunTrace {
    let (regions, ports) = context();
    let mut layer = RealTimeLayer::new(config(budget), regions, ports);
    if poisoned {
        layer.attach_entity_stage(poison_stage);
    }
    let mut outputs = Vec::with_capacity(input.len());
    for r in input {
        outputs.push(format!("{:?}", layer.ingest(*r)));
        if let Some(b) = budget {
            assert!(
                layer.resident_entity_count() <= b,
                "resident {} exceeded budget {b}",
                layer.resident_entity_count()
            );
        }
    }
    if let Some(b) = budget {
        let stats = layer.spill_stats();
        // Fleets are 12–16 entities: a tight budget must churn the tier; a
        // loose one (64) must leave it untouched.
        if b < 12 {
            assert!(stats.evictions > 0, "the tier must be exercised: {stats:?}");
        } else {
            assert_eq!(stats.evictions, 0, "a loose budget must never evict: {stats:?}");
        }
        assert_eq!(stats.disk_errors, 0);
        assert_eq!(stats.rehydrate_failures, 0);
    }
    finish_trace(layer, outputs)
}

const TOPIC_NAMES: [&str; 6] = ["cleaned", "critical", "area_events", "triples", "links", "dead_letters"];

fn assert_traces_match(reference: &RunTrace, got: &RunTrace, label: &str) {
    assert_eq!(got.outputs.len(), reference.outputs.len(), "{label}: output count");
    for (i, (g, e)) in got.outputs.iter().zip(&reference.outputs).enumerate() {
        assert_eq!(g, e, "{label}: output {i} must be bit-identical");
    }
    assert_eq!(got.flush, reference.flush, "{label}: end-of-stream flush");
    assert_eq!(got.health, reference.health, "{label}: health report");
    assert_eq!(got.counters, reference.counters, "{label}: count-typed metrics");
    assert_eq!(got.checkpoint, reference.checkpoint, "{label}: durable entity state");
    for (name, (g, e)) in TOPIC_NAMES.iter().zip(got.topics.iter().zip(&reference.topics)) {
        assert_eq!(g, e, "{label}: {name} topic contents");
    }
}

#[test]
fn budgeted_runs_are_bit_identical_to_resident_runs() {
    for seed in SEEDS {
        let input = chaotic_input(seed);
        let reference = trace_single(&input, None, false);
        assert!(
            reference.outputs.iter().any(|o| o.contains("ChangeInHeading")),
            "seed {seed}: the fleet must exercise the synopses stage"
        );
        for budget in [4usize, 64] {
            let got = trace_single(&input, Some(budget), false);
            assert_traces_match(&reference, &got, &format!("seed {seed}, budget {budget}"));
        }
    }
}

#[test]
fn directory_tier_is_bit_identical_too() {
    let dir = std::env::temp_dir().join(format!("datacron-spill-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for seed in [SEEDS[0], SEEDS[5]] {
        let input = chaotic_input(seed);
        let reference = trace_single(&input, None, false);
        let (regions, ports) = context();
        let mut cfg = config(Some(4));
        cfg.spill_dir = Some(dir.clone());
        let mut layer = RealTimeLayer::new(cfg, regions, ports);
        let mut outputs = Vec::with_capacity(input.len());
        let mut saw_files = false;
        for r in &input {
            outputs.push(format!("{:?}", layer.ingest(*r)));
            assert!(layer.resident_entity_count() <= 4);
            saw_files |= layer.spill_stats().spilled > 0;
        }
        assert!(saw_files, "seed {seed}: blobs went through the directory tier");
        assert_eq!(layer.spill_stats().disk_errors, 0, "seed {seed}: tier stayed healthy");
        let got = finish_trace(layer, outputs);
        assert_traces_match(&reference, &got, &format!("dir tier, seed {seed}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_entities_are_never_spilled() {
    for seed in [SEEDS[1], SEEDS[3]] {
        let input = chaotic_input(seed);
        let reference = trace_single(&input, None, true);
        assert!(
            reference.health.contains("quarantined_entities: 1"),
            "seed {seed}: the poisoned entity must be quarantined in the reference run"
        );
        let (regions, ports) = context();
        let mut layer = RealTimeLayer::new(config(Some(4)), regions, ports);
        layer.attach_entity_stage(poison_stage);
        let mut outputs = Vec::with_capacity(input.len());
        for r in &input {
            outputs.push(format!("{:?}", layer.ingest(*r)));
            // The invariant, checked after every record: quarantine follows
            // a panic, which drops the entity's state — nothing of it may
            // ever sit in the cold tier.
            assert!(
                !layer.spilled_entities().contains(&EntityId::vessel(3)),
                "seed {seed}: a poisoned entity leaked into the spill store"
            );
        }
        let got = finish_trace(layer, outputs);
        assert_traces_match(&reference, &got, &format!("poisoned seed {seed}"));
    }
}

#[test]
fn sharded_budgeted_runs_match_the_single_threaded_resident_reference() {
    for (seed, budget) in [
        (SEEDS[2], Some(4usize)),
        (SEEDS[4], Some(64)),
        (SEEDS[6], Some(4)),
        (SEEDS[7], None),
    ] {
        let input = chaotic_input(seed);
        let reference = trace_single(&input, None, false);

        let (regions, ports) = context();
        let mut sharded = ShardedRealTimeLayer::new(
            config(budget),
            regions,
            ports,
            ShardedConfig::with_shards(4),
        );
        let mut got = Vec::new();
        for chunk in input.chunks(256) {
            sharded.ingest_batch(chunk.iter().copied());
            got.extend(sharded.poll_outputs());
        }
        let flush = sharded.flush();
        let health = sharded.health();
        let done = sharded.finish();
        got.extend(done.outputs);

        let label = format!("seed {seed}, 4 shards, budget {budget:?}");
        assert_eq!(done.merged, input.len() as u64, "{label}: lossless merge");
        assert_eq!(done.duplicates, 0, "{label}: exactly-once");
        assert_eq!(got.len(), reference.outputs.len(), "{label}: output count");
        for (i, (g, e)) in got.iter().zip(&reference.outputs).enumerate() {
            assert_eq!(format!("{:?}", g.output), *e, "{label}: output {i} must be bit-identical");
        }
        assert_eq!(format!("{flush:?}"), reference.flush, "{label}: flush");
        assert_eq!(format!("{health:?}"), reference.health, "{label}: merged health");
    }
}

#[test]
fn recovery_with_spill_enabled_round_trips() {
    // Crash mid-stream under a tight budget (entities split between the
    // hot map and the cold tier at checkpoint time), recover with the same
    // budget, finish the stream: everything observable must equal an
    // uninterrupted fully-resident run.
    let seed = SEEDS[0];
    let input = chaotic_input(seed);
    let cut = input.len() / 2;
    let dir = std::env::temp_dir().join(format!("datacron-spill-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (regions, ports) = context();

    // Reference: uninterrupted, no budget, no durability.
    let mut reference = DatacronSystem::new(
        config(None),
        regions.clone(),
        ports.clone(),
        datacron::store::StoreConfig::default(),
    );
    let ref_outputs: Vec<String> =
        input.iter().map(|r| format!("{:?}", reference.ingest(*r))).collect();
    let ref_flush = format!("{:?}", reference.realtime.flush());
    let ref_state = format!("{:?}", reference.realtime.checkpoint_state().entities);
    // Layer-level health: the system report carries a `durability` section
    // only the durable arm has; everything else must match bit-for-bit.
    let ref_health = format!("{:?}", reference.realtime.health());

    // Budgeted, durable run that crashes at the cut.
    let mut crashed = DatacronSystem::new(
        config(Some(4)),
        regions.clone(),
        ports.clone(),
        datacron::store::StoreConfig::default(),
    );
    crashed.enable_durability(DurabilityConfig::at(&dir)).expect("fresh dir");
    let mut outputs: Vec<String> = Vec::with_capacity(input.len());
    for r in &input[..cut] {
        outputs.push(format!("{:?}", crashed.ingest(*r)));
    }
    assert!(
        crashed.realtime.spill_stats().evictions > 0,
        "the tier must be populated before the crash"
    );
    drop(crashed);

    // Recover with the budget still configured and finish the stream.
    let (mut recovered, report) = DatacronSystem::recover(
        config(Some(4)),
        regions,
        ports,
        datacron::store::StoreConfig::default(),
        DurabilityConfig::at(&dir),
    )
    .expect("recovery succeeds");
    assert_eq!(report.recovered_through, cut as u64, "nothing lost at the cut");
    // Replayed records re-run through ingest; their outputs replace the
    // pre-crash tail beyond the last checkpoint, so rebuild the full
    // output list deterministically: keep the checkpoint-covered prefix,
    // then re-trace the replayed suffix by re-ingesting the remainder.
    for r in &input[cut..] {
        outputs.push(format!("{:?}", recovered.ingest(*r)));
    }
    assert!(
        recovered.realtime.resident_entity_count() <= 4,
        "budget enforced after recovery"
    );
    assert_eq!(
        format!("{:?}", recovered.realtime.flush()),
        ref_flush,
        "flush after recovery"
    );
    assert_eq!(
        format!("{:?}", recovered.realtime.checkpoint_state().entities),
        ref_state,
        "durable entity state after recovery"
    );
    assert_eq!(
        format!("{:?}", recovered.realtime.health()),
        ref_health,
        "health after recovery"
    );
    assert_eq!(outputs, ref_outputs, "per-record outputs across the crash");
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end integration: the full datAcron architecture over a generated
//! fleet — every component of Figure 2 exercised in one flow, with
//! cross-component consistency checks.

use datacron::cep::{Dfa, Pattern, PatternMarkovChain, Wayeb};
use datacron::core::realtime::symbols;
use datacron::core::{DatacronConfig, DatacronSystem};
use datacron::data::context::{AreaGenerator, PortGenerator};
use datacron::data::maritime::{VoyageConfig, VoyageGenerator};
use datacron::geo::{BoundingBox, TimeInterval, Timestamp};
use datacron::rdf::term::Term;
use datacron::rdf::vocab;
use datacron::store::{StExecution, StarQuery, StoreConfig};

fn build_system(extent: BoundingBox) -> DatacronSystem {
    let mut area_gen = AreaGenerator::new(extent);
    area_gen.radius_m = (15_000.0, 50_000.0);
    area_gen.vertices = (12, 24);
    let regions = area_gen.generate(30, "natura", 5);
    let ports = PortGenerator::new(extent).generate(15, 6);
    let config = DatacronConfig::maritime(extent);
    let mut system = DatacronSystem::new(
        config,
        regions.iter().map(|r| (r.id, r.polygon.clone())).collect(),
        ports.iter().map(|p| (p.id, p.point)).collect(),
        StoreConfig::default(),
    );
    let pattern = Pattern::north_to_south_reversal(symbols::NORTH, symbols::EAST, symbols::SOUTH);
    let dfa = Dfa::compile(&pattern, symbols::ALPHABET);
    let pmc = PatternMarkovChain::new(dfa, 0, vec![0.25; symbols::ALPHABET]);
    system.realtime.attach_cep(Wayeb::new(pmc, 0.5, 60), symbols::heading_symbolizer);
    system
}

#[test]
fn full_pipeline_products_are_consistent() {
    let extent = BoundingBox::new(-6.0, 35.0, 10.0, 44.0);
    let mut system = build_system(extent);
    let ports = PortGenerator::new(extent).generate(15, 6);
    let fleet = VoyageGenerator::new(VoyageConfig::default()).fleet(8, &ports, Timestamp(0), 42);
    let mut reports: Vec<_> = fleet.iter().flat_map(|v| v.reports.iter().copied()).collect();
    reports.sort_by_key(|r| r.ts);
    let total_input = reports.len() as u64;

    let mut accepted = 0u64;
    let mut critical = 0u64;
    for r in reports {
        let out = system.ingest(r);
        if out.accepted {
            accepted += 1;
        }
        critical += out.critical_points.len() as u64;
    }
    let flushed = system.realtime.flush().len() as u64;

    // Cleaning accepted most but not all records (the generator injected
    // noise), and the synopsis is a dramatic reduction.
    assert!(accepted > total_input / 2, "{accepted}/{total_input} accepted");
    assert!(accepted < total_input, "some records must be rejected");
    assert!(critical + flushed < accepted / 5, "synopses must compress");

    // Topic consistency: everything emitted is on the bus.
    assert_eq!(system.realtime.cleaned.len(), accepted);
    assert_eq!(system.realtime.critical.len(), critical + flushed);
    // Each critical point lifts to ten triples via the standard template.
    assert_eq!(system.realtime.triples.len(), (critical + flushed) * 10);

    // Batch layer: node count matches the critical topic.
    let nodes = system.sync_batch();
    assert_eq!(nodes, critical + flushed);

    // Store agreement between execution strategies on a real query.
    let q = StarQuery {
        arms: vec![
            (vocab::rdf_type(), Some(vocab::semantic_node_class())),
            (vocab::event_type(), Some(Term::str("change_in_heading"))),
        ],
        st: Some((
            extent,
            TimeInterval::new(Timestamp(0), Timestamp(100 * 3_600_000)),
        )),
    };
    let (push, _) = system.batch.query(&q, StExecution::Pushdown);
    let (post, _) = system.batch.query(&q, StExecution::PostFilter);
    assert_eq!(push, post);
    assert!(!push.is_empty(), "fleet voyages must contain turns");
}

#[test]
fn fishing_fleet_triggers_reversal_forecasting() {
    let extent = BoundingBox::new(-6.0, 35.0, 10.0, 44.0);
    let mut system = build_system(extent);
    let gen = VoyageGenerator::new(VoyageConfig::clean());
    let mut detections = 0usize;
    for i in 0..4u64 {
        let port = datacron::geo::GeoPoint::new(1.0 + i as f64, 39.0);
        let grounds = port.destination(45.0, 25_000.0);
        let trip = gen.fishing_trip(i, port, grounds, Timestamp(0), 7 + i);
        for r in trip.reports {
            detections += system.ingest(r).cep_detections;
        }
    }
    assert!(detections >= 2, "zig-zag trawling produces reversal detections, got {detections}");
}

#[test]
fn situation_picture_tracks_fleet() {
    let extent = BoundingBox::new(-6.0, 35.0, 10.0, 44.0);
    let mut system = build_system(extent);
    let ports = PortGenerator::new(extent).generate(15, 6);
    let fleet = VoyageGenerator::new(VoyageConfig::clean()).fleet(5, &ports, Timestamp(0), 21);
    let mut reports: Vec<_> = fleet.iter().flat_map(|v| v.reports.iter().copied()).collect();
    reports.sort_by_key(|r| r.ts);
    for r in reports {
        system.ingest(r);
    }
    let picture = system.situation(4, 10.0);
    assert_eq!(picture.entries.len(), 5);
    for entry in &picture.entries {
        assert_eq!(entry.predicted.len(), 4);
        // Predictions start near the last position (sanity bound: a vessel
        // does not move more than ~1 km in 10 s).
        let d = entry.last.point.haversine_distance(&entry.predicted[0]);
        assert!(d < 1_000.0, "{}: first prediction {d} m away", entry.entity);
    }
}

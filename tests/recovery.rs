//! Crash-recovery equivalence: a run that crashes mid-ingest and recovers
//! from its write-ahead log + checkpoints must produce outputs, flush,
//! health and situation picture **bit-identical** to an uninterrupted run
//! over the same input — across seeds, crash points and injected disk
//! faults. Damaged logs surface as typed errors, never panics.

use datacron::cep::{Dfa, Pattern, PatternMarkovChain, Wayeb};
use datacron::core::realtime::symbols;
use datacron::core::{DatacronConfig, DatacronSystem, DurabilityConfig};
use datacron::durability::{DurabilityError, FsyncPolicy};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::stream::faults::{inject_disk_fault, ChaosSource, DiskFault, FaultPlan};
use datacron::store::StoreConfig;
use std::fs;
use std::path::{Path, PathBuf};

/// Entity whose attached stage panics on every record (supervision +
/// quarantine state must survive recovery).
const POISON: u64 = 4;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("datacron-recovery-it-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn extent() -> BoundingBox {
    BoundingBox::new(0.0, 38.0, 6.0, 42.0)
}

fn config() -> DatacronConfig {
    DatacronConfig::maritime(extent())
}

type Regions = Vec<(u64, Polygon)>;
type Ports = Vec<(u64, GeoPoint)>;

fn context() -> (Regions, Ports) {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(0.2, 38.9, 0.6, 39.4))),
        (9u64, Polygon::rect(BoundingBox::new(1.0, 39.1, 1.6, 39.8))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.2, 39.0)), (5u64, GeoPoint::new(1.4, 39.5))];
    (regions, ports)
}

/// The exact attachments the crashed system had; recovery must run the
/// same setup before applying state.
fn setup(system: &mut DatacronSystem) {
    let pattern = Pattern::north_to_south_reversal(symbols::NORTH, symbols::EAST, symbols::SOUTH);
    let dfa = Dfa::compile(&pattern, symbols::ALPHABET);
    let pmc = PatternMarkovChain::new(dfa, 0, vec![0.25; symbols::ALPHABET]);
    system.realtime.attach_cep(Wayeb::new(pmc, 0.5, 60), symbols::heading_symbolizer);
    system.realtime.attach_entity_stage(|r| {
        if r.entity.id == POISON {
            panic!("injected poison");
        }
    });
}

fn build_system() -> DatacronSystem {
    let (regions, ports) = context();
    let mut system = DatacronSystem::new(config(), regions, ports, StoreConfig::default());
    setup(&mut system);
    system
}

/// A fleet that turns every 12 reports, so synopses emit heading changes,
/// the CEP symbolizer fires, and tracks cross the monitored regions.
fn fleet(entities: u64, reports_each: i64) -> Vec<PositionReport> {
    let headings = [90.0, 0.0, 270.0, 180.0, 90.0];
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.2 + 0.3 * e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..reports_each {
            let heading = headings[((i / 12) as usize + e as usize) % headings.len()];
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: heading,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(heading, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    all
}

/// Seeded chaos over the fleet (drops, duplicates, reordering, corruption),
/// materialised so both runs see the identical stream. Corrupted records
/// exercise the dead-letter topic, whose state must also survive recovery.
fn faulted_input(seed: u64) -> Vec<PositionReport> {
    ChaosSource::new(fleet(6, 100).into_iter(), FaultPlan::chaos(seed)).collect()
}

fn durability_config(dir: &Path, checkpoint_interval: u64) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        segment_max_bytes: 4096,
        checkpoint_interval,
        retained_checkpoints: 2,
    }
}

/// Ingests records, returning each record's full output as its Debug
/// rendering (the repo's bit-for-bit equivalence idiom).
fn run_records(system: &mut DatacronSystem, records: &[PositionReport]) -> Vec<String> {
    records.iter().map(|r| format!("{:?}", system.ingest(*r))).collect()
}

/// End-of-run observables: flush, health, situation picture.
fn finishing(mut system: DatacronSystem) -> (String, String, String) {
    let flush = format!("{:?}", system.realtime.flush());
    let health = format!("{:?}", system.health());
    let situation = format!("{:?}", system.situation(3, 30.0));
    (flush, health, situation)
}

/// Uninterrupted durable run over `input`; returns (outputs, flush,
/// health, situation).
fn uninterrupted(input: &[PositionReport], interval: u64) -> (Vec<String>, String, String, String) {
    let dir = temp_dir("uninterrupted");
    let mut system = build_system();
    system.enable_durability(durability_config(&dir, interval)).unwrap();
    let outputs = run_records(&mut system, input);
    assert_eq!(system.wal_errors(), 0);
    let (flush, health, situation) = finishing(system);
    let _ = fs::remove_dir_all(&dir);
    (outputs, flush, health, situation)
}

#[test]
fn recovered_run_is_bit_identical_across_seeds_and_crash_points() {
    for seed in [1u64, 7, 42] {
        let input = faulted_input(seed);
        let n = input.len();
        let (out_a, flush_a, health_a, situation_a) = uninterrupted(&input, 150);
        for crash_at in [n / 3, 2 * n / 3] {
            let dir = temp_dir(&format!("crash-{seed}-{crash_at}"));
            let mut system = build_system();
            system.enable_durability(durability_config(&dir, 150)).unwrap();
            let mut out_b = run_records(&mut system, &input[..crash_at]);
            // Crash: the process dies mid-stream — no flush, no shutdown.
            drop(system);

            let (regions, ports) = context();
            let (mut recovered, report) = DatacronSystem::recover_with_setup(
                config(),
                regions,
                ports,
                StoreConfig::default(),
                durability_config(&dir, 150),
                setup,
            )
            .unwrap();
            assert_eq!(
                report.recovered_through, crash_at as u64,
                "seed {seed}: everything written before the crash recovers"
            );
            assert_eq!(report.truncated_tail_bytes, 0, "clean crash leaves no torn tail");
            assert_eq!(
                report.checkpoint_seq.map(|s| s as usize),
                Some(150 * (crash_at / 150)).filter(|&s| s > 0),
                "seed {seed}: recovery starts from the newest interval checkpoint"
            );
            assert_eq!(
                report.replayed,
                crash_at - report.checkpoint_seq.unwrap_or(0) as usize,
                "seed {seed}: the WAL suffix past the checkpoint is replayed"
            );

            out_b.extend(run_records(&mut recovered, &input[crash_at..]));
            let (flush_b, health_b, situation_b) = finishing(recovered);

            assert_eq!(out_b.len(), out_a.len());
            for (i, (b, a)) in out_b.iter().zip(&out_a).enumerate() {
                assert_eq!(b, a, "seed {seed}, crash at {crash_at}: output {i} diverged");
            }
            assert_eq!(flush_b, flush_a, "seed {seed}, crash at {crash_at}: flush diverged");
            assert_eq!(health_b, health_a, "seed {seed}, crash at {crash_at}: health diverged");
            assert_eq!(
                situation_b, situation_a,
                "seed {seed}, crash at {crash_at}: situation diverged"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// A short write tears the WAL tail. Recovery truncates the torn frames,
/// reports how far the durable prefix reaches, and re-feeding the lost
/// suffix restores bit-identical state.
#[test]
fn torn_wal_tail_truncates_and_refeed_restores_equivalence() {
    let input = faulted_input(7);
    let n = input.len();
    let crash_at = n / 2;
    // WAL-only (no checkpoints), so the torn tail cannot fall behind a
    // checkpoint's claimed coverage.
    let (out_a, flush_a, health_a, situation_a) = uninterrupted(&input, 0);

    let dir = temp_dir("torn");
    let mut system = build_system();
    system.enable_durability(durability_config(&dir, 0)).unwrap();
    let out_prefix = run_records(&mut system, &input[..crash_at]);
    drop(system);
    // The crash tears the last segment mid-frame.
    let hit = inject_disk_fault(&dir, ".seg", DiskFault::ShortWrite { bytes: 100 }, 1).unwrap();
    assert!(hit.is_some(), "a segment was shortened");

    let (regions, ports) = context();
    let (mut recovered, report) = DatacronSystem::recover_with_setup(
        config(),
        regions,
        ports,
        StoreConfig::default(),
        durability_config(&dir, 0),
        setup,
    )
    .unwrap();
    let durable = report.recovered_through as usize;
    assert!(durable < crash_at, "the torn tail lost at least one record");
    assert_eq!(report.checkpoint_seq, None);
    assert_eq!(report.replayed, durable);

    // The source re-feeds everything past the durable prefix (at-least-once
    // delivery upstream of the log), and the runs reconverge exactly.
    let out_refed = run_records(&mut recovered, &input[durable..]);
    let (flush_b, health_b, situation_b) = finishing(recovered);

    assert_eq!(&out_prefix[..durable], &out_a[..durable]);
    assert_eq!(out_refed.len(), n - durable);
    for (i, (b, a)) in out_refed.iter().zip(&out_a[durable..]).enumerate() {
        assert_eq!(b, a, "re-fed output {i} diverged");
    }
    assert_eq!(flush_b, flush_a);
    assert_eq!(health_b, health_a);
    assert_eq!(situation_b, situation_a);
    let _ = fs::remove_dir_all(&dir);
}

/// A bit flip inside a sealed segment is detected by the CRC and surfaces
/// as a typed `CorruptRecord` — never a panic, never silent acceptance.
#[test]
fn bit_flip_in_sealed_segment_is_a_typed_error() {
    let input = fleet(4, 60);
    let dir = temp_dir("bitflip");
    let mut system = build_system();
    system.enable_durability(durability_config(&dir, 0)).unwrap();
    run_records(&mut system, &input);
    drop(system);
    let segments = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".seg"))
        .count();
    assert!(segments >= 2, "rotation produced sealed segments ({segments})");
    let hit = inject_disk_fault(&dir, ".seg", DiskFault::BitFlip, 99).unwrap();
    assert!(hit.is_some(), "a sealed segment was corrupted");

    let (regions, ports) = context();
    let err = match DatacronSystem::recover_with_setup(
        config(),
        regions,
        ports,
        StoreConfig::default(),
        durability_config(&dir, 0),
        setup,
    ) {
        Err(err) => err,
        Ok(_) => panic!("recovery accepted a corrupt segment"),
    };
    assert!(
        matches!(err, DurabilityError::CorruptRecord { .. }),
        "expected CorruptRecord, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A deleted middle segment breaks sequence continuity and surfaces as a
/// typed `SequenceGap`.
#[test]
fn missing_middle_segment_is_a_sequence_gap() {
    let input = fleet(4, 60);
    let dir = temp_dir("missing");
    let mut system = build_system();
    system.enable_durability(durability_config(&dir, 0)).unwrap();
    run_records(&mut system, &input);
    drop(system);
    let hit = inject_disk_fault(&dir, ".seg", DiskFault::MissingSegment, 5).unwrap();
    assert!(hit.is_some(), "a middle segment was removed");

    let (regions, ports) = context();
    let err = match DatacronSystem::recover_with_setup(
        config(),
        regions,
        ports,
        StoreConfig::default(),
        durability_config(&dir, 0),
        setup,
    ) {
        Err(err) => err,
        Ok(_) => panic!("recovery accepted a log with a missing segment"),
    };
    assert!(
        matches!(err, DurabilityError::SequenceGap { .. }),
        "expected SequenceGap, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Attaching an existing non-empty log to a fresh system is refused: that
/// history belongs to a crashed run and must go through recovery.
#[test]
fn enabling_durability_on_a_mismatched_log_is_rejected() {
    let input = fleet(2, 30);
    let dir = temp_dir("mismatch");
    let mut system = build_system();
    system.enable_durability(durability_config(&dir, 0)).unwrap();
    run_records(&mut system, &input);
    drop(system);

    let mut fresh = build_system();
    let err = fresh.enable_durability(durability_config(&dir, 0)).unwrap_err();
    assert!(
        matches!(err, DurabilityError::SequenceMismatch { .. }),
        "expected SequenceMismatch, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

//! Workspace-level property tests: invariants that span crates, checked on
//! randomised inputs.

use datacron::cep::{forecast_interval, waiting_time_distributions, Dfa, Pattern, PatternMarkovChain};
use datacron::geo::{BoundingBox, EquiGrid, GeoPoint, StCellEncoder, TimeInterval, Timestamp};
use datacron::predict::distance::{erp_distance, EnrichedPoint};
use datacron::rdf::term::{Term, Triple};
use datacron::store::{KnowledgeStore, LayoutKind, StExecution, StarQuery, StoreConfig};
use proptest::prelude::*;

/// Random small patterns over a 3-symbol alphabet.
fn arb_pattern(depth: u32) -> BoxedStrategy<Pattern> {
    let leaf = (0u8..3).prop_map(Pattern::Symbol).boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_pattern(depth - 1);
    prop_oneof![
        leaf,
        proptest::collection::vec(inner.clone(), 1..3).prop_map(Pattern::Seq),
        proptest::collection::vec(inner.clone(), 1..3).prop_map(Pattern::Or),
        inner.clone().prop_map(Pattern::star),
        inner.prop_map(Pattern::plus),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled streaming DFA agrees with the reference matcher on
    /// suffix semantics for random patterns and random words.
    #[test]
    fn dfa_matches_reference_semantics(
        pattern in arb_pattern(2),
        word in proptest::collection::vec(0u8..3, 0..8),
    ) {
        let dfa = Dfa::compile(&pattern, 3);
        let mut state = dfa.start();
        for &s in &word {
            state = dfa.step(state, s);
        }
        let dfa_final = dfa.is_final(state);
        let reference = (0..word.len()).any(|k| pattern.matches(&word[k..]));
        // A detection fires only on non-empty suffixes (an event must have
        // occurred), except: nullable patterns may accept at any point once
        // a symbol was read. Compare against "some non-empty suffix or,
        // for nullable patterns, any position".
        if pattern.nullable() {
            // Nullable patterns put the start state in the accepting set;
            // semantics are ambiguous in the literature, so only check the
            // non-nullable direction.
            prop_assert!(dfa_final || !reference);
        } else {
            prop_assert_eq!(dfa_final, reference, "pattern {:?} word {:?}", pattern, word);
        }
    }

    /// Waiting-time distributions are sub-probabilities with monotone CDFs
    /// for random symbol models.
    #[test]
    fn waiting_times_are_subprobabilities(
        raw in proptest::collection::vec(0.05f64..1.0, 3),
    ) {
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let dfa = Dfa::compile(&Pattern::symbols([0, 2, 2]), 3);
        let pmc = PatternMarkovChain::new(dfa, 0, probs);
        let w = waiting_time_distributions(&pmc, 60);
        for row in &w {
            let sum: f64 = row.iter().sum();
            prop_assert!(sum <= 1.0 + 1e-9);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // Any produced interval must respect its threshold.
            if let Some(iv) = forecast_interval(row, 0.4) {
                prop_assert!(iv.probability >= 0.4);
                prop_assert!(iv.start >= 1 && iv.end >= iv.start);
            }
        }
    }

    /// ERP is symmetric and satisfies the triangle inequality on random
    /// enriched sequences (it must be a metric for OPTICS to be sound).
    #[test]
    fn erp_is_a_metric(
        a in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..6),
        b in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..6),
        c in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..6),
    ) {
        let mk = |pts: &[(f64, f64)]| -> Vec<EnrichedPoint> {
            pts.iter().enumerate().map(|(i, &(x, y))| EnrichedPoint::bare(x, y, i as f64)).collect()
        };
        let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));
        let dab = erp_distance(&sa, &sb, 1.0);
        let dba = erp_distance(&sb, &sa, 1.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        let dbc = erp_distance(&sb, &sc, 1.0);
        let dac = erp_distance(&sa, &sc, 1.0);
        prop_assert!(dac <= dab + dbc + 1e-9, "triangle violated: {dac} > {dab} + {dbc}");
        prop_assert!(erp_distance(&sa, &sa, 1.0) < 1e-12);
    }

    /// All storage layouts answer identical star queries with identical
    /// results, under both execution strategies, on random data.
    #[test]
    fn store_layouts_and_strategies_agree(
        nodes in proptest::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0i64..500_000, 0u8..3),
            1..60,
        ),
        qbox in (0.0f64..8.0, 0.0f64..8.0, 0.5f64..2.0, 0.5f64..2.0),
        qtime in (0i64..400_000, 50_000i64..200_000),
    ) {
        let query = StarQuery {
            arms: vec![
                (Term::iri("p:type"), Some(Term::iri("c:N"))),
                (Term::iri("p:kind"), Some(Term::int(1))),
            ],
            st: Some((
                BoundingBox::new(qbox.0, qbox.1, qbox.0 + qbox.2, qbox.1 + qbox.3),
                TimeInterval::new(Timestamp(qtime.0), Timestamp(qtime.0 + qtime.1)),
            )),
        };
        let mut reference: Option<Vec<Term>> = None;
        for layout in [LayoutKind::TriplesTable, LayoutKind::VerticalPartitioning, LayoutKind::PropertyTable] {
            let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 8, 8);
            let encoder = StCellEncoder::new(grid, Timestamp(0), 60_000);
            let mut store = KnowledgeStore::new(encoder, StoreConfig { layout, partitions: 3 });
            for (i, &(lon, lat, ts, kind)) in nodes.iter().enumerate() {
                let node = Term::iri(format!("n:{i}"));
                let triples = vec![
                    Triple::new(node.clone(), Term::iri("p:type"), Term::iri("c:N")),
                    Triple::new(node.clone(), Term::iri("p:kind"), Term::int(kind as i64)),
                ];
                store.ingest_node(&node, &GeoPoint::new(lon, lat), Timestamp(ts), &triples);
            }
            let (push, _) = store.execute_star(&query, StExecution::Pushdown);
            let (post, _) = store.execute_star(&query, StExecution::PostFilter);
            prop_assert_eq!(&push, &post, "layout {:?} strategies disagree", layout);
            match &reference {
                None => reference = Some(push),
                Some(r) => prop_assert_eq!(r, &push, "layout {:?} differs", layout),
            }
        }
        // Cross-check against a brute-force scan of the input.
        let expected: usize = nodes
            .iter()
            .filter(|&&(lon, lat, ts, kind)| {
                kind == 1
                    && query.st.as_ref().is_some_and(|(b, iv)| {
                        b.contains(&GeoPoint::new(lon, lat)) && iv.contains(Timestamp(ts))
                    })
            })
            .count();
        prop_assert_eq!(reference.expect("set above").len(), expected);
    }
}

//! Live knowledge-graph acceptance suite: streaming triple ingestion with
//! continuous star-join subscriptions must be **equivalent** to batch
//! loading — for 8 chaos seeds and shard counts {1, 4}, registering a
//! subscription and streaming triples through the pipeline yields exactly
//! the match set obtained by batch-loading the same triples and running
//! `execute_star` once at the end. On top of the equivalence drill:
//! concurrent snapshot reads never observe a half-applied batch, a slow
//! KG consumer cannot silently drop triples (bounded `triples` topic with
//! blocking backpressure), the count-typed `kg.*` series are bit-identical
//! single vs sharded, and the `kg.ingest_to_match_ns` histogram plus
//! `KgHealth` surface in metrics and health.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datacron::core::kg::{LiveKg, LiveKgConfig};
use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::system::DatacronSystem;
use datacron::core::DatacronConfig;
use datacron::geo::{
    BoundingBox, EntityId, EquiGrid, GeoPoint, PositionReport, StCellEncoder, TimeInterval,
    Timestamp,
};
use datacron::rdf::term::{Term, Triple};
use datacron::rdf::vocab;
use datacron::store::store::{StExecution, StarQuery};
use datacron::store::{LiveStore, StoreConfig};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(0.0, 38.0, 6.0, 42.0))
}

/// A seed-shaped fleet with one turn per entity (critical points → RDF
/// triples) and a chaos pass (drops, duplicates, reorders) over it.
fn stream(seed: u64) -> Vec<PositionReport> {
    let entities = 4 + seed % 5;
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.5 + 0.5 * e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..80i64 {
            let heading = if i < 40 { 90.0 } else { 180.0 };
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: heading,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(heading, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    ChaosSource::new(all.into_iter(), FaultPlan::chaos(seed)).collect()
}

/// The continuous queries under test: a plain star join over heading
/// changes, and the same join constrained to a spatio-temporal window
/// (exercises the dictionary's st pushdown on the live path).
fn queries() -> Vec<StarQuery> {
    let arms = vec![
        (vocab::rdf_type(), Some(vocab::semantic_node_class())),
        (vocab::event_type(), Some(Term::str("change_in_heading"))),
    ];
    vec![
        StarQuery { arms: arms.clone(), st: None },
        StarQuery {
            arms,
            st: Some((
                BoundingBox::new(0.0, 38.0, 3.0, 42.0),
                TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(500)),
            )),
        },
    ]
}

fn subject_set(terms: &[Term]) -> BTreeSet<String> {
    terms.iter().map(|t| format!("{t:?}")).collect()
}

fn match_set(matches: &[datacron::store::StarMatch]) -> BTreeSet<String> {
    matches.iter().map(|m| format!("{:?}", m.subject)).collect()
}

/// Runs the pipeline single-threaded with no KG attached and captures the
/// full `triples` stream, then batch-loads it into a fresh [`LiveStore`]
/// in **one** `ingest_batch` and runs each query once at the end — the
/// reference the live paths must reproduce exactly.
fn batch_reference(input: &[PositionReport]) -> Vec<BTreeSet<String>> {
    let cfg = config();
    let mut layer = RealTimeLayer::new(cfg.clone(), Vec::new(), Vec::new());
    let mut triples_rx = layer.triples.consumer();
    for r in input {
        layer.ingest(*r);
    }
    layer.flush();
    let mut all: Vec<Triple> = Vec::new();
    loop {
        let batch = triples_rx.drain().expect("unbounded topic never lags");
        if batch.is_empty() {
            break;
        }
        all.extend(batch);
    }
    assert!(!all.is_empty(), "the fixture must produce triples");

    let grid = EquiGrid::new(cfg.extent, cfg.st_grid_cells, cfg.st_grid_cells);
    let encoder = StCellEncoder::new(grid, cfg.epoch, cfg.st_bucket_millis);
    let store = LiveStore::new(encoder, StoreConfig::default());
    store.ingest_batch(&all);
    queries()
        .iter()
        .map(|q| {
            let (push, _) = store.snapshot().execute_star(q, StExecution::Pushdown);
            let (post, _) = store.snapshot().execute_star(q, StExecution::PostFilter);
            assert_eq!(subject_set(&push), subject_set(&post), "execution modes agree");
            subject_set(&push)
        })
        .collect()
}

#[test]
fn live_matches_equal_batch_load_then_query() {
    for seed in SEEDS {
        let input = stream(seed);
        let expected = batch_reference(&input);
        assert!(
            !expected[0].is_empty(),
            "seed {seed}: the fixture must produce heading-change matches"
        );

        // Single-threaded: the system drains the KG on every ingest.
        let mut system =
            DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
        let kg = system.enable_live_kg(LiveKgConfig::default());
        let mut handles: Vec<_> = queries().into_iter().map(|q| kg.subscribe(q)).collect();
        for r in &input {
            system.ingest(*r);
        }
        system.realtime.flush();
        system.sync_batch();
        for (i, handle) in handles.iter_mut().enumerate() {
            let matches = handle.matches.drain().expect("match topic never overflows here");
            assert_eq!(
                match_set(&matches), expected[i],
                "seed {seed}, single-threaded, query {i}"
            );
        }
        assert!(system.health().kg.expect("kg enabled").is_clean(), "seed {seed}");

        // Sharded: the KG drains at the barrier points.
        for shards in SHARD_COUNTS {
            let (mut sharded, kg) = ShardedRealTimeLayer::with_live_kg(
                config(),
                Vec::new(),
                Vec::new(),
                ShardedConfig::with_shards(shards),
                LiveKgConfig::default(),
            );
            let mut handles: Vec<_> = queries().into_iter().map(|q| kg.subscribe(q)).collect();
            sharded.ingest_batch(input.iter().copied());
            sharded.flush();
            for (i, handle) in handles.iter_mut().enumerate() {
                let matches = handle.matches.drain().expect("match topic never overflows here");
                assert_eq!(
                    match_set(&matches), expected[i],
                    "seed {seed}, {shards} shards, query {i}"
                );
            }
            let shutdown = sharded.finish();
            let health = shutdown.health.kg.expect("kg enabled");
            assert!(health.is_clean(), "seed {seed}, {shards} shards");
        }
    }
}

#[test]
fn kg_counters_are_bit_identical_single_vs_sharded() {
    let kg_counters = |snap: &datacron::obs::MetricsSnapshot| -> Vec<(String, u64)> {
        snap.counters()
            .iter()
            .filter(|(name, _)| name.starts_with("kg."))
            .cloned()
            .collect()
    };
    for seed in [7u64, 42] {
        let input = stream(seed);

        let mut system =
            DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
        let kg = system.enable_live_kg(LiveKgConfig::default());
        let _handles: Vec<_> = queries().into_iter().map(|q| kg.subscribe(q)).collect();
        for r in &input {
            system.ingest(*r);
        }
        system.realtime.flush();
        system.sync_batch();
        let expected = kg_counters(&system.metrics());
        assert!(
            expected.iter().any(|(n, v)| n == "kg.matches_emitted" && *v > 0),
            "seed {seed}: the fixture must emit matches"
        );

        for shards in SHARD_COUNTS {
            let (mut sharded, kg) = ShardedRealTimeLayer::with_live_kg(
                config(),
                Vec::new(),
                Vec::new(),
                ShardedConfig::with_shards(shards),
                LiveKgConfig::default(),
            );
            let _handles: Vec<_> = queries().into_iter().map(|q| kg.subscribe(q)).collect();
            sharded.ingest_batch(input.iter().copied());
            sharded.flush();
            let got = kg_counters(&sharded.metrics());
            sharded.finish();
            assert_eq!(got, expected, "seed {seed}, {shards} shards");
        }
    }
}

#[test]
fn health_and_metrics_expose_the_kg_section() {
    let input = stream(42);
    let mut system = DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
    let kg = system.enable_live_kg(LiveKgConfig::default());
    let _handle = kg.subscribe(queries().remove(0));
    for r in &input {
        system.ingest(*r);
    }
    system.realtime.flush();
    system.sync_batch();

    let health = system.health().kg.expect("health carries the KG section");
    assert!(health.ingested_triples > 0);
    assert!(health.st_subjects > 0);
    assert_eq!(health.subscriptions, 1);
    assert!(health.matches_emitted > 0);
    assert!(health.is_clean());

    let snap = system.metrics();
    assert_eq!(snap.counter("kg.ingested_triples"), Some(health.ingested_triples));
    assert_eq!(snap.counter("kg.matches_emitted"), Some(health.matches_emitted));
    assert_eq!(snap.counter("kg.subscriptions"), Some(1));
    let hist = snap.histogram("kg.ingest_to_match_ns").expect("latency histogram registered");
    assert_eq!(hist.count, health.matches_emitted, "one latency sample per streamed match");
    assert!(snap.gauge("kg.watermark").unwrap_or(0) > 0);
    assert_eq!(snap.gauge("kg.triples_lost"), Some(0));
}

#[test]
fn concurrent_snapshots_never_observe_a_partial_batch() {
    let input = stream(97);
    let mut system = DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
    let kg = system.enable_live_kg(LiveKgConfig::default());
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let reader_kg = kg.clone();
        let done_ref = &done;
        let reader = s.spawn(move || {
            let mut last_watermark = 0u64;
            let mut observed = 0u64;
            while !done_ref.load(Ordering::Acquire) {
                let snap = reader_kg.store().snapshot();
                let watermark = snap.triple_count();
                // A generation is immutable and complete: the segment sum
                // always equals the watermark (never a half-applied batch),
                // and pinned reads are stable.
                assert_eq!(snap.generation().triple_count(), watermark);
                assert_eq!(snap.triple_count(), watermark, "pinned snapshot is stable");
                assert!(watermark >= last_watermark, "watermark is monotone");
                last_watermark = watermark;
                observed += 1;
            }
            observed
        });

        for r in &input {
            system.ingest(*r);
        }
        system.realtime.flush();
        system.sync_batch();
        done.store(true, Ordering::Release);
        let observed = reader.join().expect("reader thread");
        assert!(observed > 0, "the reader actually raced the writer");
    });
    assert!(kg.health().ingested_triples > 0);
}

/// Satellite regression: with the KG attached, the `triples` topic is
/// bounded under a **blocking** overflow policy — a slow consumer stalls
/// the publisher instead of losing data, and every produced triple is
/// accounted for in the store (`published == consumed == ingested`).
#[test]
fn slow_kg_consumer_cannot_silently_drop_triples() {
    let kg_config = LiveKgConfig {
        triples_capacity: 8, // tiny: the pipeline outruns the drainer at once
        ..LiveKgConfig::default()
    };
    let kg = LiveKg::new(&config(), kg_config);
    let mut layer = RealTimeLayer::new(config(), Vec::new(), Vec::new());
    kg.attach(&mut layer);
    let input = stream(23);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let drainer_kg: Arc<LiveKg> = kg.clone();
        let done_ref = &done;
        // A deliberately slow consumer: drains, then naps.
        s.spawn(move || {
            while !done_ref.load(Ordering::Acquire) {
                drainer_kg.drain();
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            drainer_kg.drain();
        });
        for r in &input {
            layer.ingest(*r);
        }
        layer.flush();
        done.store(true, Ordering::Release);
    });
    kg.drain();

    let stats = layer.triples.stats();
    let health = kg.health();
    assert!(stats.published > 8, "the fixture overruns the tiny topic");
    assert_eq!(stats.consumed, stats.published, "every triple was consumed");
    assert_eq!(health.ingested_triples, stats.published, "every triple reached the store");
    assert_eq!(health.triples_lost, 0, "nothing was lost, silently or otherwise");
    assert_eq!(stats.dropped, 0, "blocking backpressure never drops");
    assert!(health.is_clean());
}

/// A live resize must be invisible to the knowledge graph: subscriptions
/// registered before the resize keep matching across it (the KG detaches
/// the drained fleet at the epoch boundary and re-attaches the new one),
/// no triple is lost or double-ingested, and the count-typed `kg.*`
/// series still equal the single-threaded run's at end of stream.
#[test]
fn live_kg_survives_mid_stream_resizes() {
    let kg_counters = |snap: &datacron::obs::MetricsSnapshot| -> Vec<(String, u64)> {
        snap.counters()
            .iter()
            .filter(|(name, _)| name.starts_with("kg."))
            .cloned()
            .collect()
    };
    for seed in [7u64, 42] {
        let input = stream(seed);
        let expected = batch_reference(&input);

        // Single-threaded reference for the kg.* counter series.
        let mut system =
            DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
        let single_kg = system.enable_live_kg(LiveKgConfig::default());
        let _single_handles: Vec<_> =
            queries().into_iter().map(|q| single_kg.subscribe(q)).collect();
        for r in &input {
            system.ingest(*r);
        }
        system.realtime.flush();
        system.sync_batch();
        let expected_counters = kg_counters(&system.metrics());

        let (mut sharded, kg) = ShardedRealTimeLayer::with_live_kg(
            config(),
            Vec::new(),
            Vec::new(),
            ShardedConfig::with_shards(2),
            LiveKgConfig::default(),
        );
        let mut handles: Vec<_> = queries().into_iter().map(|q| kg.subscribe(q)).collect();
        let third = input.len() / 3;
        for (i, r) in input.iter().enumerate() {
            if i == third {
                sharded.resize(8).expect("resize 2 -> 8 with KG attached");
            }
            if i == 2 * third {
                sharded.resize(4).expect("resize 8 -> 4 with KG attached");
            }
            sharded.ingest(*r);
            sharded.poll_outputs();
        }
        sharded.flush();
        for (i, handle) in handles.iter_mut().enumerate() {
            let matches = handle.matches.drain().expect("match topic never overflows here");
            assert_eq!(
                match_set(&matches),
                expected[i],
                "seed {seed}, query {i}: matches must survive the resizes"
            );
        }
        let got_counters = kg_counters(&sharded.metrics());
        assert_eq!(got_counters, expected_counters, "seed {seed}: kg.* series continuous");
        let health = sharded.finish().health.kg.expect("kg enabled");
        assert!(health.is_clean(), "seed {seed}: no triple lost or left behind");
    }
}

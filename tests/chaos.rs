//! End-to-end chaos tests: the full real-time pipeline is driven through
//! every fault mode of `datacron::stream::faults` and must
//!
//! * terminate and never panic,
//! * account for every injected record (accepted + dead-lettered =
//!   delivered),
//! * keep the accepted-record outputs **bit-identical** to the fault-free
//!   run for the records that survive injection.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::{ComponentStatus, DatacronConfig, RejectReason};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use std::collections::HashMap;

/// The eight fixed chaos seeds; CI runs the same set nightly.
const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];

fn extent() -> BoundingBox {
    BoundingBox::new(0.0, 38.0, 6.0, 42.0)
}

/// A benign fleet: straight, constant-speed tracks. Any subsequence of such
/// a track is itself clean (no teleports appear when records go missing),
/// so under injection the accepted set equals the surviving set exactly.
fn fleet(entities: u64, reports_each: i64) -> Vec<PositionReport> {
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.5 + e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..reports_each {
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: 90.0,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(90.0, 80.0);
        }
    }
    // Interleave entities by time, as a live feed would.
    all.sort_by_key(|r| (r.ts, r.entity));
    all
}

fn fresh_layer() -> RealTimeLayer {
    RealTimeLayer::new(DatacronConfig::maritime(extent()), Vec::new(), Vec::new())
}

/// Feeds the stream through a layer; returns the cleaned-topic contents.
fn run_pipeline(layer: &mut RealTimeLayer, stream: impl Iterator<Item = PositionReport>) -> Vec<PositionReport> {
    for r in stream {
        layer.ingest(r);
    }
    layer
        .cleaned
        .consumer()
        .drain()
        .expect("unbounded topic never lags")
}

/// Bit-exact equality (f64 compared by bits, so NaN corruption can never
/// masquerade as equality).
fn bit_eq(a: &PositionReport, b: &PositionReport) -> bool {
    a.entity == b.entity
        && a.ts == b.ts
        && a.point.lon.to_bits() == b.point.lon.to_bits()
        && a.point.lat.to_bits() == b.point.lat.to_bits()
        && a.altitude_m.to_bits() == b.altitude_m.to_bits()
        && a.speed_mps.to_bits() == b.speed_mps.to_bits()
        && a.heading_deg.to_bits() == b.heading_deg.to_bits()
        && a.vertical_rate_mps.to_bits() == b.vertical_rate_mps.to_bits()
}

/// `sub` is an in-order subsequence of `full`, bit-identically.
fn is_bit_subsequence(sub: &[PositionReport], full: &[PositionReport]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|s| it.by_ref().any(|f| bit_eq(s, f)))
}

/// Drives one fault plan through a fresh pipeline and checks the
/// invariants shared by every fault mode.
fn check_plan(plan: FaultPlan, baseline_cleaned: &[PositionReport], input: &[PositionReport]) {
    let mut chaos = ChaosSource::new(input.iter().copied(), plan.clone());
    let mut layer = fresh_layer();
    let cleaned = run_pipeline(&mut layer, chaos.by_ref());
    let stats = chaos.stats();

    // 1. Accounting: every record the injector emitted was either fully
    // processed (cleaned) or dead-lettered — nothing vanished inside the
    // pipeline.
    let dead = layer
        .dead_letters
        .consumer()
        .drain()
        .expect("unbounded topic never lags");
    assert_eq!(
        cleaned.len() as u64 + dead.len() as u64,
        stats.emitted(),
        "seed {}: accepted + dead-lettered must equal delivered ({stats:?})",
        plan.seed
    );

    // 2. No supervision incidents: faults are data faults, not panics.
    let health = layer.health();
    assert_eq!(health.panics, 0, "seed {}: data faults must not panic", plan.seed);
    assert_eq!(health.quarantined_entities, 0);
    assert_eq!(health.rejected, dead.len() as u64);

    // 3. Every dead letter carries a cleaning label (supervision never
    // fired), and every corrupted record was caught by cleaning.
    assert!(dead
        .iter()
        .all(|d| matches!(d.reason, RejectReason::Cleaning(_))));
    assert!(
        dead.len() as u64 >= stats.corrupted,
        "seed {}: all {} corrupted records must be rejected, {} dead letters",
        plan.seed,
        stats.corrupted,
        dead.len()
    );

    // 4. Bit-identical survivors: per entity, the accepted stream is an
    // in-order, bit-exact subsequence of the fault-free accepted stream.
    let mut by_entity: HashMap<EntityId, Vec<PositionReport>> = HashMap::new();
    for r in &cleaned {
        by_entity.entry(r.entity).or_default().push(*r);
    }
    let mut baseline_by_entity: HashMap<EntityId, Vec<PositionReport>> = HashMap::new();
    for r in baseline_cleaned {
        baseline_by_entity.entry(r.entity).or_default().push(*r);
    }
    for (entity, survivors) in &by_entity {
        let base = baseline_by_entity
            .get(entity)
            .unwrap_or_else(|| panic!("seed {}: unknown entity {entity} in survivors", plan.seed));
        assert!(
            is_bit_subsequence(survivors, base),
            "seed {}: {entity}: surviving records are not a bit-identical subsequence",
            plan.seed
        );
    }
}

fn baseline(input: &[PositionReport]) -> Vec<PositionReport> {
    let mut layer = fresh_layer();
    let cleaned = run_pipeline(&mut layer, input.iter().copied());
    assert_eq!(cleaned.len(), input.len(), "the benign fleet is fully accepted");
    assert!(layer.health().is_all_ok());
    cleaned
}

#[test]
fn chaos_drops() {
    let input = fleet(3, 120);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::drops(0.1).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_duplicates() {
    let input = fleet(3, 120);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::duplicates(0.1).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_reordering() {
    let input = fleet(3, 120);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::reorders(0.1).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_corruption() {
    let input = fleet(3, 120);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::corruption(0.1).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_gaps() {
    let input = fleet(3, 200);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::gaps(0.01).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_bursts() {
    let input = fleet(3, 120);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::bursts(0.02).with_seed(seed), &base, &input);
    }
}

#[test]
fn chaos_all_modes_at_once() {
    let input = fleet(4, 150);
    let base = baseline(&input);
    for seed in SEEDS {
        check_plan(FaultPlan::chaos(seed), &base, &input);
    }
}

/// The control arm: a zero-fault plan leaves the pipeline bit-identical to
/// the unwrapped run — the chaos harness itself injects nothing.
#[test]
fn chaos_control_arm_is_transparent() {
    let input = fleet(2, 100);
    let base = baseline(&input);
    let mut layer = fresh_layer();
    let cleaned = run_pipeline(&mut layer, ChaosSource::new(input.iter().copied(), FaultPlan::none()));
    assert_eq!(cleaned.len(), base.len());
    assert!(cleaned.iter().zip(base.iter()).all(|(a, b)| bit_eq(a, b)));
    assert_eq!(layer.dead_letters.len(), 0);
    assert_eq!(layer.health().status, ComponentStatus::Ok);
}

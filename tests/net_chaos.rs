//! End-to-end networked-ingestion chaos drills: a client streams a seeded
//! fleet through the wire-level fault proxy (connection resets, frame
//! corruption, truncation, duplication, stalls, plus forced kills every N
//! frames) into a `NetServer` bridged onto a topic, and the result must be
//! **bit-identical** to in-process ingestion:
//!
//! * the topic receives exactly the sent stream — no loss, no duplication,
//!   no reordering — after any number of session resumes;
//! * feeding the received stream through the real-time layer produces
//!   cleaned outputs, dead-letter labels and health counters identical to
//!   feeding the original stream directly.

use std::sync::Arc;
use std::time::Duration;

use datacron::core::realtime::RealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use datacron::obs::ObsRegistry;
use datacron::stream::faults::{ChaosSource, FaultPlan, NetFaultPlan};
use datacron::stream::{OverflowPolicy, Topic, TopicConfig};

/// The eight fixed chaos seeds; same set as the in-process chaos suite.
const SEEDS: [u64; 8] = [1, 7, 23, 42, 97, 1234, 0xDEAD_BEEF, u64::MAX / 3];

fn extent() -> BoundingBox {
    BoundingBox::new(0.0, 38.0, 6.0, 42.0)
}

/// Benign straight-line fleet, interleaved by time (see tests/chaos.rs).
fn fleet(entities: u64, reports_each: i64) -> Vec<PositionReport> {
    let mut all = Vec::new();
    for e in 0..entities {
        let mut p = GeoPoint::new(0.5 + e as f64, 39.0 + 0.2 * e as f64);
        for i in 0..reports_each {
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: 90.0,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(90.0, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    all
}

fn bit_eq(a: &PositionReport, b: &PositionReport) -> bool {
    a.entity == b.entity
        && a.ts == b.ts
        && a.point.lon.to_bits() == b.point.lon.to_bits()
        && a.point.lat.to_bits() == b.point.lat.to_bits()
        && a.altitude_m.to_bits() == b.altitude_m.to_bits()
        && a.speed_mps.to_bits() == b.speed_mps.to_bits()
        && a.heading_deg.to_bits() == b.heading_deg.to_bits()
        && a.vertical_rate_mps.to_bits() == b.vertical_rate_mps.to_bits()
}

fn assert_bit_identical(got: &[PositionReport], want: &[PositionReport], what: &str, seed: u64) {
    assert_eq!(
        got.len(),
        want.len(),
        "seed {seed}: {what}: length mismatch (got {}, want {})",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            bit_eq(g, w),
            "seed {seed}: {what}: record {i} differs: got {g:?}, want {w:?}"
        );
    }
}

fn drill_server_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(20),
        ack_every: 16,
        ..ServerConfig::default()
    }
}

fn drill_client_config(addr: String, session_id: u64, seed: u64) -> ClientConfig {
    let mut cfg = ClientConfig::new(addr, session_id);
    cfg.connect_timeout = Duration::from_millis(500);
    cfg.read_timeout = Duration::from_millis(20);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.dead_after = Duration::from_secs(3);
    cfg.backoff.base = Duration::from_millis(2);
    cfg.backoff.cap = Duration::from_millis(40);
    cfg.backoff.seed = seed;
    cfg.max_connect_attempts = 200;
    cfg
}

/// Stream `input` through proxy+server onto `topic` and return
/// (received records, client reconnects, proxy stats).
fn stream_through_chaos(
    input: &[PositionReport],
    topic: Arc<Topic<PositionReport>>,
    seed: u64,
    plan: NetFaultPlan,
) -> (Vec<PositionReport>, datacron::net::ClientStats, datacron::stream::NetFaultStats) {
    let obs = ObsRegistry::new();
    let server =
        NetServer::bind("127.0.0.1:0", drill_server_config(), Arc::clone(&topic), &obs)
            .expect("server binds");
    let proxy =
        datacron::net::FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut consumer = topic.consumer();
    let cfg = drill_client_config(proxy.local_addr().to_string(), seed, seed);
    let mut client = NetClient::connect(cfg, &obs).expect("client connects through proxy");
    for r in input {
        client.send(*r).expect("send never fails terminally under chaos");
    }
    let stats = client.finish().expect("finish completes under chaos");

    let received = consumer.drain().expect("unbounded topic never lags");
    let session = server.session(seed).expect("session exists");
    assert_eq!(session.next_expected, input.len() as u64, "seed {seed}: watermark");
    assert_eq!(session.finished, Some(input.len() as u64), "seed {seed}: finish marker");

    let health = server.health();
    assert_eq!(
        health.records_ingested,
        input.len() as u64,
        "seed {seed}: server must ingest exactly once: {health:?}"
    );
    let fstats = proxy.stats();
    proxy.shutdown();
    server.shutdown();
    (received, stats, fstats)
}

/// The acceptance drill: every seed, full wire chaos plus a forced
/// connection kill every 101 frames; the topic must see exactly the sent
/// stream.
#[test]
fn wire_chaos_delivers_exactly_once_in_order() {
    let input = fleet(6, 150);
    for seed in SEEDS {
        let topic: Arc<Topic<PositionReport>> = Topic::new("net.chaos");
        let plan = NetFaultPlan::chaos(seed).with_kill_every(101);
        let (received, stats, fstats) = stream_through_chaos(&input, topic, seed, plan);

        assert_bit_identical(&received, &input, "received stream", seed);
        assert!(
            stats.reconnects >= 1,
            "seed {seed}: forced kills must cause at least one resume ({stats:?})"
        );
        assert!(
            fstats.resets >= 1,
            "seed {seed}: the kill schedule must have fired ({fstats:?})"
        );
        assert_eq!(stats.acked, input.len() as u64, "seed {seed}: all acked");
    }
}

/// Frame corruption alone (no kills): every flipped frame must be caught
/// by the CRC, the connection torn down, and the stream still delivered
/// exactly once.
#[test]
fn frame_corruption_is_always_caught_and_healed() {
    let input = fleet(4, 120);
    for seed in SEEDS {
        let topic: Arc<Topic<PositionReport>> = Topic::new("net.corrupt");
        let plan = NetFaultPlan { bit_flip: 0.02, ..NetFaultPlan::none() }.with_seed(seed);
        let (received, stats, fstats) = stream_through_chaos(&input, topic, seed, plan);

        assert_bit_identical(&received, &input, "received stream", seed);
        if fstats.bit_flips > 0 {
            assert!(
                stats.reconnects >= 1,
                "seed {seed}: corruption must force resumes ({fstats:?}, {stats:?})"
            );
        }
    }
}

/// The equivalence drill from the issue: a data-faulted feed (drops,
/// duplicates, corruption — the PR-1 harness) travels the chaotic wire,
/// then through the full real-time layer. Outputs, dead-letter labels and
/// health counters must be bit-identical to in-process ingestion of the
/// same feed.
#[test]
fn pipeline_equivalence_under_wire_chaos() {
    let raw = fleet(4, 150);
    for seed in SEEDS {
        // Data-level faults first: what the sensor feed actually delivers.
        let delivered: Vec<PositionReport> =
            ChaosSource::new(raw.iter().copied(), FaultPlan::chaos(seed)).collect();

        // In-process arm.
        let mut direct_layer =
            RealTimeLayer::new(DatacronConfig::maritime(extent()), Vec::new(), Vec::new());
        for r in &delivered {
            direct_layer.ingest(*r);
        }

        // Networked arm under wire chaos with forced kills.
        let topic: Arc<Topic<PositionReport>> = Topic::new("net.equiv");
        let plan = NetFaultPlan::chaos(seed).with_kill_every(83);
        let (received, _, _) = stream_through_chaos(&delivered, topic, seed, plan);
        let mut net_layer =
            RealTimeLayer::new(DatacronConfig::maritime(extent()), Vec::new(), Vec::new());
        for r in &received {
            net_layer.ingest(*r);
        }

        // Cleaned outputs bit-identical.
        let direct_cleaned = direct_layer.cleaned.consumer().drain().unwrap();
        let net_cleaned = net_layer.cleaned.consumer().drain().unwrap();
        assert_bit_identical(&net_cleaned, &direct_cleaned, "cleaned output", seed);

        // Dead letters: same records, same labels, same order.
        let direct_dead = direct_layer.dead_letters.consumer().drain().unwrap();
        let net_dead = net_layer.dead_letters.consumer().drain().unwrap();
        assert_eq!(direct_dead.len(), net_dead.len(), "seed {seed}: dead-letter count");
        for (i, (a, b)) in direct_dead.iter().zip(net_dead.iter()).enumerate() {
            assert!(
                bit_eq(&a.report, &b.report),
                "seed {seed}: dead letter {i} record differs"
            );
            assert_eq!(
                format!("{:?}", a.reason),
                format!("{:?}", b.reason),
                "seed {seed}: dead letter {i} label differs"
            );
        }

        // Health counters agree.
        let dh = direct_layer.health();
        let nh = net_layer.health();
        assert_eq!(dh.accepted, nh.accepted, "seed {seed}: accepted");
        assert_eq!(dh.rejected, nh.rejected, "seed {seed}: rejected");
        assert_eq!(dh.panics, nh.panics, "seed {seed}: panics");
    }
}

/// Backpressure arm: a small bounded Block topic with a slow concurrent
/// drainer. The server must park on the topic (TCP backpressure) rather
/// than drop, and the drained stream is still exactly the sent stream.
#[test]
fn block_topic_backpressure_under_chaos() {
    let input = fleet(3, 100);
    let seed = SEEDS[3];
    let topic: Arc<Topic<PositionReport>> = Topic::with_config(
        "net.block",
        TopicConfig {
            capacity: Some(32),
            policy: OverflowPolicy::Block,
            block_timeout: Duration::from_millis(200),
        },
    );
    let mut consumer = topic.consumer();
    let total = input.len();
    let drainer = std::thread::spawn(move || {
        let mut got = Vec::with_capacity(total);
        while got.len() < total {
            match consumer.poll_wait(16, Duration::from_secs(10)) {
                Ok(batch) if batch.is_empty() => break,
                Ok(batch) => {
                    got.extend(batch);
                    // Slow consumer: let the topic fill and backpressure
                    // propagate down the TCP link.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => unreachable!("lossless Block topic never lags"),
            }
        }
        got
    });

    let obs = ObsRegistry::new();
    let server =
        NetServer::bind("127.0.0.1:0", drill_server_config(), Arc::clone(&topic), &obs).unwrap();
    let proxy = datacron::net::FaultProxy::start(
        server.local_addr(),
        NetFaultPlan::chaos(seed).with_kill_every(151),
    )
    .unwrap();
    let cfg = drill_client_config(proxy.local_addr().to_string(), seed, seed);
    let mut client = NetClient::connect(cfg, &obs).unwrap();
    for r in &input {
        client.send(*r).unwrap();
    }
    let stats = client.finish().unwrap();
    assert_eq!(stats.acked, input.len() as u64);

    let got = drainer.join().unwrap();
    assert_bit_identical(&got, &input, "drained stream", seed);
    proxy.shutdown();
    server.shutdown();
}

/// Control arm: a pass-through proxy injects nothing — zero reconnects,
/// zero duplicates server-side, and the fault schedule reports only
/// passed frames.
#[test]
fn control_arm_proxy_is_transparent() {
    let input = fleet(2, 100);
    let seed = SEEDS[0];
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.control");
    let (received, stats, fstats) =
        stream_through_chaos(&input, Arc::clone(&topic), seed, NetFaultPlan::none());
    assert_bit_identical(&received, &input, "received stream", seed);
    assert_eq!(stats.reconnects, 0, "control arm must not reconnect");
    assert_eq!(stats.nacks_seen, 0);
    assert_eq!(fstats.frames, fstats.passed, "control arm must pass every frame: {fstats:?}");
}

//! Cross-component integration below the full-system level: pairs of
//! components whose contracts must line up.

use datacron::data::aviation::{FlightGenerator, FlightPlan, FlightProfile};
use datacron::data::maritime::{VesselClass, VoyageConfig, VoyageGenerator};
use datacron::data::weather::WeatherField;
use datacron::geo::{BoundingBox, GeoPoint, Timestamp, Trajectory};
use datacron::linkdisc::{LinkerConfig, StaticLinker};
use datacron::rdf::graph::Graph;
use datacron::rdf::query::{evaluate, PatternTerm, QueryPattern};
use datacron::rdf::vocab;
use datacron::stream::cleaning::CleaningConfig;
use datacron::stream::operator::Operator;
use datacron::synopses::{CompressionReport, SynopsesConfig, SynopsesGenerator};
use datacron::va::matching::match_trajectories;
use datacron::va::quality::assess_quality;

/// Synopses error stays within the dead-reckoning bound on generated
/// voyages of every class.
#[test]
fn synopses_error_is_bounded_across_vessel_classes() {
    let gen = VoyageGenerator::new(VoyageConfig::clean());
    let cfg = SynopsesConfig::maritime();
    for (i, class) in [VesselClass::Cargo, VesselClass::Tanker, VesselClass::Ferry]
        .into_iter()
        .enumerate()
    {
        let a = GeoPoint::new(i as f64, 40.0);
        let b = a.destination(70.0 + 40.0 * i as f64, 180_000.0);
        let v = gen.voyage(i as u64, class, a, b, Timestamp(0), 17 + i as u64);
        let mut sg = SynopsesGenerator::new(cfg.clone());
        let synopsis = sg.run(v.clean.reports().to_vec());
        let report = CompressionReport::measure(&v.clean, &synopsis).expect("non-empty");
        assert!(
            report.max_error_m < cfg.deviation_threshold_m * 1.6,
            "{class:?}: max error {:.0} m exceeds the bound",
            report.max_error_m
        );
        assert!(report.reduction > 0.9, "{class:?}: reduction {:.3}", report.reduction);
    }
}

/// Quality assessment counts exactly what the generator injected (up to the
/// classifier's view of overlapping degradations).
#[test]
fn quality_report_matches_ground_truth_scale() {
    let cfg = VoyageConfig {
        outlier_probability: 0.02,
        duplicate_probability: 0.02,
        gap_probability: 0.004,
        ..VoyageConfig::default()
    };
    let v = VoyageGenerator::new(cfg).voyage(
        1,
        VesselClass::Cargo,
        GeoPoint::new(0.0, 40.0),
        GeoPoint::new(1.5, 40.8),
        Timestamp(0),
        17,
    );
    let q = assess_quality(&v.reports, CleaningConfig::maritime(), 300.0);
    // Duplicates: the generator duplicates records verbatim, every one must
    // be flagged.
    let injected_dups = v.reports.len() - {
        let mut unique: Vec<_> = v.reports.iter().map(|r| r.ts).collect();
        unique.dedup();
        unique.len()
    };
    assert_eq!(q.duplicates as usize, injected_dups);
    // Outliers: at least half of the injected teleports are caught (an
    // outlier immediately after a gap can masquerade as travel).
    assert!(q.outliers as usize * 2 >= v.truth.outliers.len(), "{} caught of {}", q.outliers, v.truth.outliers.len());
    assert!(q.gaps as usize >= v.truth.gaps.len());
}

/// Link discovery output lifts into an RDF graph that answers BGP queries.
#[test]
fn links_lift_into_queryable_rdf() {
    let region = datacron::geo::Polygon::rect(BoundingBox::new(1.0, 1.0, 2.0, 2.0));
    let mut linker = StaticLinker::new(vec![(9, region)], Vec::new(), LinkerConfig::default());
    let mut graph = Graph::new();
    for i in 0..20 {
        let p = GeoPoint::new(0.9 + 0.01 * i as f64, 1.5);
        for link in linker.link_point(datacron::geo::EntityId::vessel(1), Timestamp::from_secs(i), &p) {
            graph.insert(link.to_triple());
        }
    }
    assert!(!graph.is_empty());
    // Which nodes are within region 9?
    let sols = evaluate(
        &graph,
        &[QueryPattern::new(
            PatternTerm::var("node"),
            PatternTerm::Const(vocab::within()),
            PatternTerm::Const(vocab::region_iri(9)),
        )],
    );
    assert!(!sols.is_empty());
    for s in &sols {
        assert!(s["node"].as_iri().unwrap().contains("node/vessel/1/"));
    }
}

/// A generated flight matched against itself and against a different
/// runway realisation behaves like the Fig 12 workflow end to end.
#[test]
fn point_matching_separates_matching_and_mismatched_flights() {
    let extent = BoundingBox::new(-10.0, 35.0, 5.0, 45.0);
    let weather = WeatherField::new(extent, 3, 4, 10.0);
    let generator = FlightGenerator::new(FlightProfile::default(), weather);
    let airport = GeoPoint::new(-3.56, 40.47);
    let a = generator.arrivals_with_runway_change(2, airport, 1, Timestamp(0), 600.0, 8);
    // Pair 0: opposite runway directions; pair 1: same flight re-simulated.
    let same = match_trajectories(&a[1].clean, &a[1].clean, 1_000.0).unwrap();
    assert_eq!(same.proportion(), 1.0);
    let opposite = match_trajectories(&a[0].clean, &a[1].clean, 1_000.0).unwrap();
    assert!(opposite.proportion() < 0.7, "opposite approaches mismatch: {}", opposite.proportion());
}

/// The FLP harness, the generator, and the predictors agree on scale: a
/// straight cruise segment is predictable to within tens of metres.
#[test]
fn cruise_segment_is_predictable() {
    let extent = BoundingBox::new(-10.0, 35.0, 5.0, 45.0);
    let weather = WeatherField::new(extent, 3, 4, 10.0);
    let generator = FlightGenerator::new(
        FlightProfile {
            noise_sigma_m: 0.0,
            ..FlightProfile::default()
        },
        weather,
    );
    let plan = FlightPlan::between(1, GeoPoint::new(2.08, 41.3), GeoPoint::new(-3.56, 40.47), 3, 10_500.0, 220.0, 5);
    let f = generator.flight(1, &plan, 1, 2, Timestamp(0), 77);
    // Middle third of the flight = cruise.
    let reports = f.clean.reports();
    let cruise: Vec<_> = reports[reports.len() / 3..2 * reports.len() / 3].to_vec();
    let t = Trajectory::from_reports(cruise);
    let r = datacron::predict::flp::evaluate_flp(
        &t,
        &datacron::predict::RmfStarPredictor::default(),
        12,
        4,
    )
    .expect("cruise long enough");
    assert!(
        r.final_horizon_error() < 200.0,
        "cruise should predict to tens of metres, got {:.0}",
        r.final_horizon_error()
    );
}

//! Batch-vs-per-record equivalence: `RealTimeLayer::ingest_batch` (the
//! columnar/deferred-publish hot path, with its compiled RDF lifter and
//! recycled output buffers) must be **bit-identical** to calling
//! `RealTimeLayer::ingest` once per record — per-record outputs, all six
//! topic contents, end-of-stream flush, health, dead-letter labels and
//! every count-typed metric — under chaotic input, with supervision
//! panics in the middle of batches, through the columnar [`RecordBatch`]
//! entry point, and through the sharded executor (whose workers run the
//! batch path via `ShardStage::on_batch`).

use datacron::core::realtime::{IngestOutput, RealTimeLayer};
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, RecordBatch, Timestamp};
use datacron::obs::MetricsSnapshot;
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::stream::parallel::ShardedConfig;

const SEEDS: [u64; 4] = [7, 42, 1234, 0xDEAD_BEEF];
/// Odd chunk size, so batch boundaries never align with entity or leg
/// structure and plenty of entity state crosses them.
const CHUNK: usize = 173;

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(-6.0, 36.0, 6.0, 44.0))
}

type Context = (Vec<(u64, Polygon)>, Vec<(u64, GeoPoint)>);

fn context() -> Context {
    let regions = vec![
        (7u64, Polygon::rect(BoundingBox::new(-1.0, 39.0, 1.0, 41.0))),
        (8u64, Polygon::rect(BoundingBox::new(1.5, 37.5, 3.5, 39.5))),
    ];
    let ports = vec![(3u64, GeoPoint::new(0.0, 40.0)), (4u64, GeoPoint::new(2.0, 38.0))];
    (regions, ports)
}

/// A seeded maneuvering fleet: legs of steady cruising punctuated by turns
/// and speed changes, so every stage of the chain (synopses, area events,
/// links, RDF, CEP-free) does real work.
fn fleet(seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    let entities = 10 + seed % 5;
    let reports_each = 60i64;
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-2.0, 3.0), rng.uniform(38.0, 41.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(5, 20),
        })
        .collect();
    let mut out = Vec::new();
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(5, 20);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

/// The chaos-wrapped input of a seed, materialised once so both runs see
/// byte-identical records.
fn chaotic_input(seed: u64) -> Vec<PositionReport> {
    ChaosSource::new(fleet(seed).into_iter(), FaultPlan::chaos(seed)).collect()
}

/// A per-entity stage that panics on one poisoned entity, exercising
/// supervision (restarts, quarantine, dead letters) mid-batch.
fn poison_stage(r: &PositionReport) {
    assert!(r.entity != EntityId::vessel(3), "poison record");
}

fn make_layer(poisoned: bool) -> RealTimeLayer {
    let (regions, ports) = context();
    let mut layer = RealTimeLayer::new(config(), regions, ports);
    if poisoned {
        layer.attach_entity_stage(poison_stage);
    }
    layer
}

/// Everything observable about a completed run, in comparable (Debug)
/// form. Debug spells every `f64` bit-faithfully, and NaN == NaN as text,
/// which chaos-corrupted records require.
struct RunTrace {
    outputs: Vec<String>,
    flush: String,
    health: String,
    counters: MetricsSnapshot,
    topics: Vec<String>,
}

/// Captures the run's aggregate state. Counter snapshot is taken before
/// draining the topics (drains bump topic `consumed` stats).
fn finish_trace(mut layer: RealTimeLayer, outputs: Vec<String>) -> RunTrace {
    let flush = format!("{:?}", layer.flush());
    let health = format!("{:?}", layer.health());
    let counters = layer.metrics_snapshot().counters_only();
    let topics = vec![
        format!("{:?}", layer.cleaned.consumer().drain().expect("no lag")),
        format!("{:?}", layer.critical.consumer().drain().expect("no lag")),
        format!("{:?}", layer.area_events.consumer().drain().expect("no lag")),
        format!("{:?}", layer.triples.consumer().drain().expect("no lag")),
        format!("{:?}", layer.links.consumer().drain().expect("no lag")),
        format!("{:?}", layer.dead_letters.consumer().drain().expect("no lag")),
    ];
    RunTrace { outputs, flush, health, counters, topics }
}

/// Reference arm: one `ingest` call per record.
fn trace_per_record(input: &[PositionReport], poisoned: bool) -> RunTrace {
    let mut layer = make_layer(poisoned);
    let outputs = input.iter().map(|r| format!("{:?}", layer.ingest(*r))).collect();
    finish_trace(layer, outputs)
}

/// Batch arm: `ingest_batch` in CHUNK-sized slices, recycling every output
/// back into the layer's buffer pool (recycling must never change what a
/// later record produces).
fn trace_batched(input: &[PositionReport], poisoned: bool) -> RunTrace {
    let mut layer = make_layer(poisoned);
    let mut outputs = Vec::with_capacity(input.len());
    for chunk in input.chunks(CHUNK) {
        for out in layer.ingest_batch(chunk.iter().copied()) {
            outputs.push(format!("{out:?}"));
            layer.recycle(out);
        }
    }
    finish_trace(layer, outputs)
}

/// Columnar arm: rows packed into a reused [`RecordBatch`] and ingested
/// through `ingest_record_batch`.
fn trace_columnar(input: &[PositionReport], poisoned: bool) -> RunTrace {
    let mut layer = make_layer(poisoned);
    let mut outputs = Vec::with_capacity(input.len());
    let mut batch = RecordBatch::with_capacity(CHUNK);
    for chunk in input.chunks(CHUNK) {
        batch.clear();
        for r in chunk {
            batch.push(*r);
        }
        for out in layer.ingest_record_batch(&batch) {
            outputs.push(format!("{out:?}"));
            layer.recycle(out);
        }
    }
    finish_trace(layer, outputs)
}

const TOPIC_NAMES: [&str; 6] = ["cleaned", "critical", "area_events", "triples", "links", "dead_letters"];

fn assert_traces_match(reference: &RunTrace, got: &RunTrace, label: &str) {
    assert_eq!(got.outputs.len(), reference.outputs.len(), "{label}: output count");
    for (i, (g, e)) in got.outputs.iter().zip(&reference.outputs).enumerate() {
        assert_eq!(g, e, "{label}: output {i} must be bit-identical");
    }
    assert_eq!(got.flush, reference.flush, "{label}: end-of-stream flush");
    assert_eq!(got.health, reference.health, "{label}: health report");
    assert_eq!(got.counters, reference.counters, "{label}: count-typed metrics");
    for (name, (g, e)) in TOPIC_NAMES.iter().zip(got.topics.iter().zip(&reference.topics)) {
        assert_eq!(g, e, "{label}: {name} topic contents");
    }
}

#[test]
fn batch_path_is_bit_identical_to_per_record_under_chaos() {
    for seed in SEEDS {
        let input = chaotic_input(seed);
        let reference = trace_per_record(&input, false);
        assert!(
            reference.outputs.iter().any(|o| o.contains("ChangeInHeading")),
            "seed {seed}: the fleet must exercise the synopses stage"
        );
        let batched = trace_batched(&input, false);
        assert_traces_match(&reference, &batched, &format!("chaos seed {seed}"));
    }
}

#[test]
fn columnar_record_batches_match_per_record() {
    for seed in [SEEDS[0], SEEDS[1]] {
        let input = chaotic_input(seed);
        let reference = trace_per_record(&input, false);
        let columnar = trace_columnar(&input, false);
        assert_traces_match(&reference, &columnar, &format!("columnar seed {seed}"));
    }
}

#[test]
fn batch_path_matches_under_supervision_panics() {
    // A poisoned entity panics inside the supervised section on every
    // record: restarts, quarantine and panic dead-letters all land
    // mid-batch and must replay identically.
    let seed = SEEDS[2];
    let input = chaotic_input(seed);
    let reference = trace_per_record(&input, true);
    assert!(
        reference.health.contains("quarantined_entities: 1"),
        "seed {seed}: the poisoned entity must be quarantined in the reference run"
    );
    let batched = trace_batched(&input, true);
    assert_traces_match(&reference, &batched, &format!("poisoned chaos seed {seed}"));
}

#[test]
fn sharded_workers_on_the_batch_path_match_single_threaded() {
    // Sharded workers now run `ingest_batch` via `ShardStage::on_batch`;
    // the merged output stream must still be positionally identical to the
    // single-threaded per-record reference.
    for (seed, shards) in [(SEEDS[0], 2usize), (SEEDS[3], 4usize)] {
        let input = chaotic_input(seed);
        let mut single = make_layer(true);
        let expect: Vec<IngestOutput> = input.iter().map(|r| single.ingest(*r)).collect();
        let expect_flush = single.flush();
        let expect_health = single.health();

        let (regions, ports) = context();
        let mut sharded = ShardedRealTimeLayer::with_setup(
            config(),
            regions,
            ports,
            ShardedConfig::with_shards(shards),
            |layer| layer.attach_entity_stage(poison_stage),
        );
        let mut got = Vec::new();
        for chunk in input.chunks(256) {
            sharded.ingest_batch(chunk.iter().copied());
            got.extend(sharded.poll_outputs());
        }
        let flush = sharded.flush();
        let done = sharded.finish();
        got.extend(done.outputs);

        let label = format!("seed {seed}, {shards} shards");
        assert_eq!(done.merged, input.len() as u64, "{label}: lossless merge");
        assert_eq!(done.duplicates, 0, "{label}: exactly-once");
        assert_eq!(got.len(), expect.len(), "{label}");
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(
                format!("{:?}", g.output),
                format!("{e:?}"),
                "{label}: output {i} must be bit-identical"
            );
        }
        assert_eq!(format!("{flush:?}"), format!("{expect_flush:?}"), "{label}: flush");
        assert_eq!(
            format!("{:?}", done.health),
            format!("{expect_health:?}"),
            "{label}: merged health"
        );
    }
}

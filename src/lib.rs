#![warn(missing_docs)]

//! datAcron-rs: time-critical mobility forecasting.
//!
//! This is the umbrella crate of the workspace: it re-exports every
//! component of the datAcron architecture (EDBT 2018) so that applications
//! can depend on a single crate. See the README for an architecture overview
//! and `examples/` for runnable scenarios.

pub use datacron_cep as cep;
pub use datacron_core as core;
pub use datacron_data as data;
pub use datacron_durability as durability;
pub use datacron_geo as geo;
pub use datacron_linkdisc as linkdisc;
pub use datacron_net as net;
pub use datacron_obs as obs;
pub use datacron_predict as predict;
pub use datacron_rdf as rdf;
pub use datacron_store as store;
pub use datacron_stream as stream;
pub use datacron_synopses as synopses;
pub use datacron_va as va;

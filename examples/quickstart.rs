//! Quickstart: stand up the datAcron system, stream one vessel through it,
//! and look at everything the architecture produces.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use datacron::core::{DatacronConfig, DatacronSystem};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::rdf::term::Term;
use datacron::rdf::vocab;
use datacron::store::{StExecution, StarQuery, StoreConfig};

fn main() {
    // 1. The area of interest and the system (real-time + batch layers).
    let extent = BoundingBox::new(0.0, 38.0, 4.0, 42.0);
    let config = DatacronConfig::maritime(extent);
    let mut system = DatacronSystem::new(config, Vec::new(), Vec::new(), StoreConfig::default());

    // 2. Stream a simple voyage: eastbound cruise, a 90-degree turn north,
    //    then a stop.
    let vessel = EntityId::vessel(42);
    let mut p = GeoPoint::new(0.5, 40.0);
    let mut t = 0i64;
    let drive = |system: &mut DatacronSystem, p: &mut GeoPoint, t: &mut i64, heading: f64, speed: f64, steps: i64| {
        for _ in 0..steps {
            let report = PositionReport {
                speed_mps: speed,
                heading_deg: heading,
                ..PositionReport::basic(vessel, Timestamp::from_secs(*t), *p)
            };
            system.ingest(report);
            *p = p.destination(heading, speed * 10.0);
            *t += 10;
        }
    };
    drive(&mut system, &mut p, &mut t, 90.0, 8.0, 120); // east
    drive(&mut system, &mut p, &mut t, 0.0, 8.0, 120); // north
    drive(&mut system, &mut p, &mut t, 0.0, 0.2, 30); // drifting stop

    // 3. The live situation picture (the dashboard's data).
    let picture = system.situation(4, 10.0);
    println!("situation as of t{}:", picture.as_of.secs());
    println!("  reports ingested : {}", picture.total_reports);
    println!("  critical points  : {}", picture.total_critical);
    for entry in &picture.entries {
        println!(
            "  {} at {}  speed {:.1} m/s — predicted next: {}",
            entry.entity,
            entry.last.point,
            entry.last.speed_mps,
            entry
                .predicted
                .first()
                .map(|q| q.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }

    // 4. Sync the batch layer and query the knowledge graph: where did this
    //    vessel manoeuvre?
    let nodes = system.sync_batch();
    println!("\nbatch layer: {} semantic nodes, {} triples", nodes, system.batch.triple_count());
    let query = StarQuery {
        arms: vec![
            (vocab::rdf_type(), Some(vocab::semantic_node_class())),
            (vocab::event_type(), Some(Term::str("change_in_heading"))),
        ],
        st: None,
    };
    let (turns, _) = system.batch.query(&query, StExecution::Pushdown);
    println!("turn events stored in the knowledge graph:");
    for node in &turns {
        println!("  {}", node.as_iri().unwrap_or("?"));
    }
}

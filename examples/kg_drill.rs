//! Live-vs-batch knowledge-graph equivalence drill (EXPERIMENTS.md).
//!
//! Replays one seeded synthetic fleet three ways and proves they agree:
//!
//! 1. **Batch reference** — run the pipeline with no KG attached, capture
//!    the full `triples` stream, load it into a [`LiveStore`] in one
//!    `ingest_batch`, and run each star query once at the end.
//! 2. **Single-threaded live** — [`DatacronSystem`] with the live KG
//!    enabled and subscriptions registered before the first report; the
//!    KG drains on every ingest, matches stream out as triples arrive.
//! 3. **Sharded live** — [`ShardedRealTimeLayer::with_live_kg`] at a
//!    sweep of shard counts, draining at the barrier points.
//!
//! Every live path must emit **exactly** the batch reference's match set
//! (the binary exits non-zero otherwise), and the run writes a
//! machine-readable `BENCH_kg.json` — per-path ingest throughput, triple
//! and match counts, and the `kg.ingest_to_match_ns` latency percentiles
//! — validated in CI against `schemas/bench_kg.schema.json`.
//!
//! No external harness: build with `--release` and run directly.
//!
//! ```text
//! cargo run --release --example kg_drill -- \
//!     [--entities 32] [--reports 200] [--shards 1,4] [--seed 42] \
//!     [--out BENCH_kg.json] [--quick]
//! ```

use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::system::DatacronSystem;
use datacron::core::{DatacronConfig, LiveKg, LiveKgConfig};
use datacron::geo::{
    BoundingBox, EntityId, EquiGrid, GeoPoint, PositionReport, StCellEncoder, TimeInterval,
    Timestamp,
};
use datacron::rdf::term::{Term, Triple};
use datacron::rdf::vocab;
use datacron::store::store::{StExecution, StarQuery};
use datacron::store::{LiveStore, StarMatch, StoreConfig, SubscriptionHandle};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    entities: u64,
    reports: i64,
    shards: Vec<usize>,
    seed: u64,
    out: String,
    quick: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            entities: 32,
            reports: 200,
            shards: vec![1, 4],
            seed: 42,
            out: "BENCH_kg.json".to_string(),
            quick: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--entities" => args.entities = value(&mut i).parse().expect("--entities"),
                "--reports" => args.reports = value(&mut i).parse().expect("--reports"),
                "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
                "--out" => args.out = value(&mut i),
                "--shards" => {
                    args.shards = value(&mut i)
                        .split(',')
                        .map(|s| s.trim().parse().expect("--shards"))
                        .collect();
                }
                "--quick" => args.quick = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if args.quick {
            args.entities = args.entities.min(16);
            args.reports = args.reports.min(100);
        }
        args
    }
}

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(0.0, 38.0, 6.0, 42.0))
}

/// A seeded fleet with two turns per entity, so the synopses stage emits
/// heading-change critical points that the star queries match.
fn fleet(entities: u64, reports_each: i64, seed: u64) -> Vec<PositionReport> {
    let mut all = Vec::new();
    for e in 0..entities {
        let jitter = ((seed.wrapping_mul(e + 1)) % 7) as f64 * 0.05;
        let mut p = GeoPoint::new(0.4 + 0.15 * e as f64 % 5.0 + jitter, 38.5 + 0.4 * (e % 8) as f64);
        for i in 0..reports_each {
            let phase = (i * 3) / reports_each.max(1);
            let heading = match phase {
                0 => 90.0,
                1 => 180.0,
                _ => 90.0,
            };
            all.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: heading,
                ..PositionReport::basic(EntityId::vessel(e), Timestamp::from_secs(i * 10), p)
            });
            p = p.destination(heading, 80.0);
        }
    }
    all.sort_by_key(|r| (r.ts, r.entity));
    all
}

/// The continuous queries under drill: a plain star join over heading
/// changes and the same join under a spatio-temporal window (exercises
/// the dictionary's st pushdown on the live path).
fn queries(reports_each: i64) -> Vec<StarQuery> {
    let arms = vec![
        (vocab::rdf_type(), Some(vocab::semantic_node_class())),
        (vocab::event_type(), Some(Term::str("change_in_heading"))),
    ];
    vec![
        StarQuery { arms: arms.clone(), st: None },
        StarQuery {
            arms,
            st: Some((
                BoundingBox::new(0.0, 38.0, 3.0, 42.0),
                TimeInterval::new(
                    Timestamp::from_secs(0),
                    Timestamp::from_secs(reports_each * 10 / 2),
                ),
            )),
        },
    ]
}

fn subject_set(terms: &[Term]) -> BTreeSet<String> {
    terms.iter().map(|t| format!("{t:?}")).collect()
}

fn match_set(matches: &[StarMatch]) -> BTreeSet<String> {
    matches.iter().map(|m| format!("{:?}", m.subject)).collect()
}

fn drain_matches(handles: &mut [SubscriptionHandle]) -> Vec<BTreeSet<String>> {
    handles
        .iter_mut()
        .map(|h| match_set(&h.matches.drain().expect("match topic sized for the drill")))
        .collect()
}

struct BatchReference {
    triples: u64,
    load: Duration,
    query: Duration,
    matches: Vec<BTreeSet<String>>,
}

/// The batch path: pipeline with no KG, full triple capture, one
/// `ingest_batch`, one query pass at the end.
fn run_batch(input: &[PositionReport], queries: &[StarQuery]) -> BatchReference {
    let cfg = config();
    let mut layer = RealTimeLayer::new(cfg.clone(), Vec::new(), Vec::new());
    let mut rx = layer.triples.consumer();
    for r in input {
        layer.ingest(*r);
    }
    layer.flush();
    let mut all: Vec<Triple> = Vec::new();
    loop {
        let batch = rx.drain().expect("unbounded topic never lags");
        if batch.is_empty() {
            break;
        }
        all.extend(batch);
    }
    let grid = EquiGrid::new(cfg.extent, cfg.st_grid_cells, cfg.st_grid_cells);
    let encoder = StCellEncoder::new(grid, cfg.epoch, cfg.st_bucket_millis);
    let store = LiveStore::new(encoder, StoreConfig::default());
    let t0 = Instant::now();
    store.ingest_batch(&all);
    let load = t0.elapsed();
    let t1 = Instant::now();
    let matches = queries
        .iter()
        .map(|q| {
            let (subjects, _) = store.snapshot().execute_star(q, StExecution::Pushdown);
            subject_set(&subjects)
        })
        .collect();
    BatchReference { triples: all.len() as u64, load, query: t1.elapsed(), matches }
}

struct LiveResult {
    shards: usize,
    elapsed: Duration,
    records: usize,
    triples: u64,
    st_subjects: u64,
    matches: Vec<BTreeSet<String>>,
    matches_emitted: u64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    latency_count: u64,
    clean: bool,
}

fn live_result(
    kg: &LiveKg,
    shards: usize,
    elapsed: Duration,
    records: usize,
    matches: Vec<BTreeSet<String>>,
) -> LiveResult {
    let health = kg.health();
    let snap = kg.metrics_snapshot();
    let hist = snap.histogram("kg.ingest_to_match_ns");
    LiveResult {
        shards,
        elapsed,
        records,
        triples: health.ingested_triples,
        st_subjects: health.st_subjects,
        matches,
        matches_emitted: health.matches_emitted,
        latency_p50_ns: hist.map_or(0, |h| h.p50()),
        latency_p99_ns: hist.map_or(0, |h| h.p99()),
        latency_count: hist.map_or(0, |h| h.count),
        clean: health.is_clean(),
    }
}

/// The single-threaded live path: the system drains the KG on every ingest.
fn run_single_live(input: &[PositionReport], queries: &[StarQuery]) -> LiveResult {
    let mut system = DatacronSystem::new(config(), Vec::new(), Vec::new(), StoreConfig::default());
    let kg = system.enable_live_kg(LiveKgConfig::default());
    let mut handles: Vec<_> = queries.iter().map(|q| kg.subscribe(q.clone())).collect();
    let started = Instant::now();
    for r in input {
        system.ingest(*r);
    }
    system.realtime.flush();
    system.sync_batch();
    let elapsed = started.elapsed();
    let matches = drain_matches(&mut handles);
    live_result(&kg, 0, elapsed, input.len(), matches)
}

/// One sharded live run: the KG drains at the barrier points.
fn run_sharded_live(
    input: &[PositionReport],
    queries: &[StarQuery],
    shards: usize,
) -> (LiveResult, Arc<LiveKg>) {
    let (mut layer, kg) = ShardedRealTimeLayer::with_live_kg(
        config(),
        Vec::new(),
        Vec::new(),
        datacron::stream::parallel::ShardedConfig::with_shards(shards),
        LiveKgConfig::default(),
    );
    let mut handles: Vec<_> = queries.iter().map(|q| kg.subscribe(q.clone())).collect();
    let started = Instant::now();
    layer.ingest_batch(input.iter().copied());
    layer.flush();
    let elapsed = started.elapsed();
    let matches = drain_matches(&mut handles);
    let shutdown = layer.finish();
    assert_eq!(shutdown.duplicates, 0);
    (live_result(&kg, shards, elapsed, input.len(), matches), kg)
}

fn records_per_sec(records: usize, elapsed: Duration) -> f64 {
    records as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn json_entry(r: &LiveResult) -> String {
    let mut out = format!(
        "{{\"shards\": {}, \"records_per_sec\": {:.1}, \"elapsed_ms\": {:.3}, \
         \"triples\": {}, \"st_subjects\": {}, \"matches_emitted\": {}, \"matches\": [",
        r.shards,
        records_per_sec(r.records, r.elapsed),
        r.elapsed.as_secs_f64() * 1e3,
        r.triples,
        r.st_subjects,
        r.matches_emitted,
    );
    for (i, m) in r.matches.iter().enumerate() {
        let _ = write!(out, "{}{}", if i > 0 { ", " } else { "" }, m.len());
    }
    let _ = write!(
        out,
        "], \"match_latency_ns\": {{\"p50\": {}, \"p99\": {}, \"count\": {}}}, \"clean\": {}}}",
        r.latency_p50_ns, r.latency_p99_ns, r.latency_count, r.clean,
    );
    out
}

fn main() {
    let args = Args::parse();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let input = fleet(args.entities, args.reports, args.seed);
    let queries = queries(args.reports);
    println!(
        "kg_drill: {} entities x {} reports = {} records, {} queries, seed {}{}",
        args.entities,
        args.reports,
        input.len(),
        queries.len(),
        args.seed,
        if args.quick { " [quick]" } else { "" },
    );

    let batch = run_batch(&input, &queries);
    println!(
        "  batch reference : {} triples loaded in {:.2} ms, queried in {:.3} ms, matches {:?}",
        batch.triples,
        batch.load.as_secs_f64() * 1e3,
        batch.query.as_secs_f64() * 1e3,
        batch.matches.iter().map(BTreeSet::len).collect::<Vec<_>>(),
    );
    assert!(batch.matches[0].len() > 1, "the fixture must produce matches to compare");

    let single = run_single_live(&input, &queries);
    assert_eq!(single.matches, batch.matches, "single-threaded live == batch");
    assert!(single.clean, "no triples lost on the single-threaded path");
    println!(
        "  single live     : {:>8.0} rec/s, {} triples, ingest→match p50 {} ns p99 {} ns",
        records_per_sec(single.records, single.elapsed),
        single.triples,
        single.latency_p50_ns,
        single.latency_p99_ns,
    );

    let mut sharded_results = Vec::new();
    for &shards in &args.shards {
        let (r, _kg) = run_sharded_live(&input, &queries, shards);
        assert_eq!(r.matches, batch.matches, "{shards}-shard live == batch");
        assert_eq!(r.triples, single.triples, "same triple stream on every path");
        assert!(r.clean, "no triples lost at {shards} shards");
        println!(
            "  {:>2} shard(s)    : {:>8.0} rec/s, {} triples, ingest→match p50 {} ns p99 {} ns",
            shards,
            records_per_sec(r.records, r.elapsed),
            r.triples,
            r.latency_p50_ns,
            r.latency_p99_ns,
        );
        sharded_results.push(r);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"kg\",").unwrap();
    writeln!(json, "  \"seed\": {},", args.seed).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"quick\": {},", args.quick).unwrap();
    writeln!(json, "  \"entities\": {},", args.entities).unwrap();
    writeln!(json, "  \"reports_per_entity\": {},", args.reports).unwrap();
    writeln!(json, "  \"records\": {},", input.len()).unwrap();
    writeln!(json, "  \"queries\": {},", queries.len()).unwrap();
    writeln!(
        json,
        "  \"batch\": {{\"triples\": {}, \"load_ms\": {:.3}, \"query_ms\": {:.3}, \"matches\": {:?}}},",
        batch.triples,
        batch.load.as_secs_f64() * 1e3,
        batch.query.as_secs_f64() * 1e3,
        batch.matches.iter().map(BTreeSet::len).collect::<Vec<_>>(),
    )
    .unwrap();
    writeln!(json, "  \"single\": {},", json_entry(&single)).unwrap();
    writeln!(json, "  \"sharded\": [").unwrap();
    for (i, r) in sharded_results.iter().enumerate() {
        let sep = if i + 1 < sharded_results.len() { "," } else { "" };
        writeln!(json, "    {}{}", json_entry(r), sep).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"live_equals_batch\": true").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {} (live match sets equal the batch reference on every path)", args.out);
}

//! Crash-recovery drill: kill a durable run mid-ingest, recover it from the
//! write-ahead log + checkpoints, and prove the recovered run's outputs are
//! bit-identical to an uninterrupted one (EXPERIMENTS.md; CI `recovery-chaos`
//! job).
//!
//! Three modes over the same seeded, chaos-faulted input stream:
//!
//! ```text
//! # full run; prints prefix/suffix/state digests split at K
//! cargo run --release --example recovery_drill -- \
//!     --dir /tmp/drill --mode baseline --crash-after K [--seed 7] [--records 24000]
//!
//! # durable run that ABORTS the process after K records (exit code != 0)
//! cargo run --release --example recovery_drill -- \
//!     --dir /tmp/drill --mode crash --crash-after K
//!
//! # recover from the dir, finish the stream, print suffix/state digests
//! cargo run --release --example recovery_drill -- \
//!     --dir /tmp/drill --mode recover
//! ```
//!
//! Equivalence check: `crash` prints the same `prefix_digest` the baseline
//! does, and `recover` prints the same `suffix_digest` and `state_digest`.
//! Digests are FNV-1a over the Debug rendering of every per-record output
//! (prefix = records before the crash point, suffix = after) and of the
//! final flush + health + situation picture.

use datacron::core::{DatacronConfig, DatacronSystem, DurabilityConfig};
use datacron::data::rng::SeededRng;
use datacron::durability::FsyncPolicy;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, Polygon, PositionReport, Timestamp};
use datacron::stream::faults::{ChaosSource, FaultPlan};
use datacron::store::StoreConfig;
use std::path::PathBuf;

struct Args {
    dir: PathBuf,
    mode: String,
    crash_after: usize,
    seed: u64,
    records: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            dir: PathBuf::from("recovery-drill"),
            mode: String::new(),
            crash_after: 0,
            seed: 7,
            records: 24_000,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--dir" => args.dir = PathBuf::from(value(&mut i)),
                "--mode" => args.mode = value(&mut i),
                "--crash-after" => args.crash_after = value(&mut i).parse().expect("--crash-after"),
                "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
                "--records" => args.records = value(&mut i).parse().expect("--records"),
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        assert!(
            matches!(args.mode.as_str(), "baseline" | "crash" | "recover"),
            "--mode must be baseline | crash | recover"
        );
        args
    }
}

/// FNV-1a 64 over a byte stream; the drill's equivalence fingerprint.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, text: &str) {
        for &b in text.as_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

fn extent() -> BoundingBox {
    BoundingBox::new(-10.0, 30.0, 10.0, 50.0)
}

type Regions = Vec<(u64, Polygon)>;
type Ports = Vec<(u64, GeoPoint)>;

fn context() -> (Regions, Ports) {
    let regions = vec![(1u64, Polygon::rect(BoundingBox::new(-2.0, 36.0, 2.0, 40.0)))];
    let ports = vec![(2u64, GeoPoint::new(0.0, 38.0))];
    (regions, ports)
}

fn build_system() -> DatacronSystem {
    let (regions, ports) = context();
    DatacronSystem::new(DatacronConfig::maritime(extent()), regions, ports, StoreConfig::default())
}

fn durability_config(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        // Every record durable before it is processed: an abort at any
        // instant loses nothing, so recovery resumes at the exact record
        // the crash interrupted.
        fsync: FsyncPolicy::Always,
        segment_max_bytes: 1 << 20,
        checkpoint_interval: 2_000,
        retained_checkpoints: 2,
    }
}

/// The seeded workload: a turning fleet pushed through the chaos fault
/// harness (drops, duplicates, reordering, corruption), materialised so
/// every process sees the identical stream.
fn input(seed: u64, records: usize) -> Vec<PositionReport> {
    let entities = 24u64;
    let reports_each = records.div_ceil(entities as usize) as i64;
    let mut rng = SeededRng::new(seed);
    let mut tracks: Vec<(GeoPoint, f64, f64, i64)> = (0..entities)
        .map(|_| {
            (
                GeoPoint::new(rng.uniform(-4.0, 4.0), rng.uniform(37.0, 43.0)),
                rng.uniform(0.0, 360.0),
                rng.uniform(4.0, 12.0),
                rng.int_range(10, 40),
            )
        })
        .collect();
    let mut fleet = Vec::with_capacity(entities as usize * reports_each as usize);
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.3 -= 1;
            if track.3 <= 0 {
                track.1 = (track.1 + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.2 = (track.2 + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.3 = rng.int_range(10, 40);
            }
            track.0 = track.0.destination(track.1, track.2 * 10.0);
            fleet.push(PositionReport {
                speed_mps: track.2,
                heading_deg: track.1,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64 + 1),
                    Timestamp::from_secs(t * 10),
                    track.0,
                )
            });
        }
    }
    ChaosSource::new(fleet.into_iter(), FaultPlan::chaos(seed)).collect()
}

/// Ingests `records`, folding every output's Debug rendering into `digest`.
fn ingest_digest(system: &mut DatacronSystem, records: &[PositionReport], digest: &mut Digest) {
    for r in records {
        digest.update(&format!("{:?}", system.ingest(*r)));
    }
}

/// Digest over the end-of-run observables: flush + health + situation.
fn state_digest(mut system: DatacronSystem) -> Digest {
    let mut d = Digest::new();
    d.update(&format!("{:?}", system.realtime.flush()));
    d.update(&format!("{:?}", system.health()));
    d.update(&format!("{:?}", system.situation(3, 30.0)));
    d
}

fn main() {
    let args = Args::parse();
    let stream = input(args.seed, args.records);
    let n = stream.len();
    println!(
        "recovery_drill: mode={} dir={} seed={} records={} crash_after={}",
        args.mode,
        args.dir.display(),
        args.seed,
        n,
        args.crash_after
    );

    match args.mode.as_str() {
        "baseline" => {
            let k = args.crash_after.min(n);
            let mut system = build_system();
            system.enable_durability(durability_config(&args.dir)).expect("enable durability");
            let mut prefix = Digest::new();
            ingest_digest(&mut system, &stream[..k], &mut prefix);
            println!("prefix_digest: {}", prefix.hex());
            let mut suffix = Digest::new();
            ingest_digest(&mut system, &stream[k..], &mut suffix);
            println!("suffix_digest: {}", suffix.hex());
            println!("state_digest: {}", state_digest(system).hex());
        }
        "crash" => {
            let k = args.crash_after.min(n);
            assert!(k > 0, "--crash-after must be > 0 in crash mode");
            let mut system = build_system();
            system.enable_durability(durability_config(&args.dir)).expect("enable durability");
            let mut prefix = Digest::new();
            ingest_digest(&mut system, &stream[..k], &mut prefix);
            println!("prefix_digest: {}", prefix.hex());
            println!("aborting after {k} records (simulated crash)");
            // A real crash: no flush, no drop glue, no graceful shutdown.
            std::process::abort();
        }
        "recover" => {
            let (regions, ports) = context();
            let (mut system, report) = DatacronSystem::recover(
                DatacronConfig::maritime(extent()),
                regions,
                ports,
                StoreConfig::default(),
                durability_config(&args.dir),
            )
            .expect("recovery");
            println!(
                "recovered: checkpoint={:?} replayed={} through={} torn_bytes={} corrupt_ckpts={}",
                report.checkpoint_seq,
                report.replayed,
                report.recovered_through,
                report.truncated_tail_bytes,
                report.corrupt_checkpoints
            );
            let start = report.recovered_through as usize;
            assert!(start <= n, "recovered past the input stream");
            let mut suffix = Digest::new();
            ingest_digest(&mut system, &stream[start..], &mut suffix);
            println!("suffix_digest: {}", suffix.hex());
            println!("state_digest: {}", state_digest(system).hex());
        }
        _ => unreachable!(),
    }
}

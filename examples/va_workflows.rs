//! Visual-analytics workflows (§7): data-quality assessment, time-mask
//! exploration, and the offline batch analytics (trajectory clustering and
//! frequent event sequences) over the knowledge store.
//!
//! ```sh
//! cargo run --release --example va_workflows
//! ```

use datacron::core::offline::{cluster_stored_trajectories, frequent_event_sequences, stored_trajectories};
use datacron::core::{BatchLayer, DatacronConfig, RealTimeLayer};
use datacron::data::context::PortGenerator;
use datacron::data::maritime::{VoyageConfig, VoyageGenerator};
use datacron::geo::{BoundingBox, TimeInterval, Timestamp};
use datacron::predict::cluster::OpticsParams;
use datacron::store::StoreConfig;
use datacron::stream::cleaning::CleaningConfig;
use datacron::va::quality::assess_quality;
use datacron::va::render::ascii_histogram;
use datacron::va::timemask::TimeMask;

fn main() {
    let extent = BoundingBox::new(-6.0, 35.0, 10.0, 44.0);
    let ports = PortGenerator::new(extent).generate(20, 3);
    // A noisy fleet: the quality workflow should have something to find.
    let fleet = VoyageGenerator::new(VoyageConfig {
        outlier_probability: 0.005,
        duplicate_probability: 0.01,
        gap_probability: 0.002,
        ..VoyageConfig::default()
    })
    .fleet(10, &ports, Timestamp(0), 77);
    let mut reports: Vec<_> = fleet.iter().flat_map(|v| v.reports.iter().copied()).collect();
    reports.sort_by_key(|r| r.ts);

    // --- 1. Movement-data quality assessment ---
    let q = assess_quality(&reports, CleaningConfig::maritime(), 600.0);
    println!("== data quality ==");
    println!("records {} movers {} problem ratio {:.3} %", q.records, q.movers, q.problem_ratio() * 100.0);
    println!(
        "implausible {}  outliers {}  duplicates {}  out-of-order {}  gaps {}",
        q.implausible, q.outliers, q.duplicates, q.out_of_order, q.gaps
    );
    println!("sampling: mean {:.1} s, max {:.0} s", q.mean_interval_s, q.max_interval_s);

    // --- 2. Time-mask exploration: when is the fleet busiest? ---
    let span = reports.last().map(|r| r.ts.millis()).unwrap_or(0) + 1;
    let bin = 3_600_000i64;
    let bins = (span / bin + 1) as usize;
    let mut counts = vec![0.0f64; bins];
    for r in &reports {
        counts[(r.ts.millis() / bin) as usize] += 1.0;
    }
    let mean = counts.iter().sum::<f64>() / bins as f64;
    let mask = TimeMask::from_binned_query(Timestamp(0), bin, &counts, |v| v > mean);
    println!("\n== time mask: busier-than-average hours ==");
    let rows: Vec<(String, f64)> = counts.iter().enumerate().map(|(h, &c)| (format!("h{h}"), c)).collect();
    print!("{}", ascii_histogram(&rows, 30));
    println!(
        "mask covers {:.1} h of {:.1} h; complement {:.1} h",
        mask.duration_millis() as f64 / 3.6e6,
        span as f64 / 3.6e6,
        mask.complement(TimeInterval::new(Timestamp(0), Timestamp(span))).duration_millis() as f64 / 3.6e6
    );

    // --- 3. Offline analytics over the knowledge store ---
    let config = DatacronConfig::maritime(extent);
    let mut rt = RealTimeLayer::new(config.clone(), Vec::new(), Vec::new());
    let mut batch = BatchLayer::new(&config, StoreConfig::default());
    batch.subscribe(&rt);
    for r in reports {
        rt.ingest(r);
    }
    rt.flush();
    batch.sync();
    let trajectories = stored_trajectories(&batch);
    println!("\n== offline analytics over the store ==");
    println!("stored trajectories: {} ({} triples)", trajectories.len(), batch.triple_count());
    let (clusters, noise) = cluster_stored_trajectories(
        &trajectories,
        16,
        OpticsParams {
            eps: 120_000.0,
            min_pts: 2,
        },
        100_000.0,
    );
    println!("route clusters: {} (sizes {:?}), noise {}", clusters.len(), clusters.iter().map(Vec::len).collect::<Vec<_>>(), noise.len());
    let patterns = frequent_event_sequences(&batch, &trajectories, 2, 3);
    println!("frequent event 2-grams (support ≥ 3):");
    for (pattern, support) in patterns.iter().take(8) {
        println!("  {:?}  x{}", pattern, support);
    }
}

//! Offline throughput benchmark: the real-time layer, single-threaded vs.
//! sharded (T-scale experiment; EXPERIMENTS.md).
//!
//! Replays one seeded synthetic fleet through the full per-record chain —
//! first on a plain [`RealTimeLayer`], then through the
//! [`ShardedRealTimeLayer`] at a sweep of shard counts — and writes a
//! machine-readable `BENCH_throughput.json` with records/second per
//! configuration plus end-to-end (submit → merged output) latency
//! percentiles.
//!
//! No external harness: build with `--release` and run directly.
//!
//! ```text
//! cargo run --release --example bench_throughput -- \
//!     [--entities 64] [--reports 400] [--shards 1,2,4,8] [--seed 42] \
//!     [--out BENCH_throughput.json] [--quick] [--no-metrics] \
//!     [--metrics-out metrics.json] [--overhead-max 5] \
//!     [--open-loop] [--rate 5000] [--stage-profile]
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs (finishes in seconds).
//! The deterministic-merge contract means every configuration produces the
//! same outputs; the benchmark verifies record counts as it goes.
//!
//! Two measurement modes:
//!
//! * **Closed-loop** (default): submit as fast as the pipeline admits —
//!   measures peak throughput. Latency under closed-loop load is
//!   queueing-dominated and reported for completeness, not as an SLO.
//! * **Open-loop** (`--open-loop`, paced at `--rate` records/second):
//!   records arrive on a fixed schedule regardless of pipeline progress —
//!   the honest time-critical measurement. Reports true per-record
//!   submit→merge p50/p99/max and writes `BENCH_latency.json` by default.
//!
//! Observability knobs:
//!
//! * `--no-metrics` disables the layer's instrument registry for every
//!   measured run;
//! * `--metrics-out <path>` writes the single-threaded run's
//!   [`MetricsSnapshot`] as JSON (validate against
//!   `schemas/metrics.schema.json`);
//! * `--overhead-max <pct>` interleaves metrics-on and metrics-off
//!   single-threaded passes (best of 3 each), reports the throughput
//!   overhead of instrumentation, and exits non-zero when it exceeds the
//!   given percentage — the CI smoke gate;
//! * `--stage-profile` runs one extra single-threaded pass with stage
//!   timing on **every** record (`stage_sample_every = 1`) and emits a
//!   `stage_profile` object — per-stage `stage.*_ns` count/p50/p99 — into
//!   the bench JSON, so a throughput regression can be attributed to a
//!   stage without re-running under a profiler.
//!
//! The closed-loop single-threaded run measures the **batched** hot path
//! (`ingest_batch` in 512-record chunks, outputs recycled into the layer's
//! buffer pool) — the configuration the sharded workers also run. Its
//! latency percentiles are chunk-completion latencies: a record is only
//! "done" when its chunk's deferred publishes flush, so every record in a
//! chunk is charged the full chunk duration. A per-record reference run
//! (`single_per_record` in the JSON) keeps the unbatched figure visible.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::obs::MetricsSnapshot;
use datacron::stream::parallel::ShardedConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    entities: u64,
    reports: i64,
    shards: Vec<usize>,
    seed: u64,
    out: String,
    quick: bool,
    no_metrics: bool,
    metrics_out: Option<String>,
    overhead_max: Option<f64>,
    open_loop: bool,
    rate: f64,
    stage_profile: bool,
    out_is_default: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            entities: 64,
            reports: 400,
            shards: vec![1, 2, 4, 8],
            seed: 42,
            out: "BENCH_throughput.json".to_string(),
            quick: false,
            no_metrics: false,
            metrics_out: None,
            overhead_max: None,
            open_loop: false,
            rate: 5000.0,
            stage_profile: false,
            out_is_default: true,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--entities" => args.entities = value(&mut i).parse().expect("--entities"),
                "--reports" => args.reports = value(&mut i).parse().expect("--reports"),
                "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
                "--out" => {
                    args.out = value(&mut i);
                    args.out_is_default = false;
                }
                "--shards" => {
                    args.shards = value(&mut i)
                        .split(',')
                        .map(|s| s.trim().parse().expect("--shards"))
                        .collect();
                }
                "--quick" => args.quick = true,
                "--open-loop" => args.open_loop = true,
                "--stage-profile" => args.stage_profile = true,
                "--rate" => args.rate = value(&mut i).parse().expect("--rate"),
                "--no-metrics" => args.no_metrics = true,
                "--metrics-out" => args.metrics_out = Some(value(&mut i)),
                "--overhead-max" => {
                    args.overhead_max = Some(value(&mut i).parse().expect("--overhead-max"))
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if args.quick {
            args.entities = args.entities.min(24);
            args.reports = args.reports.min(120);
        }
        if args.open_loop && args.out_is_default {
            args.out = "BENCH_latency.json".to_string();
        }
        assert!(args.rate > 0.0, "--rate must be positive");
        args
    }
}

/// A seeded synthetic fleet with per-entity speed/heading dynamics: legs of
/// steady cruising punctuated by turns, so the synopses stage emits a
/// realistic mix of critical points (and the chain's downstream stages all
/// do real work).
fn fleet(entities: u64, reports_each: i64, seed: u64) -> Vec<PositionReport> {
    let mut rng = SeededRng::new(seed);
    struct Track {
        pos: GeoPoint,
        heading: f64,
        speed: f64,
        turn_in: i64,
    }
    let mut tracks: Vec<Track> = (0..entities)
        .map(|_| Track {
            pos: GeoPoint::new(rng.uniform(-4.0, 4.0), rng.uniform(37.0, 43.0)),
            heading: rng.uniform(0.0, 360.0),
            speed: rng.uniform(4.0, 12.0),
            turn_in: rng.int_range(10, 40),
        })
        .collect();
    let mut out = Vec::with_capacity((entities as usize) * (reports_each as usize));
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.turn_in -= 1;
            if track.turn_in <= 0 {
                track.heading = (track.heading + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.speed = (track.speed + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.turn_in = rng.int_range(10, 40);
            }
            track.pos = track.pos.destination(track.heading, track.speed * 10.0);
            out.push(PositionReport {
                speed_mps: track.speed,
                heading_deg: track.heading,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64 + 1),
                    Timestamp::from_secs(t * 10),
                    track.pos,
                )
            });
        }
    }
    out
}

fn config(metrics: bool) -> DatacronConfig {
    let mut cfg = DatacronConfig::maritime(BoundingBox::new(-10.0, 30.0, 10.0, 50.0));
    cfg.metrics = metrics;
    cfg
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunResult {
    shards: usize,
    elapsed: Duration,
    records: usize,
    accepted: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    max_reorder: usize,
}

fn records_per_sec(records: usize, elapsed: Duration) -> f64 {
    records as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// One sharded run: batched submission, latencies measured from submit to
/// merged (globally ordered) output.
fn run_sharded(input: &[PositionReport], shards: usize, metrics: bool) -> RunResult {
    let mut layer = ShardedRealTimeLayer::new(
        config(metrics),
        Vec::new(),
        Vec::new(),
        ShardedConfig::with_shards(shards),
    );
    let mut submit_times: Vec<Instant> = Vec::with_capacity(input.len());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut merged_so_far = 0usize;
    let mut accepted = 0u64;
    let started = Instant::now();
    for chunk in input.chunks(512) {
        let now = Instant::now();
        submit_times.extend(std::iter::repeat_n(now, chunk.len()));
        layer.ingest_batch(chunk.iter().copied());
        for out in layer.poll_outputs() {
            let done = Instant::now();
            latencies_us.push(done.duration_since(submit_times[merged_so_far]).as_micros() as u64);
            merged_so_far += 1;
            accepted += out.output.accepted as u64;
        }
    }
    let done = layer.finish();
    let end = Instant::now();
    for out in &done.outputs {
        latencies_us.push(end.duration_since(submit_times[merged_so_far]).as_micros() as u64);
        merged_so_far += 1;
        accepted += out.output.accepted as u64;
    }
    let elapsed = started.elapsed();
    assert_eq!(merged_so_far, input.len(), "lossless run");
    assert_eq!(done.duplicates, 0);
    latencies_us.sort_unstable();
    RunResult {
        shards,
        elapsed,
        records: input.len(),
        accepted,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        max_reorder: done.max_reorder,
    }
}

/// Spin-assisted pacing: sleep the bulk of the wait, spin the final stretch
/// so arrival jitter stays well under the latencies being measured.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One open-loop sharded run: records arrive on a fixed schedule
/// (`rate` records/second) regardless of pipeline progress, each stamped
/// with its own submit instant and paired with its merged output — the
/// honest time-critical latency measurement.
fn run_sharded_open_loop(
    input: &[PositionReport],
    shards: usize,
    metrics: bool,
    rate: f64,
) -> RunResult {
    let mut layer = ShardedRealTimeLayer::new(
        config(metrics),
        Vec::new(),
        Vec::new(),
        ShardedConfig::with_shards(shards),
    );
    let mut submit_times: Vec<Instant> = Vec::with_capacity(input.len());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut merged_so_far = 0usize;
    let mut accepted = 0u64;
    let started = Instant::now();
    for (i, r) in input.iter().enumerate() {
        // Pace to the arrival schedule while observing merges event-driven:
        // park on the output topic (woken the instant a worker publishes)
        // instead of sleeping blind until the next arrival, so each
        // record's latency is measured when it merges, not when the bench
        // happens to look.
        let deadline = started + Duration::from_secs_f64(i as f64 / rate);
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let remaining = deadline - now;
            if remaining <= Duration::from_micros(300) {
                pace_until(deadline);
                break;
            }
            let outs = layer.poll_outputs_timeout(remaining - Duration::from_micros(200));
            if outs.is_empty() {
                continue;
            }
            let done = Instant::now();
            for out in outs {
                latencies_us
                    .push(done.duration_since(submit_times[merged_so_far]).as_micros() as u64);
                merged_so_far += 1;
                accepted += out.output.accepted as u64;
            }
        }
        submit_times.push(Instant::now());
        layer.ingest(*r);
        for out in layer.poll_outputs() {
            let done = Instant::now();
            latencies_us.push(done.duration_since(submit_times[merged_so_far]).as_micros() as u64);
            merged_so_far += 1;
            accepted += out.output.accepted as u64;
        }
    }
    let done = layer.finish();
    let end = Instant::now();
    for out in &done.outputs {
        latencies_us.push(end.duration_since(submit_times[merged_so_far]).as_micros() as u64);
        merged_so_far += 1;
        accepted += out.output.accepted as u64;
    }
    let elapsed = started.elapsed();
    assert_eq!(merged_so_far, input.len(), "lossless run");
    assert_eq!(done.duplicates, 0);
    latencies_us.sort_unstable();
    RunResult {
        shards,
        elapsed,
        records: input.len(),
        accepted,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        max_reorder: done.max_reorder,
    }
}

/// Open-loop single-threaded reference: ingest is synchronous, so the
/// per-record latency is simply the paced call's duration.
fn run_single_open_loop(input: &[PositionReport], metrics: bool, rate: f64) -> RunResult {
    let mut layer = RealTimeLayer::new(config(metrics), Vec::new(), Vec::new());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut accepted = 0u64;
    let started = Instant::now();
    for (i, r) in input.iter().enumerate() {
        pace_until(started + Duration::from_secs_f64(i as f64 / rate));
        let t0 = Instant::now();
        let out = layer.ingest(*r);
        latencies_us.push(t0.elapsed().as_micros() as u64);
        accepted += out.accepted as u64;
    }
    let elapsed = started.elapsed();
    latencies_us.sort_unstable();
    RunResult {
        shards: 0,
        elapsed,
        records: input.len(),
        accepted,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        max_reorder: 0,
    }
}

/// Chunk size of the batched single-threaded measurement — matches the
/// sharded submission chunk, so `single` and `sharded` exercise the same
/// hot path with the same batch geometry.
const SINGLE_BATCH: usize = 512;

/// Closed-loop single-threaded measurement on the batched hot path:
/// `ingest_batch` in [`SINGLE_BATCH`]-record chunks, every output recycled
/// into the layer's buffer pool. Latencies are chunk-completion latencies
/// (each record is charged its whole chunk's duration, since its deferred
/// topic publishes land only at the chunk flush).
fn run_single_with(input: &[PositionReport], cfg: DatacronConfig) -> (RunResult, MetricsSnapshot) {
    let mut layer = RealTimeLayer::new(cfg, Vec::new(), Vec::new());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut accepted = 0u64;
    let started = Instant::now();
    for chunk in input.chunks(SINGLE_BATCH) {
        let t0 = Instant::now();
        for out in layer.ingest_batch(chunk.iter().copied()) {
            accepted += out.accepted as u64;
            layer.recycle(out);
        }
        latencies_us.extend(std::iter::repeat_n(t0.elapsed().as_micros() as u64, chunk.len()));
    }
    let elapsed = started.elapsed();
    latencies_us.sort_unstable();
    let result = RunResult {
        shards: 0,
        elapsed,
        records: input.len(),
        accepted,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        max_reorder: 0,
    };
    (result, layer.metrics_snapshot())
}

fn run_single(input: &[PositionReport], metrics: bool) -> (RunResult, MetricsSnapshot) {
    run_single_with(input, config(metrics))
}

/// Per-record reference: one `ingest` call per record, no batching — the
/// pre-batch measurement, kept in the JSON so the batching gain stays
/// visible (and honest: its latencies really are per-record).
fn run_single_per_record(input: &[PositionReport], metrics: bool) -> RunResult {
    let mut layer = RealTimeLayer::new(config(metrics), Vec::new(), Vec::new());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut accepted = 0u64;
    let started = Instant::now();
    for r in input {
        let t0 = Instant::now();
        let out = layer.ingest(*r);
        latencies_us.push(t0.elapsed().as_micros() as u64);
        accepted += out.accepted as u64;
    }
    let elapsed = started.elapsed();
    latencies_us.sort_unstable();
    RunResult {
        shards: 0,
        elapsed,
        records: input.len(),
        accepted,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        max_reorder: 0,
    }
}

/// The `--stage-profile` pass: one batched single-threaded run with stage
/// timing on every record, rendered as a JSON object of per-stage
/// `stage.*_ns` histograms (count, p50, p99 in nanoseconds). Always runs
/// with metrics on — profiling an uninstrumented layer measures nothing.
fn stage_profile_json(input: &[PositionReport]) -> String {
    let mut cfg = config(true);
    cfg.stage_sample_every = 1;
    let (_, snapshot) = run_single_with(input, cfg);
    let mut out = String::from("{\n    \"sample_every\": 1");
    for (name, h) in snapshot.histograms() {
        if !name.starts_with("stage.") {
            continue;
        }
        let _ = write!(
            out,
            ",\n    \"{name}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}",
            h.count,
            h.p50(),
            h.p99()
        );
        println!("  {name:<20}: p50 {} ns, p99 {} ns ({} samples)", h.p50(), h.p99(), h.count);
    }
    out.push_str("\n  }");
    out
}

/// Instrumentation overhead: interleaved metrics-on / metrics-off
/// single-threaded passes, best-of-`rounds` each (best-of damps scheduler
/// noise far better than means on short CI runs). Returns
/// `(best_on_rps, best_off_rps, overhead_pct)` where the overhead is how
/// much throughput instrumentation costs relative to the uninstrumented
/// run, clamped at 0 for measurement noise.
fn measure_overhead(input: &[PositionReport], rounds: usize) -> (f64, f64, f64) {
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..rounds {
        let (on, _) = run_single(input, true);
        best_on = best_on.max(records_per_sec(on.records, on.elapsed));
        let (off, _) = run_single(input, false);
        best_off = best_off.max(records_per_sec(off.records, off.elapsed));
    }
    let pct = ((best_off - best_on) / best_off * 100.0).max(0.0);
    (best_on, best_off, pct)
}

/// One result entry. Sharded entries report `per_shard_records_per_sec`
/// (throughput divided by shard count — the honest per-worker figure) and
/// `speedup_vs_single_at_cores` only while the run fits the machine
/// (`shards <= cores`); an oversubscribed sweep point time-slices cores,
/// so a "speedup" there would compare unlike things. The batched single
/// entry carries its `batch` size instead.
fn json_entry(r: &RunResult, baseline: f64, cores: usize, batch: Option<usize>) -> String {
    let rps = records_per_sec(r.records, r.elapsed);
    let mut out = format!(
        "{{\"shards\": {}, \"records_per_sec\": {:.1}, \"elapsed_ms\": {:.3}",
        r.shards,
        rps,
        r.elapsed.as_secs_f64() * 1e3,
    );
    if let Some(b) = batch {
        let _ = write!(out, ", \"batch\": {b}");
    }
    if r.shards > 0 {
        let _ = write!(out, ", \"per_shard_records_per_sec\": {:.1}", rps / r.shards as f64);
        if r.shards <= cores {
            let _ = write!(out, ", \"speedup_vs_single_at_cores\": {:.3}", rps / baseline);
        }
    }
    let _ = write!(
        out,
        ", \"accepted\": {}, \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}}, \
         \"max_reorder\": {}}}",
        r.accepted, r.p50_us, r.p99_us, r.max_us, r.max_reorder,
    );
    out
}

/// The open-loop latency experiment: paced arrivals at `--rate`, true
/// per-record submit→merge percentiles, one JSON result file
/// (`BENCH_latency.json` unless `--out` overrides).
fn run_open_loop(args: &Args, input: &[PositionReport], metrics_enabled: bool, cores: usize) {
    let stage_profile = args.stage_profile.then(|| {
        println!("  stage profile (every record timed):");
        stage_profile_json(input)
    });
    let rate = args.rate;
    println!("  open-loop mode: paced at {rate:.0} records/s");
    // Warm-up (page in code and allocator arenas) before any measured pass.
    let _ = run_single(&input[..input.len().min(2048)], metrics_enabled);
    let single = run_single_open_loop(input, metrics_enabled, rate);
    println!(
        "  single-threaded : p50 {} us, p99 {} us, max {} us (attained {:.0} rec/s)",
        single.p50_us,
        single.p99_us,
        single.max_us,
        records_per_sec(single.records, single.elapsed),
    );
    let mut sharded_results = Vec::new();
    for &shards in &args.shards {
        let r = run_sharded_open_loop(input, shards, metrics_enabled, rate);
        assert_eq!(
            r.accepted, single.accepted,
            "sharded run must accept exactly the single-threaded records"
        );
        println!(
            "  {:>2} shard(s)     : p50 {} us, p99 {} us, max {} us (attained {:.0} rec/s, reorder {})",
            shards,
            r.p50_us,
            r.p99_us,
            r.max_us,
            records_per_sec(r.records, r.elapsed),
            r.max_reorder,
        );
        sharded_results.push(r);
    }

    let baseline = records_per_sec(single.records, single.elapsed);
    let window = ShardedConfig::default().max_in_flight;
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"latency\",").unwrap();
    writeln!(json, "  \"open_loop\": true,").unwrap();
    writeln!(json, "  \"rate_per_sec\": {rate:.1},").unwrap();
    writeln!(json, "  \"seed\": {},", args.seed).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"quick\": {},", args.quick).unwrap();
    writeln!(json, "  \"entities\": {},", args.entities).unwrap();
    writeln!(json, "  \"reports_per_entity\": {},", args.reports).unwrap();
    writeln!(json, "  \"records\": {},", input.len()).unwrap();
    writeln!(json, "  \"metrics\": {metrics_enabled},").unwrap();
    match window {
        Some(w) => writeln!(json, "  \"max_in_flight\": {w},").unwrap(),
        None => writeln!(json, "  \"max_in_flight\": null,").unwrap(),
    }
    if let Some(profile) = &stage_profile {
        writeln!(json, "  \"stage_profile\": {profile},").unwrap();
    }
    writeln!(json, "  \"single\": {},", json_entry(&single, baseline, cores, None)).unwrap();
    writeln!(json, "  \"sharded\": [").unwrap();
    for (i, r) in sharded_results.iter().enumerate() {
        let sep = if i + 1 < sharded_results.len() { "," } else { "" };
        writeln!(json, "    {}{}", json_entry(r, baseline, cores, None), sep).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {}", args.out);
}

fn main() {
    let args = Args::parse();
    let metrics_enabled = !args.no_metrics;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let input = fleet(args.entities, args.reports, args.seed);
    println!(
        "bench_throughput: {} entities x {} reports = {} records, seed {}, {} core(s){}{}",
        args.entities,
        args.reports,
        input.len(),
        args.seed,
        cores,
        if args.quick { " [quick]" } else { "" },
        if metrics_enabled { "" } else { " [metrics off]" },
    );

    if args.open_loop {
        run_open_loop(&args, &input, metrics_enabled, cores);
        return;
    }

    // Warm-up pass (page in code and allocator arenas), then the measured
    // single-threaded baseline on the batched hot path.
    let _ = run_single(&input[..input.len().min(2048)], metrics_enabled);
    let (single, snapshot) = run_single(&input, metrics_enabled);
    let baseline = records_per_sec(single.records, single.elapsed);
    println!(
        "  single (batched): {:>9.0} rec/s  (chunk-completion p50 {} us, p99 {} us)",
        baseline, single.p50_us, single.p99_us
    );
    let per_record = run_single_per_record(&input, metrics_enabled);
    assert_eq!(
        per_record.accepted, single.accepted,
        "batched and per-record single-threaded runs must accept identically"
    );
    println!(
        "  single (record) : {:>9.0} rec/s  (p50 {} us, p99 {} us)",
        records_per_sec(per_record.records, per_record.elapsed),
        per_record.p50_us,
        per_record.p99_us
    );

    if let Some(path) = &args.metrics_out {
        std::fs::write(path, snapshot.to_json()).expect("write metrics snapshot");
        println!("wrote {path}");
    }

    let stage_profile = args.stage_profile.then(|| {
        println!("  stage profile (every record timed):");
        stage_profile_json(&input)
    });

    let mut sharded_results = Vec::new();
    for &shards in &args.shards {
        let r = run_sharded(&input, shards, metrics_enabled);
        assert_eq!(
            r.accepted, single.accepted,
            "sharded run must accept exactly the single-threaded records"
        );
        println!(
            "  {:>2} shard(s)     : {:>9.0} rec/s  ({:>8.0}/shard, p50 {} us, p99 {} us, reorder {})",
            shards,
            records_per_sec(r.records, r.elapsed),
            records_per_sec(r.records, r.elapsed) / shards as f64,
            r.p50_us,
            r.p99_us,
            r.max_reorder
        );
        sharded_results.push(r);
    }

    // The instrumentation-overhead gate (CI metrics smoke): interleaved
    // on/off passes so thermal drift hits both arms equally.
    let overhead = args.overhead_max.map(|max_pct| {
        let (on, off, pct) = measure_overhead(&input, 3);
        println!(
            "  metrics overhead: {pct:.2}% (on {on:.0} rec/s, off {off:.0} rec/s, gate {max_pct}%)"
        );
        (max_pct, pct)
    });

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"throughput\",").unwrap();
    writeln!(json, "  \"seed\": {},", args.seed).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"quick\": {},", args.quick).unwrap();
    writeln!(json, "  \"entities\": {},", args.entities).unwrap();
    writeln!(json, "  \"reports_per_entity\": {},", args.reports).unwrap();
    writeln!(json, "  \"records\": {},", input.len()).unwrap();
    writeln!(json, "  \"metrics\": {metrics_enabled},").unwrap();
    if let Some((_, pct)) = overhead {
        writeln!(json, "  \"metrics_overhead_pct\": {pct:.3},").unwrap();
    }
    if let Some(profile) = &stage_profile {
        writeln!(json, "  \"stage_profile\": {profile},").unwrap();
    }
    writeln!(json, "  \"single\": {},", json_entry(&single, baseline, cores, Some(SINGLE_BATCH)))
        .unwrap();
    writeln!(json, "  \"single_per_record\": {},", json_entry(&per_record, baseline, cores, None))
        .unwrap();
    writeln!(json, "  \"sharded\": [").unwrap();
    for (i, r) in sharded_results.iter().enumerate() {
        let sep = if i + 1 < sharded_results.len() { "," } else { "" };
        writeln!(json, "    {}{}", json_entry(r, baseline, cores, None), sep).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {}", args.out);

    if let Some((max_pct, pct)) = overhead {
        if pct > max_pct {
            eprintln!("FAIL: metrics overhead {pct:.2}% exceeds the {max_pct}% gate");
            std::process::exit(1);
        }
    }
}

//! Networked-ingestion drill: stream a seeded fleet from a client process
//! to a server process over TCP, through the wire-level fault proxy
//! (resets, truncation, bit-flips, duplicates, stalls, forced kills), and
//! prove the server-side result is bit-identical to in-process ingestion
//! (CI `net-chaos` job).
//!
//! ```text
//! # terminal 1: bind the ingest server, drain the topic, print digests
//! cargo run --release --example net_drill -- \
//!     --mode serve --addr 127.0.0.1:47171 [--seed 7] [--records 12000]
//!
//! # terminal 2: stream the same seeded fleet through a chaotic proxy
//! cargo run --release --example net_drill -- \
//!     --mode send --addr 127.0.0.1:47171 [--seed 7] [--records 12000] \
//!     [--kill-every 997]
//!
//! # loopback throughput smoke; writes bench JSON
//! cargo run --release --example net_drill -- \
//!     --mode bench [--records 50000] [--out BENCH_net.json]
//! ```
//!
//! Equivalence check: `send` prints `sent_digest` (over the records it
//! streamed) and `pipeline_digest` (over in-process ingestion of those
//! records); `serve` prints `received_digest` and `pipeline_digest` over
//! what actually crossed the wire. All four must match pairwise — exactly
//! once, in order, despite every injected wire fault.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::data::rng::SeededRng;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::net::{ClientConfig, FaultProxy, NetClient, NetServer, ServerConfig};
use datacron::obs::ObsRegistry;
use datacron::stream::faults::{ChaosSource, FaultPlan, NetFaultPlan};
use datacron::stream::Topic;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    mode: String,
    addr: String,
    seed: u64,
    records: usize,
    kill_every: u64,
    out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            mode: String::new(),
            addr: "127.0.0.1:47171".to_string(),
            seed: 7,
            records: 12_000,
            kill_every: 997,
            out: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--mode" => args.mode = value(&mut i),
                "--addr" => args.addr = value(&mut i),
                "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
                "--records" => args.records = value(&mut i).parse().expect("--records"),
                "--kill-every" => args.kill_every = value(&mut i).parse().expect("--kill-every"),
                "--out" => args.out = Some(value(&mut i)),
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        assert!(
            matches!(args.mode.as_str(), "serve" | "send" | "bench"),
            "--mode must be serve | send | bench"
        );
        args
    }
}

/// FNV-1a 64 over a byte stream; the drill's equivalence fingerprint.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, text: &str) {
        for &b in text.as_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

fn extent() -> BoundingBox {
    BoundingBox::new(-10.0, 30.0, 10.0, 50.0)
}

/// The seeded workload: a turning fleet pushed through the data-level
/// chaos harness (drops, duplicates, reordering, corruption), so the
/// stream the wire carries already contains records the cleaner will
/// dead-letter. Both processes regenerate it identically from the seed.
fn input(seed: u64, records: usize) -> Vec<PositionReport> {
    let entities = 24u64;
    let reports_each = records.div_ceil(entities as usize) as i64;
    let mut rng = SeededRng::new(seed);
    let mut tracks: Vec<(GeoPoint, f64, f64, i64)> = (0..entities)
        .map(|_| {
            (
                GeoPoint::new(rng.uniform(-4.0, 4.0), rng.uniform(37.0, 43.0)),
                rng.uniform(0.0, 360.0),
                rng.uniform(4.0, 12.0),
                rng.int_range(10, 40),
            )
        })
        .collect();
    let mut fleet = Vec::with_capacity(entities as usize * reports_each as usize);
    for t in 0..reports_each {
        for (e, track) in tracks.iter_mut().enumerate() {
            track.3 -= 1;
            if track.3 <= 0 {
                track.1 = (track.1 + rng.uniform(-120.0, 120.0)).rem_euclid(360.0);
                track.2 = (track.2 + rng.uniform(-3.0, 3.0)).clamp(1.0, 15.0);
                track.3 = rng.int_range(10, 40);
            }
            track.0 = track.0.destination(track.1, track.2 * 10.0);
            fleet.push(PositionReport {
                speed_mps: track.2,
                heading_deg: track.1,
                ..PositionReport::basic(
                    EntityId::vessel(e as u64 + 1),
                    Timestamp::from_secs(t * 10),
                    track.0,
                )
            });
        }
    }
    ChaosSource::new(fleet.into_iter(), FaultPlan::chaos(seed)).collect()
}

/// Digest over a record stream plus its full in-process pipeline run:
/// every per-record output, then the final health report.
fn stream_and_pipeline_digests(records: &[PositionReport]) -> (Digest, Digest) {
    let mut stream = Digest::new();
    let mut pipeline = Digest::new();
    let mut layer = RealTimeLayer::new(DatacronConfig::maritime(extent()), Vec::new(), Vec::new());
    for r in records {
        stream.update(&format!("{r:?}"));
        pipeline.update(&format!("{:?}", layer.ingest(*r)));
    }
    pipeline.update(&format!("{:?}", layer.health()));
    (stream, pipeline)
}

fn serve(args: &Args) {
    let expected = input(args.seed, args.records).len();
    let obs = ObsRegistry::new();
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.drill");
    let mut consumer = topic.consumer();
    let server = NetServer::bind(args.addr.as_str(), ServerConfig::default(), topic, &obs)
        .expect("server binds");
    println!("serving on {} (expecting {expected} records)", server.local_addr());

    let deadline = Instant::now() + Duration::from_secs(300);
    let mut received = Vec::with_capacity(expected);
    while received.len() < expected {
        assert!(Instant::now() < deadline, "drill timed out waiting for the stream");
        match consumer.poll_wait(1024, Duration::from_millis(200)) {
            Ok(batch) => received.extend(batch),
            Err(_) => unreachable!("unbounded topic never lags"),
        }
    }
    // Every record is here, but the client still needs its Finish frame
    // acknowledged (and may be mid-reconnect if the proxy killed it); stay
    // up until the session is marked finished.
    loop {
        let s = server.session(args.seed).expect("client session exists");
        if s.finished == Some(expected as u64) {
            break;
        }
        assert!(Instant::now() < deadline, "drill timed out waiting for Finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    let session = server.session(args.seed).expect("client session exists");
    let health = server.health();
    println!(
        "session: next_expected={} duplicates_dropped={} finished={:?}",
        session.next_expected, session.duplicates, session.finished
    );
    println!(
        "health: ingested={} duplicates={} nacks={} crc_errors={}",
        health.records_ingested, health.duplicates_dropped, health.nacks_sent, health.crc_errors
    );
    let (stream, pipeline) = stream_and_pipeline_digests(&received);
    println!("received_digest: {}", stream.hex());
    println!("pipeline_digest: {}", pipeline.hex());
    server.shutdown();
}

fn send(args: &Args) {
    let records = input(args.seed, args.records);
    let upstream = args.addr.parse().expect("--addr must be host:port");
    let mut plan = NetFaultPlan::chaos(args.seed);
    if args.kill_every > 0 {
        plan = plan.with_kill_every(args.kill_every);
    }
    let proxy = FaultProxy::start(upstream, plan).expect("fault proxy starts");
    println!("proxying {} -> {} under wire chaos (seed {})", proxy.local_addr(), upstream, args.seed);

    let obs = ObsRegistry::new();
    let mut cfg = ClientConfig::new(proxy.local_addr().to_string(), args.seed);
    cfg.backoff.seed = args.seed;
    let mut client = NetClient::connect(cfg, &obs).expect("client connects");
    for r in &records {
        client.send(*r).expect("send survives wire chaos");
    }
    let stats = client.finish().expect("finish survives wire chaos");
    let faults = proxy.stats();
    println!(
        "client: sent={} replayed={} acked={} reconnects={} nacks_seen={} crc_errors={}",
        stats.sent, stats.replayed, stats.acked, stats.reconnects, stats.nacks_seen,
        stats.crc_errors
    );
    println!(
        "proxy: frames={} passed={} duplicated={} bit_flips={} truncated={} resets={} stalls={}",
        faults.frames, faults.passed, faults.duplicated, faults.bit_flips, faults.truncated,
        faults.resets, faults.stalls
    );
    proxy.shutdown();
    let (stream, pipeline) = stream_and_pipeline_digests(&records);
    println!("sent_digest: {}", stream.hex());
    println!("pipeline_digest: {}", pipeline.hex());
}

/// Loopback throughput smoke: client and server in one process over a real
/// socket, no fault proxy. Latency is per-record `send` time (serialise +
/// write + any backpressure), which is the cost ingestion actually pays.
fn bench(args: &Args) {
    let records = input(args.seed, args.records);
    let obs = ObsRegistry::new();
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.bench");
    let mut consumer = topic.consumer();
    let server =
        NetServer::bind("127.0.0.1:0", ServerConfig::default(), Arc::clone(&topic), &obs)
            .expect("server binds");
    let mut client = NetClient::connect(
        ClientConfig::new(server.local_addr().to_string(), args.seed),
        &obs,
    )
    .expect("client connects");

    let started = Instant::now();
    let mut send_us: Vec<u64> = Vec::with_capacity(records.len());
    for r in &records {
        let t = Instant::now();
        client.send(*r).expect("loopback send");
        send_us.push(t.elapsed().as_micros() as u64);
    }
    let stats = client.finish().expect("loopback finish");
    let elapsed = started.elapsed();

    let received = consumer.drain().expect("unbounded topic never lags");
    assert_eq!(received.len(), records.len(), "loopback must deliver exactly once");
    server.shutdown();

    send_us.sort_unstable();
    let pct = |p: f64| send_us[((send_us.len() - 1) as f64 * p) as usize];
    let n = records.len();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net_loopback\",\n",
            "  \"seed\": {},\n",
            "  \"records\": {},\n",
            "  \"records_per_sec\": {:.1},\n",
            "  \"elapsed_ms\": {:.3},\n",
            "  \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
            "  \"acked\": {},\n",
            "  \"reconnects\": {}\n",
            "}}"
        ),
        args.seed,
        n,
        n as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3,
        pct(0.50),
        pct(0.99),
        send_us[send_us.len() - 1],
        stats.acked,
        stats.reconnects,
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).expect("write bench JSON");
        println!("wrote {path}");
    }
}

fn main() {
    let args = Args::parse();
    match args.mode.as_str() {
        "serve" => serve(&args),
        "send" => send(&args),
        "bench" => bench(&args),
        _ => unreachable!(),
    }
}

//! ATM trajectory prediction: the §5 pipeline end to end — generate a
//! flight corpus, evaluate RMF\* for short-term future-location prediction,
//! and train the Hybrid Clustering/HMM model to predict per-waypoint
//! deviations from the flight plan.
//!
//! ```sh
//! cargo run --release --example atm_prediction
//! ```

use datacron::data::aviation::{FlightGenerator, FlightPlan, FlightProfile};
use datacron::data::weather::WeatherField;
use datacron::geo::{BoundingBox, GeoPoint, Timestamp, Trajectory};
use datacron::predict::flp::evaluate_flp_corpus;
use datacron::predict::hybrid::{measure_waypoint_deviations, HybridParams, HybridTp, TrainingFlight};
use datacron::predict::RmfStarPredictor;

fn main() {
    let extent = BoundingBox::new(-10.0, 35.0, 5.0, 45.0);
    let weather = WeatherField::new(extent, 7, 4, 10.0);
    let generator = FlightGenerator::new(FlightProfile::default(), weather);
    let plan = FlightPlan::between(
        1,
        GeoPoint::new(2.08, 41.30),  // Barcelona
        GeoPoint::new(-3.56, 40.47), // Madrid
        5,
        10_500.0,
        220.0,
        3,
    );

    // A day's rotations on the route.
    let flights = generator.fleet_on_route(24, &plan, Timestamp(0), 3_600.0, 11);

    // --- Short-term FLP with RMF* (8 s sampling, 8 steps ≈ 1 minute) ---
    let trajectories: Vec<Trajectory> = flights
        .iter()
        .map(|f| Trajectory::from_reports(f.reports.clone()))
        .collect();
    let report = evaluate_flp_corpus(&trajectories, &RmfStarPredictor::default(), 12, 8)
        .expect("corpus long enough");
    println!("== RMF* future-location prediction ==");
    for (k, (mean, std)) in report.mean_error_m.iter().zip(&report.std_error_m).enumerate() {
        println!("  +{:>2}s: mean {:>6.0} m  stdev {:>6.0} m", (k + 1) * 8, mean, std);
    }

    // --- Long-term TP with the hybrid clustering/HMM model ---
    let to_training = |f: &datacron::data::aviation::GeneratedFlight| {
        let plan_points: Vec<GeoPoint> = f.plan.waypoints.iter().map(|w| w.point).collect();
        TrainingFlight {
            id: f.aircraft.id,
            deviations: measure_waypoint_deviations(&plan_points, &f.clean),
            plan: plan_points,
            wp_features: f.features.wp_severity.clone(),
            global_features: vec![f.features.size_class as f64],
        }
    };
    let training: Vec<TrainingFlight> = flights.iter().map(to_training).collect();
    let model = HybridTp::train(&training, HybridParams::default());
    println!("\n== hybrid clustering/HMM trajectory prediction ==");
    println!("clusters: {} (sizes {:?})", model.cluster_count(), model.cluster_sizes());

    // Predict the deviations of tomorrow's first rotation.
    let tomorrow = generator.flight(99, &plan, 1, 3, Timestamp::from_secs(86_400), 1234);
    let tf = to_training(&tomorrow);
    let predicted = model.predict(&tf.plan, &tf.wp_features, &tf.global_features);
    println!("per-waypoint deviation, predicted vs actual (m):");
    for (w, (p, a)) in predicted.iter().zip(&tf.deviations).enumerate() {
        println!(
            "  {:>4}: {:>7.0} vs {:>7.0}",
            tomorrow.plan.waypoints[w].name, p, a
        );
    }
}

//! Chaos quickstart: the real-time layer under seed-driven fault injection.
//!
//! Demonstrates the failure model end to end (DESIGN.md §7):
//! a clean fleet is pushed through `ChaosSource` (drops, duplicates,
//! reordering, corruption, gaps, bursts — all reproducible from one seed),
//! one entity carries a poisoned processing stage, and the layer's health
//! report plus dead-letter topic account for everything that happened.
//! A bounded `DropOldest` topic shows observable — never silent — loss.

use datacron::core::realtime::RealTimeLayer;
use datacron::core::{DatacronConfig, RejectReason};
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::stream::bus::{OverflowPolicy, Topic};
use datacron::stream::faults::{ChaosSource, FaultPlan};

fn fleet(entities: u64, reports_each: i64) -> Vec<PositionReport> {
    let mut out = Vec::new();
    for t in 0..reports_each {
        for e in 1..=entities {
            out.push(PositionReport {
                speed_mps: 8.0,
                heading_deg: 90.0,
                ..PositionReport::basic(
                    EntityId::vessel(e),
                    Timestamp::from_secs(t * 10),
                    GeoPoint::new(0.5 + e as f64 * 0.2 + t as f64 * 0.001, 40.0),
                )
            });
        }
    }
    out
}

fn run(seed: u64) -> (usize, usize, u64) {
    let config = DatacronConfig::maritime(BoundingBox::new(0.0, 38.0, 6.0, 42.0));
    let mut layer = RealTimeLayer::new(config, Vec::new(), Vec::new());
    // Entity 3 is poisoned: its records panic inside the per-entity stage.
    layer.attach_entity_stage(|r: &PositionReport| {
        assert!(r.entity != EntityId::vessel(3), "poison record");
    });

    let source = ChaosSource::new(fleet(4, 50).into_iter(), FaultPlan::chaos(seed));
    let mut accepted = 0usize;
    for report in source {
        if layer.ingest(report).accepted {
            accepted += 1;
        }
    }
    let health = layer.health();
    let dead = layer
        .dead_letters
        .consumer()
        .drain()
        .expect("unbounded topic never lags");

    println!("seed {seed}:");
    println!("  status               : {:?}", health.status);
    println!("  accepted             : {accepted}");
    println!("  dead-lettered        : {}", dead.len());
    println!(
        "  panics / restarts    : {} / {} (then quarantine)",
        health.panics, health.restarts
    );
    println!("  quarantined entities : {}", health.quarantined_entities);
    let mut by_reason = [0u64; 3];
    for d in &dead {
        match d.reason {
            RejectReason::Cleaning(_) => by_reason[0] += 1,
            RejectReason::ProcessingPanic => by_reason[1] += 1,
            RejectReason::Quarantined => by_reason[2] += 1,
        }
    }
    println!(
        "  reject reasons       : cleaning {} | panic {} | quarantined {}",
        by_reason[0], by_reason[1], by_reason[2]
    );
    (accepted, dead.len(), health.panics)
}

fn main() {
    println!("== supervised pipeline under chaos ==");
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed, same outcome");
    println!("  (both runs identical: fault injection is deterministic)\n");
    run(7);

    println!("\n== bounded topic: loss is observable, never silent ==");
    let topic: std::sync::Arc<Topic<u64>> = Topic::bounded("demo", 8, OverflowPolicy::DropOldest);
    let mut consumer = topic.consumer();
    for i in 0..20u64 {
        topic.publish(i);
    }
    match consumer.poll(usize::MAX) {
        Err(lagged) => println!("  consumer lagged: skipped {} messages", lagged.skipped),
        Ok(_) => println!("  consumer kept up"),
    }
    let caught_up = consumer.poll(usize::MAX).expect("resynced after lag");
    println!("  then read {:?}", caught_up);
    let stats = topic.stats();
    println!(
        "  topic stats: published {} dropped {} (retained {})",
        stats.published,
        stats.dropped,
        topic.retained()
    );
}

//! Skewed-key re-sharding benchmark: elastic resize and hot-key rebalance
//! under open-loop load (EXPERIMENTS.md, skewed-key table).
//!
//! The scenario the paper's time-critical setting produces: one entity (a
//! busy port's feed, a surveilled aircraft) emits **half** of all traffic,
//! and the background fleet hashes onto the same shard — the worst case
//! for static hash partitioning, and the dominant tail-latency driver in
//! real deployments. Three arms over the identical paced stream:
//!
//! * `skewed_static` — a fixed fleet with no rebalancing: the baseline,
//!   with the hot shard carrying everything.
//! * `skewed_rebalanced` — the same fleet with a [`RebalancePolicy`]
//!   installed and `maybe_rebalance` polled from the ingest loop: the
//!   policy must trip, pin the hot key to its own shard mid-stream, and
//!   hold the post-rebalance imbalance at the achievable floor.
//! * `elastic` — live resizes 2 → 8 → 4 mid-stream, measuring the
//!   stop-the-world pause of each checkpoint-migrate-respawn cycle.
//!
//! Every arm is open-loop (arrivals paced at `--rate` records/second
//! regardless of pipeline progress) and must be lossless: submitted ==
//! merged, zero late, zero duplicates — a resize may pause the stream but
//! never bend it. Writes `BENCH_reshard.json` (validate with
//! `tools/validate_reshard_bench.py`).
//!
//! ```text
//! cargo run --release --example bench_reshard -- \
//!     [--records 120000] [--background 12] [--shards 4] [--rate 20000] \
//!     [--seed 42] [--out BENCH_reshard.json] [--quick] \
//!     [--p99-gate-us N] [--imbalance-gate X]
//! ```
//!
//! `--p99-gate-us` / `--imbalance-gate` turn the report into an enforcing
//! CI gate: exit non-zero when the rebalanced arm's post-rebalance p99
//! exceeds the gate, when its post-rebalance imbalance exceeds the
//! threshold, or when the policy never tripped at all.

use datacron::core::sharded::ShardedRealTimeLayer;
use datacron::core::DatacronConfig;
use datacron::geo::{BoundingBox, EntityId, GeoPoint, PositionReport, Timestamp};
use datacron::stream::parallel::{RebalancePolicy, ShardAssigner, ShardedConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    records: usize,
    background: usize,
    shards: usize,
    rate: f64,
    seed: u64,
    out: String,
    quick: bool,
    p99_gate_us: Option<u64>,
    imbalance_gate: Option<f64>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            records: 120_000,
            background: 12,
            shards: 4,
            rate: 20_000.0,
            seed: 42,
            out: "BENCH_reshard.json".to_string(),
            quick: false,
            p99_gate_us: None,
            imbalance_gate: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1])).clone()
            };
            match argv[i].as_str() {
                "--records" => args.records = value(&mut i).parse().expect("--records"),
                "--background" => args.background = value(&mut i).parse().expect("--background"),
                "--shards" => args.shards = value(&mut i).parse().expect("--shards"),
                "--rate" => args.rate = value(&mut i).parse().expect("--rate"),
                "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
                "--out" => args.out = value(&mut i),
                "--quick" => args.quick = true,
                "--p99-gate-us" => {
                    args.p99_gate_us = Some(value(&mut i).parse().expect("--p99-gate-us"))
                }
                "--imbalance-gate" => {
                    args.imbalance_gate = Some(value(&mut i).parse().expect("--imbalance-gate"))
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if args.quick {
            args.records = args.records.min(24_000);
        }
        assert!(args.rate > 0.0, "--rate must be positive");
        assert!(args.background >= 1 && args.shards >= 2);
        args
    }
}

fn config() -> DatacronConfig {
    DatacronConfig::maritime(BoundingBox::new(-10.0, 30.0, 10.0, 50.0))
}

/// The skewed stream: entity `1` (the hot key) emits every second record —
/// 50% of all traffic — and the background entities are *chosen to hash
/// onto the hot key's shard* at the arm's shard count, so the whole
/// stream lands on one shard until something reroutes. Tracks are slow
/// circles (1°/step), so every track stays inside the extent no matter
/// how long the run.
fn skewed_fleet(records: usize, background: usize, shards: usize) -> Vec<PositionReport> {
    let assigner = ShardAssigner::new(shards);
    let hot = EntityId::vessel(1);
    let hot_shard = assigner.assign(&hot);
    let mut ids = Vec::with_capacity(background);
    let mut id = hot.id + 1;
    while ids.len() < background {
        if assigner.assign(&EntityId::vessel(id)) == hot_shard {
            ids.push(id);
        }
        id += 1;
    }

    // Per-track cursor: position, step counter. Rank 0 is the hot entity.
    let mut pos: Vec<GeoPoint> = (0..=background)
        .map(|rank| GeoPoint::new(-6.0 + 0.5 * (rank % 24) as f64, 36.0 + 0.4 * (rank / 24) as f64))
        .collect();
    let mut step = vec![0i64; background + 1];
    let mut out = Vec::with_capacity(records);
    for i in 0..records {
        let (entity, rank) =
            if i % 2 == 0 { (hot.id, 0) } else { (ids[(i / 2) % background], 1 + (i / 2) % background) };
        let k = step[rank];
        step[rank] += 1;
        let heading = (k % 360) as f64;
        pos[rank] = pos[rank].destination(heading, 80.0);
        out.push(PositionReport {
            speed_mps: 8.0,
            heading_deg: heading,
            ..PositionReport::basic(
                EntityId::vessel(entity),
                Timestamp::from_secs(k * 10),
                pos[rank],
            )
        });
    }
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Spin-assisted pacing (as in `bench_throughput`): sleep the bulk, spin
/// the last stretch.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One mid-stream reconfiguration event.
struct ReconfigEvent {
    from: usize,
    to: usize,
    pause_us: u64,
    moved_entities: usize,
}

/// What one arm is allowed to do mid-stream.
struct ArmPlan {
    start_shards: usize,
    /// `(record index, new shard count)` — explicit live resizes.
    resizes: Vec<(usize, usize)>,
    /// Auto-rebalance policy, polled every `check_every` records.
    policy: Option<RebalancePolicy>,
    check_every: usize,
}

struct ArmResult {
    final_shards: usize,
    elapsed: Duration,
    records: usize,
    accepted: u64,
    latencies_us: Vec<u64>,
    /// Submission index of the last reconfiguration, if any.
    reconfig_at: Option<usize>,
    events: Vec<ReconfigEvent>,
    overrides: usize,
    /// Skew-adjusted imbalance observed at the moment the policy tripped.
    imbalance_before: Option<f64>,
    /// Skew-adjusted imbalance over the final routing epoch's loads.
    imbalance_after: f64,
    max_reorder: usize,
}

impl ArmResult {
    /// Latencies of records submitted after the last reconfiguration (all
    /// records when the arm never reconfigured), sorted.
    fn post_latencies(&self) -> Vec<u64> {
        let from = self.reconfig_at.unwrap_or(0);
        let mut v: Vec<u64> = self.latencies_us[from..].to_vec();
        v.sort_unstable();
        v
    }

    fn sorted_latencies(&self) -> Vec<u64> {
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        v
    }

    fn rps(&self) -> f64 {
        self.records as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// One open-loop arm: paced arrivals, per-record submit→merge latencies
/// (attributed by submission order — the merge preserves it), mid-stream
/// resizes and policy checks per the plan. Panics unless the run is
/// lossless across every routing epoch.
fn run_arm(input: &[PositionReport], rate: f64, plan: &ArmPlan) -> ArmResult {
    let mut layer = ShardedRealTimeLayer::new(
        config(),
        Vec::new(),
        Vec::new(),
        ShardedConfig::with_shards(plan.start_shards),
    );
    if let Some(policy) = &plan.policy {
        layer.set_rebalance_policy(policy.clone());
    }
    let mut submit_times: Vec<Instant> = Vec::with_capacity(input.len());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(input.len());
    let mut merged_so_far = 0usize;
    let mut accepted = 0u64;
    let mut events = Vec::new();
    let mut reconfig_at = None;
    let mut imbalance_before = None;
    let mut resizes = plan.resizes.iter().copied().peekable();
    let started = Instant::now();
    for (i, r) in input.iter().enumerate() {
        if let Some(&(at, to)) = resizes.peek() {
            if i == at {
                resizes.next();
                let report = layer.resize(to).expect("live resize");
                events.push(ReconfigEvent {
                    from: report.from_shards,
                    to: report.to_shards,
                    pause_us: report.duration.as_micros() as u64,
                    moved_entities: report.plan.moved.len(),
                });
                reconfig_at = Some(i);
            }
        }
        if plan.policy.is_some() && i > 0 && i % plan.check_every == 0 {
            let loads = layer.shard_loads().to_vec();
            let max_key = layer.key_loads().iter().map(|&(_, n)| n).max().unwrap_or(0);
            let imbalance = RebalancePolicy::imbalance(&loads, max_key);
            if let Some(report) = layer.maybe_rebalance().expect("rebalance at a fixed count") {
                imbalance_before.get_or_insert(imbalance);
                events.push(ReconfigEvent {
                    from: report.from_shards,
                    to: report.to_shards,
                    pause_us: report.duration.as_micros() as u64,
                    moved_entities: report.plan.moved.len(),
                });
                reconfig_at = Some(i);
            }
        }
        // Pace to the arrival schedule, observing merges event-driven.
        let deadline = started + Duration::from_secs_f64(i as f64 / rate);
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let remaining = deadline - now;
            if remaining <= Duration::from_micros(300) {
                pace_until(deadline);
                break;
            }
            let outs = layer.poll_outputs_timeout(remaining - Duration::from_micros(200));
            if outs.is_empty() {
                continue;
            }
            let done = Instant::now();
            for out in outs {
                latencies_us
                    .push(done.duration_since(submit_times[merged_so_far]).as_micros() as u64);
                merged_so_far += 1;
                accepted += out.output.accepted as u64;
            }
        }
        submit_times.push(Instant::now());
        layer.ingest(*r);
        for out in layer.poll_outputs() {
            let done = Instant::now();
            latencies_us.push(done.duration_since(submit_times[merged_so_far]).as_micros() as u64);
            merged_so_far += 1;
            accepted += out.output.accepted as u64;
        }
    }
    let final_shards = layer.shards();
    let overrides = layer.assigner().overrides().len();
    let loads = layer.shard_loads().to_vec();
    let max_key = layer.key_loads().iter().map(|&(_, n)| n).max().unwrap_or(0);
    let imbalance_after = RebalancePolicy::imbalance(&loads, max_key);
    let done = layer.finish();
    let end = Instant::now();
    for out in &done.outputs {
        latencies_us.push(end.duration_since(submit_times[merged_so_far]).as_micros() as u64);
        merged_so_far += 1;
        accepted += out.output.accepted as u64;
    }
    let elapsed = started.elapsed();
    assert_eq!(merged_so_far, input.len(), "lossless across every epoch");
    assert_eq!(done.submitted, input.len() as u64);
    assert_eq!(done.merged, input.len() as u64);
    assert_eq!(done.late, 0, "no record may straddle an epoch boundary");
    assert_eq!(done.duplicates, 0);
    ArmResult {
        final_shards,
        elapsed,
        records: input.len(),
        accepted,
        latencies_us,
        reconfig_at,
        events,
        overrides,
        imbalance_before,
        imbalance_after,
        max_reorder: done.max_reorder,
    }
}

fn latency_json(sorted: &[u64]) -> String {
    format!(
        "{{\"p50\": {}, \"p99\": {}, \"max\": {}}}",
        percentile(sorted, 0.50),
        percentile(sorted, 0.99),
        sorted.last().copied().unwrap_or(0)
    )
}

fn arm_json(r: &ArmResult) -> String {
    let sorted = r.sorted_latencies();
    let post = r.post_latencies();
    let mut out = format!(
        "{{\"final_shards\": {}, \"records_per_sec\": {:.1}, \"elapsed_ms\": {:.3}, \
         \"accepted\": {}, \"latency_us\": {}, \"post_reconfig_latency_us\": {}, \
         \"max_reorder\": {}, \"overrides\": {}, \"imbalance_after\": {:.4}, \"lossless\": true",
        r.final_shards,
        r.rps(),
        r.elapsed.as_secs_f64() * 1e3,
        r.accepted,
        latency_json(&sorted),
        latency_json(&post),
        r.max_reorder,
        r.overrides,
        r.imbalance_after,
    );
    if let Some(b) = r.imbalance_before {
        let _ = write!(out, ", \"imbalance_before\": {b:.4}");
    }
    out.push_str(", \"reconfigs\": [");
    for (i, e) in r.events.iter().enumerate() {
        let sep = if i + 1 < r.events.len() { ", " } else { "" };
        let _ = write!(
            out,
            "{{\"from\": {}, \"to\": {}, \"pause_us\": {}, \"moved_entities\": {}}}{sep}",
            e.from, e.to, e.pause_us, e.moved_entities
        );
    }
    out.push_str("]}");
    out
}

fn print_arm(name: &str, r: &ArmResult) {
    let sorted = r.sorted_latencies();
    let post = r.post_latencies();
    println!(
        "  {name:<17}: p50 {} us, p99 {} us, max {} us | post-reconfig p99 {} us | \
         imbalance {:.2}{} | {} reconfig(s), {} override(s), attained {:.0} rec/s",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
        percentile(&post, 0.99),
        r.imbalance_after,
        r.imbalance_before.map(|b| format!(" (was {b:.2})")).unwrap_or_default(),
        r.events.len(),
        r.overrides,
        r.rps(),
    );
    for e in &r.events {
        println!(
            "    reconfig {} -> {} shards: paused {} us, moved {} entities",
            e.from, e.to, e.pause_us, e.moved_entities
        );
    }
}

fn main() {
    let args = Args::parse();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let input = skewed_fleet(args.records, args.background, args.shards);
    let policy = RebalancePolicy::default();
    println!(
        "bench_reshard: {} records (hot entity at 50%, {} co-resident background), \
         {} shards, paced at {:.0} rec/s, {} core(s){}",
        input.len(),
        args.background,
        args.shards,
        args.rate,
        cores,
        if args.quick { " [quick]" } else { "" },
    );

    // Warm-up: page in code and allocator arenas before any measured arm.
    let _ = run_arm(
        &input[..input.len().min(4096)],
        args.rate,
        &ArmPlan {
            start_shards: args.shards,
            resizes: Vec::new(),
            policy: None,
            check_every: usize::MAX,
        },
    );

    let skewed_static = run_arm(
        &input,
        args.rate,
        &ArmPlan {
            start_shards: args.shards,
            resizes: Vec::new(),
            policy: None,
            check_every: usize::MAX,
        },
    );
    print_arm("skewed_static", &skewed_static);

    let skewed_rebalanced = run_arm(
        &input,
        args.rate,
        &ArmPlan {
            start_shards: args.shards,
            resizes: Vec::new(),
            policy: Some(policy.clone()),
            check_every: 512,
        },
    );
    print_arm("skewed_rebalanced", &skewed_rebalanced);
    assert_eq!(
        skewed_rebalanced.accepted, skewed_static.accepted,
        "a rebalance must not change a single accept/reject decision"
    );

    let third = input.len() / 3;
    let elastic = run_arm(
        &input,
        args.rate,
        &ArmPlan {
            start_shards: 2,
            resizes: vec![(third, 8), (2 * third, 4)],
            policy: None,
            check_every: usize::MAX,
        },
    );
    print_arm("elastic", &elastic);
    assert_eq!(
        elastic.accepted, skewed_static.accepted,
        "live resizes must not change a single accept/reject decision"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"reshard\",").unwrap();
    writeln!(json, "  \"seed\": {},", args.seed).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"quick\": {},", args.quick).unwrap();
    writeln!(json, "  \"records\": {},", input.len()).unwrap();
    writeln!(json, "  \"rate_per_sec\": {:.1},", args.rate).unwrap();
    writeln!(json, "  \"hot_share\": 0.5,").unwrap();
    writeln!(json, "  \"background_entities\": {},", args.background).unwrap();
    writeln!(json, "  \"shards\": {},", args.shards).unwrap();
    writeln!(
        json,
        "  \"policy\": {{\"max_imbalance\": {:.2}, \"min_records\": {}, \
         \"cooldown_records\": {}, \"max_overrides\": {}}},",
        policy.max_imbalance, policy.min_records, policy.cooldown_records, policy.max_overrides
    )
    .unwrap();
    writeln!(json, "  \"skewed_static\": {},", arm_json(&skewed_static)).unwrap();
    writeln!(json, "  \"skewed_rebalanced\": {},", arm_json(&skewed_rebalanced)).unwrap();
    writeln!(json, "  \"elastic\": {}", arm_json(&elastic)).unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {}", args.out);

    // Enforcing gates (CI): the policy must have tripped, held the
    // post-rebalance imbalance under the threshold, and kept the
    // post-rebalance tail bounded.
    let mut failed = false;
    if (args.p99_gate_us.is_some() || args.imbalance_gate.is_some())
        && skewed_rebalanced.events.is_empty()
    {
        eprintln!("FAIL: the rebalance policy never tripped on a 50% hot key");
        failed = true;
    }
    if let Some(gate) = args.imbalance_gate {
        if skewed_rebalanced.imbalance_after > gate {
            eprintln!(
                "FAIL: post-rebalance imbalance {:.3} exceeds the {gate:.3} gate",
                skewed_rebalanced.imbalance_after
            );
            failed = true;
        }
    }
    if let Some(gate) = args.p99_gate_us {
        let post_p99 = percentile(&skewed_rebalanced.post_latencies(), 0.99);
        if post_p99 > gate {
            eprintln!("FAIL: post-rebalance p99 {post_p99} us exceeds the {gate} us gate");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

//! Maritime monitoring: the user-defined challenges of §2 — protected-area
//! surveillance and fishing-pattern forecasting over a synthetic fleet.
//!
//! A fleet of cargo ships, tankers, ferries and fishing vessels streams
//! through the system; protected regions raise entry/exit events, a CEP
//! pattern forecasts heading reversals (the fishing manoeuvre), and the
//! situation picture summarises the operational state.
//!
//! ```sh
//! cargo run --release --example maritime_monitoring
//! ```

use datacron::cep::{Dfa, Pattern, PatternMarkovChain, Wayeb};
use datacron::core::realtime::symbols;
use datacron::core::{DatacronConfig, DatacronSystem};
use datacron::data::context::{AreaGenerator, PortGenerator};
use datacron::data::maritime::{VoyageConfig, VoyageGenerator};
use datacron::geo::{BoundingBox, Timestamp};
use datacron::store::StoreConfig;
use datacron::stream::lowlevel::AreaEventKind;

fn main() {
    let extent = BoundingBox::new(-6.0, 35.0, 10.0, 44.0);

    // Stationary context: protected areas and ports.
    let mut area_gen = AreaGenerator::new(extent);
    area_gen.radius_m = (10_000.0, 40_000.0);
    let regions = area_gen.generate(60, "natura", 5);
    let ports = PortGenerator::new(extent).generate(25, 6);

    // The system, with the NorthToSouthReversal forecaster attached.
    let config = DatacronConfig::maritime(extent);
    let mut system = DatacronSystem::new(
        config,
        regions.iter().map(|r| (r.id, r.polygon.clone())).collect(),
        ports.iter().map(|p| (p.id, p.point)).collect(),
        StoreConfig::default(),
    );
    let pattern = Pattern::north_to_south_reversal(symbols::NORTH, symbols::EAST, symbols::SOUTH);
    let dfa = Dfa::compile(&pattern, symbols::ALPHABET);
    let pmc = PatternMarkovChain::new(dfa, 0, vec![0.25; symbols::ALPHABET]);
    system.realtime.attach_cep(Wayeb::new(pmc, 0.5, 60), symbols::heading_symbolizer);

    // A noisy fleet (gaps, outliers, duplicates — the system cleans them).
    let fleet = VoyageGenerator::new(VoyageConfig::default()).fleet(15, &ports, Timestamp(0), 99);
    let mut reports: Vec<_> = fleet.iter().flat_map(|v| v.reports.iter().copied()).collect();
    reports.sort_by_key(|r| r.ts);

    let mut entries = 0usize;
    let mut exits = 0usize;
    let mut detections = 0usize;
    for r in reports {
        let out = system.ingest(r);
        for e in &out.area_events {
            match e.kind {
                AreaEventKind::Entered => {
                    entries += 1;
                    if entries <= 5 {
                        println!("[t{:>6}] {} ENTERED region {}", e.ts.secs(), e.entity, e.area_id);
                    }
                }
                AreaEventKind::Exited => exits += 1,
            }
        }
        detections += out.cep_detections;
    }

    let picture = system.situation(3, 30.0);
    println!("\n== operational picture ==");
    println!("vessels tracked      : {}", picture.entries.len());
    println!("reports ingested     : {}", picture.total_reports);
    println!("critical points      : {}", picture.total_critical);
    println!("area entries / exits : {entries} / {exits}");
    println!("links discovered     : {}", picture.total_links);
    println!("reversal detections  : {detections}");

    let nodes = system.sync_batch();
    println!("\nbatch layer ingested {} semantic nodes ({} triples total)", nodes, system.batch.triple_count());
}

//! Complex event forecasting with Pattern Markov Chains (§6): build the
//! NorthToSouthReversal pattern, train PMCs of different orders on a turn
//! event stream, and watch the engine detect and forecast online.
//!
//! ```sh
//! cargo run --release --example event_forecasting
//! ```

use datacron::cep::engine::evaluate_stream;
use datacron::cep::{Dfa, Pattern, PatternMarkovChain, Wayeb};
use datacron::data::events::MarkovSymbolSource;

const NAMES: [&str; 4] = ["North", "East", "South", "Other"];

fn main() {
    // R = North (North + East)* South over turn events.
    let pattern = Pattern::north_to_south_reversal(0, 1, 2);
    let dfa = Dfa::compile(&pattern, 4);
    println!("compiled DFA: {} states", dfa.n_states());

    // A 2nd-order synthetic turn process: training and evaluation streams.
    let source = MarkovSymbolSource::random(4, 2, 2.5, 17);
    let train = source.generate(50_000, 1).symbols;
    let live = source.generate(60, 2).symbols;

    // Train a 2nd-order PMC and run the engine over a short live stream.
    let pmc = PatternMarkovChain::train(dfa, 2, &train);
    let mut engine = Wayeb::new(pmc.clone(), 0.6, 100);
    println!("\nlive stream (θ = 0.6):");
    for (i, &s) in live.iter().enumerate() {
        let out = engine.process(s);
        let mut line = format!("t{i:<3} {:<6}", NAMES[s as usize]);
        if out.detected {
            line.push_str("  ** REVERSAL DETECTED **");
        } else if let Some(f) = out.forecast {
            line.push_str(&format!(
                "  forecast: completion in [{}, {}] steps (p = {:.2})",
                f.start, f.end, f.probability
            ));
        }
        println!("{line}");
    }

    // Offline: precision by threshold and order.
    println!("\nprecision on 50k held-out events:");
    let test = source.generate(50_000, 3).symbols;
    for order in [1usize, 2] {
        let dfa = Dfa::compile(&pattern, 4);
        let pmc = PatternMarkovChain::train(dfa, order, &train);
        for theta in [0.4, 0.6, 0.8] {
            let eval = evaluate_stream(&mut Wayeb::new(pmc.clone(), theta, 200), &test);
            println!(
                "  order {order}, θ = {theta}: precision {:.3} (spread {:.1}, {} forecasts)",
                eval.precision(),
                eval.mean_spread,
                eval.forecasts
            );
        }
    }
}

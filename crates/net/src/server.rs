//! The ingestion server: accepts TCP connections and bridges them onto an
//! in-process [`Topic<PositionReport>`].
//!
//! ## Admission control
//!
//! The bridged topic's [`OverflowPolicy`] maps onto the wire:
//!
//! * `Block` — the handler parks in the publish loop until consumers free
//!   space. While parked it does not read its socket, so the kernel's
//!   receive window fills and the remote client blocks in `write`: topic
//!   backpressure becomes TCP backpressure, end to end.
//! * `RejectNew` — a full topic refuses the record with a typed
//!   [`NackReason::TopicFull`] frame and closes the connection; the
//!   client's reconnect backoff doubles as the flow-control retry timer.
//! * `DropOldest` on a **bounded** topic is refused at bind time
//!   ([`NetError::LossyTopicPolicy`]): the server would acknowledge records
//!   it later silently discards, which breaks the exactly-once contract.
//!   (Unbounded `DropOldest` topics are lossless and accepted.)
//!
//! ## Session resume
//!
//! Sessions are keyed by the client-chosen `session_id` and **outlive
//! connections**: the per-session high watermark (`next_expected`) stays in
//! the server's session table across disconnects. On `Hello` the server
//! replies with the watermark so the client can prune its replay window;
//! records below the watermark are duplicates (counted, re-acked, not
//! published), records above it are a gap (NACK + close, forcing a
//! resume), and only the exact next sequence is published — exactly-once
//! onto the topic no matter how often the wire fails mid-stream.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use datacron_geo::PositionReport;
use datacron_obs::{Counter, Gauge, ObsRegistry};
use datacron_stream::{OverflowPolicy, PublishError, SpaceWaitError, Topic};

use crate::wire::{self, NackReason, WireMsg, PROTOCOL_VERSION};
use crate::{NetError, NetHealth};

/// Tuning for [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent post-handshake connections; further handshakes
    /// are refused with [`NackReason::SessionLimit`].
    pub max_sessions: usize,
    /// Send a cumulative [`WireMsg::Ack`] after this many records (and on
    /// every heartbeat / read lull).
    pub ack_every: u64,
    /// Socket read timeout; also the granularity at which handlers notice
    /// shutdown and idle peers.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Close a connection that has been silent this long.
    pub idle_timeout: Duration,
    /// Per-iteration wait inside the blocked-publish loop, used to detect
    /// the consumers-all-dropped condition promptly.
    pub publish_retry: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            ack_every: 32,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
            publish_retry: Duration::from_millis(20),
        }
    }
}

/// Point-in-time view of one session, for drills and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The client-chosen session identity.
    pub session_id: u64,
    /// Next session sequence the server expects (= records ingested).
    pub next_expected: u64,
    /// Redelivered records deduplicated by sequence.
    pub duplicates: u64,
    /// `Some(total)` once the client's finish marker was accepted.
    pub finished: Option<u64>,
}

/// Per-session resume state; outlives individual connections.
#[derive(Debug, Default)]
struct SessionState {
    next_expected: u64,
    duplicates: u64,
    finished: Option<u64>,
}

/// Obs instruments, resolved once at bind time and shared by every
/// handler thread (a disabled registry hands out detached instruments, so
/// resolving once keeps reads and writes on the same instrument).
struct NetCounters {
    active: Gauge,
    sessions: Counter,
    records: Counter,
    duplicates: Counter,
    nacks: Counter,
    crc_errors: Counter,
}

impl NetCounters {
    fn resolve(obs: &ObsRegistry) -> Self {
        Self {
            active: obs.gauge("net.server.active_sessions"),
            sessions: obs.counter("net.server.sessions"),
            records: obs.counter("net.server.records"),
            duplicates: obs.counter("net.server.duplicates"),
            nacks: obs.counter("net.server.nacks"),
            crc_errors: obs.counter("net.frame.crc_errors"),
        }
    }
}

/// Decrements the active-session gauge on every handler exit path.
struct ActiveGuard(Arc<NetCounters>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.sub(1);
    }
}

type SessionMap = HashMap<u64, Arc<Mutex<SessionState>>>;

/// A running ingestion server. Dropping (or [`shutdown`](Self::shutdown))
/// stops the accept loop and joins every handler thread.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<NetCounters>,
    sessions: Arc<Mutex<SessionMap>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting feeders into
    /// `topic`. Refuses lossy topics — see the module docs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        topic: Arc<Topic<PositionReport>>,
        obs: &ObsRegistry,
    ) -> Result<NetServer, NetError> {
        let cfg = topic.config();
        if cfg.capacity.is_some() && cfg.policy == OverflowPolicy::DropOldest {
            return Err(NetError::LossyTopicPolicy);
        }

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::resolve(obs));
        let sessions: Arc<Mutex<SessionMap>> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let sessions = Arc::clone(&sessions);
            let handlers = Arc::clone(&handlers);
            let config = config.clone();
            thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    accept_loop(listener, config, topic, stop, counters, sessions, handlers)
                })
                .map_err(NetError::Io)?
        };

        Ok(NetServer { local_addr, stop, accept: Some(accept), handlers, counters, sessions })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot the server-side network health.
    pub fn health(&self) -> NetHealth {
        NetHealth {
            active_sessions: self.counters.active.get().max(0) as u64,
            sessions_started: self.counters.sessions.get(),
            records_ingested: self.counters.records.get(),
            duplicates_dropped: self.counters.duplicates.get(),
            nacks_sent: self.counters.nacks.get(),
            crc_errors: self.counters.crc_errors.get(),
        }
    }

    /// Snapshot one session's resume state.
    pub fn session(&self, session_id: u64) -> Option<SessionSnapshot> {
        let map = self.sessions.lock().unwrap();
        map.get(&session_id).map(|st| snapshot(session_id, st))
    }

    /// Snapshot every session ever seen, sorted by id.
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        let map = self.sessions.lock().unwrap();
        let mut all: Vec<_> = map.iter().map(|(id, st)| snapshot(*id, st)).collect();
        all.sort_by_key(|s| s.session_id);
        all
    }

    /// Stop accepting, close handlers, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drained: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn snapshot(session_id: u64, st: &Arc<Mutex<SessionState>>) -> SessionSnapshot {
    let st = st.lock().unwrap();
    SessionSnapshot {
        session_id,
        next_expected: st.next_expected,
        duplicates: st.duplicates,
        finished: st.finished,
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    topic: Arc<Topic<PositionReport>>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    sessions: Arc<Mutex<SessionMap>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                if counters.active.get() >= config.max_sessions as i64 {
                    counters.nacks.inc();
                    let _ = stream.set_write_timeout(Some(config.write_timeout));
                    let _ = wire::write_msg(
                        &mut (&stream),
                        0,
                        &WireMsg::Nack { seq: 0, reason: NackReason::SessionLimit },
                    );
                    continue;
                }
                let config = config.clone();
                let topic = Arc::clone(&topic);
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let sessions = Arc::clone(&sessions);
                let spawned = thread::Builder::new().name("net-conn".into()).spawn(move || {
                    handle_conn(stream, config, topic, stop, counters, sessions)
                });
                if let Ok(h) = spawned {
                    handlers.lock().unwrap().push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Outcome of trying to publish one admitted record onto the topic.
enum Admit {
    Ok,
    Reject,
    Stop,
}

fn publish_admitted(
    topic: &Topic<PositionReport>,
    report: PositionReport,
    config: &ServerConfig,
    stop: &AtomicBool,
) -> Admit {
    let mut msg = report;
    loop {
        match topic.try_publish(msg) {
            Ok(_) => return Admit::Ok,
            // RejectNew: hand the refusal to the client as a typed NACK.
            Err(PublishError::Rejected(_)) => return Admit::Reject,
            // Block: no space within block_timeout, or consumers vanished.
            Err(PublishError::Timeout(m)) => {
                if stop.load(Ordering::SeqCst) {
                    return Admit::Stop;
                }
                match topic.wait_for_space(config.publish_retry) {
                    // Space appeared, or plain timeout: keep applying
                    // backpressure by staying parked off the socket.
                    Ok(()) | Err(SpaceWaitError::Timeout) => msg = m,
                    // Nobody left to drain the topic: admitting more
                    // records would strand them. Refuse.
                    Err(SpaceWaitError::NoConsumers) => return Admit::Reject,
                }
            }
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    config: ServerConfig,
    topic: Arc<Topic<PositionReport>>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    sessions: Arc<Mutex<SessionMap>>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    let mut buf = Vec::new();
    let mut wire_seq = 0u64;
    let send = |msg: &WireMsg, wire_seq: &mut u64| -> bool {
        let seq = *wire_seq;
        *wire_seq += 1;
        wire::write_msg(&mut (&stream), seq, msg).is_ok()
    };

    // Handshake: the first frame must be a valid Hello.
    let hello_deadline = Instant::now() + config.idle_timeout;
    let session_id = loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match wire::read_msg(&stream, &mut buf) {
            Ok(Some((_, WireMsg::Hello { version, session_id }))) => {
                if version != PROTOCOL_VERSION {
                    counters.nacks.inc();
                    send(&WireMsg::Nack { seq: 0, reason: NackReason::BadVersion }, &mut wire_seq);
                    return;
                }
                break session_id;
            }
            Ok(Some(_)) => return, // protocol violation: not a Hello
            Ok(None) => {
                if Instant::now() > hello_deadline {
                    return;
                }
            }
            Err(NetError::CorruptFrame) | Err(NetError::Codec(_)) => {
                counters.crc_errors.inc();
                return;
            }
            Err(_) => return,
        }
    };

    let session = {
        let mut map = sessions.lock().unwrap();
        Arc::clone(map.entry(session_id).or_default())
    };
    counters.sessions.inc();
    counters.active.add(1);
    let _active = ActiveGuard(Arc::clone(&counters));

    let ack0 = session.lock().unwrap().next_expected;
    if !send(&WireMsg::HelloAck { session_id, ack: ack0 }, &mut wire_seq) {
        return;
    }

    let mut unacked = 0u64;
    let mut last_rx = Instant::now();
    loop {
        if stop.load(Ordering::SeqCst) {
            let up_to = session.lock().unwrap().next_expected;
            send(&WireMsg::Ack { up_to }, &mut wire_seq);
            return;
        }
        let msg = match wire::read_msg(&stream, &mut buf) {
            Ok(Some((_, msg))) => msg,
            Ok(None) => {
                if last_rx.elapsed() > config.idle_timeout {
                    return;
                }
                // Lull on the wire: flush any pending acknowledgement so
                // the client's window drains even between batches.
                if unacked > 0 {
                    let up_to = session.lock().unwrap().next_expected;
                    if !send(&WireMsg::Ack { up_to }, &mut wire_seq) {
                        return;
                    }
                    unacked = 0;
                }
                continue;
            }
            Err(NetError::CorruptFrame) | Err(NetError::Codec(_)) => {
                // Damaged bytes in flight: the stream alignment is gone.
                // Close; resume redelivers everything unacknowledged.
                counters.crc_errors.inc();
                return;
            }
            Err(_) => return, // closed / stalled / io error
        };
        last_rx = Instant::now();

        match msg {
            // A duplicated Hello frame (fault proxy) — re-ack idempotently.
            WireMsg::Hello { version, .. } => {
                if version != PROTOCOL_VERSION {
                    return;
                }
                let ack = session.lock().unwrap().next_expected;
                if !send(&WireMsg::HelloAck { session_id, ack }, &mut wire_seq) {
                    return;
                }
            }
            WireMsg::Record { session_seq, report } => {
                // Hold the session lock across check+publish+advance so a
                // lingering half-dead connection for the same session
                // cannot interleave and double-publish.
                let mut st = session.lock().unwrap();
                if session_seq < st.next_expected {
                    // Redelivery after resume: drop, re-ack to resync.
                    st.duplicates += 1;
                    counters.duplicates.inc();
                    let up_to = st.next_expected;
                    drop(st);
                    if !send(&WireMsg::Ack { up_to }, &mut wire_seq) {
                        return;
                    }
                    unacked = 0;
                } else if session_seq > st.next_expected {
                    // Frames vanished in flight; force a resume.
                    let expected = st.next_expected;
                    drop(st);
                    counters.nacks.inc();
                    send(
                        &WireMsg::Nack { seq: expected, reason: NackReason::SequenceGap },
                        &mut wire_seq,
                    );
                    return;
                } else {
                    match publish_admitted(&topic, report, &config, &stop) {
                        Admit::Ok => {
                            st.next_expected += 1;
                            let up_to = st.next_expected;
                            drop(st);
                            counters.records.inc();
                            unacked += 1;
                            if unacked >= config.ack_every {
                                if !send(&WireMsg::Ack { up_to }, &mut wire_seq) {
                                    return;
                                }
                                unacked = 0;
                            }
                        }
                        Admit::Reject => {
                            drop(st);
                            counters.nacks.inc();
                            send(
                                &WireMsg::Nack {
                                    seq: session_seq,
                                    reason: NackReason::TopicFull,
                                },
                                &mut wire_seq,
                            );
                            return;
                        }
                        Admit::Stop => return,
                    }
                }
            }
            WireMsg::Heartbeat { nonce } => {
                let up_to = session.lock().unwrap().next_expected;
                if !send(&WireMsg::Ack { up_to }, &mut wire_seq) {
                    return;
                }
                unacked = 0;
                if !send(&WireMsg::HeartbeatAck { nonce }, &mut wire_seq) {
                    return;
                }
            }
            WireMsg::Finish { total } => {
                let mut st = session.lock().unwrap();
                if st.next_expected == total {
                    st.finished = Some(total);
                    drop(st);
                    if !send(&WireMsg::Ack { up_to: total }, &mut wire_seq) {
                        return;
                    }
                    send(&WireMsg::FinishAck { total }, &mut wire_seq);
                } else {
                    // The finish marker outran lost records (or arrived
                    // stale and duplicated): force a resume.
                    let expected = st.next_expected;
                    drop(st);
                    counters.nacks.inc();
                    send(
                        &WireMsg::Nack { seq: expected, reason: NackReason::SequenceGap },
                        &mut wire_seq,
                    );
                }
                return;
            }
            // Server-bound protocol only; anything else is a violation.
            _ => return,
        }
    }
}

//! The feeder client: robust delivery of a position stream over TCP.
//!
//! ## Delivery contract
//!
//! [`NetClient::send`] stamps every record with a monotonic **session
//! sequence** and holds it in a bounded unacked window until the server's
//! cumulative ACK watermark passes it. If the connection dies — reset,
//! corruption, stall, dead peer — the client reconnects under capped
//! exponential backoff with seeded jitter, re-handshakes, prunes the
//! window to the server's acknowledged watermark, and replays the unacked
//! suffix. The server deduplicates by sequence, so the merged stream the
//! topic sees is exactly-once regardless of how many times the wire
//! failed: [`NetClient::finish`] after [`NetClient::flush`] yields output
//! bit-identical to an uninterrupted run.
//!
//! ## Liveness
//!
//! Heartbeats flow every `heartbeat_interval`; their echoed nonce feeds
//! the `net.client.rtt_us` histogram. A connection that produces no
//! inbound traffic for `dead_after` is declared dead and replaced. Backoff
//! resets only when a post-handshake ACK arrives — a server that accepts
//! connections but refuses records keeps the retry rate decaying.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

use datacron_geo::PositionReport;
use datacron_obs::{Counter, LogHistogram, ObsRegistry};

use crate::backoff::{Backoff, BackoffConfig};
use crate::wire::{self, NackReason, WireMsg, PROTOCOL_VERSION};
use crate::NetError;

/// Tuning for [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:7400"`.
    pub addr: String,
    /// Stable session identity; reconnects resume under the same id.
    pub session_id: u64,
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout (one blocking pump tick).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Send a heartbeat after this much time without one.
    pub heartbeat_interval: Duration,
    /// Declare the peer dead after this long without any inbound frame.
    pub dead_after: Duration,
    /// Reconnect backoff policy.
    pub backoff: BackoffConfig,
    /// Maximum unacknowledged records held for replay; `send` blocks
    /// (draining ACKs) once the window is full.
    pub window: usize,
    /// Consecutive failed connection attempts before
    /// [`NetError::PeerUnavailable`].
    pub max_connect_attempts: u32,
}

impl ClientConfig {
    /// Defaults for `addr` under session `session_id`.
    pub fn new(addr: impl Into<String>, session_id: u64) -> Self {
        Self {
            addr: addr.into(),
            session_id,
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            heartbeat_interval: Duration::from_millis(500),
            dead_after: Duration::from_secs(5),
            backoff: BackoffConfig::default(),
            window: 256,
            max_connect_attempts: 50,
        }
    }
}

/// Counters describing one client's life so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Records handed to [`NetClient::send`] (each stamped once).
    pub sent: u64,
    /// Record frames rewritten during window replays after reconnects.
    pub replayed: u64,
    /// Acknowledged watermark: every sequence below this is durable
    /// server-side.
    pub acked: u64,
    /// Successful re-establishments after the first connection.
    pub reconnects: u64,
    /// Typed NACK frames received.
    pub nacks_seen: u64,
    /// Inbound frames that failed CRC/framing validation.
    pub crc_errors: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
}

/// One live connection's state.
struct Conn {
    stream: TcpStream,
    /// Per-connection wire frame counter for control messages.
    wire_seq: u64,
    /// Session sequences below this were already written on *this*
    /// connection (replay high-water), so `send` never double-writes.
    sent_up_to: u64,
    last_rx: Instant,
    last_hb_sent: Instant,
    outstanding_hb: Option<(u64, Instant)>,
}

/// A fault-tolerant feeder. See the module docs for the delivery contract.
pub struct NetClient {
    cfg: ClientConfig,
    conn: Option<Conn>,
    /// Unacked `(session_seq, report)` pairs, ordered by sequence.
    window: VecDeque<(u64, PositionReport)>,
    next_seq: u64,
    acked: u64,
    finish_acked: Option<u64>,
    ever_connected: bool,
    backoff: Backoff,
    stats: ClientStats,
    buf: Vec<u8>,
    hb_nonce: u64,
    reconnects_c: Counter,
    crc_errors_c: Counter,
    backoff_ms_h: LogHistogram,
    rtt_us_h: LogHistogram,
}

/// Errors that a reconnect-and-resume cycle can heal; everything else is
/// surfaced to the caller.
fn recoverable(e: &NetError) -> bool {
    match e {
        NetError::Io(_)
        | NetError::Codec(_)
        | NetError::CorruptFrame
        | NetError::ConnectionClosed
        | NetError::Timeout
        | NetError::Protocol(_) => true,
        NetError::Nacked { reason, .. } => *reason != NackReason::BadVersion,
        NetError::PeerUnavailable { .. } | NetError::LossyTopicPolicy => false,
    }
}

impl NetClient {
    /// Connect (with retries under the backoff policy) and handshake.
    pub fn connect(cfg: ClientConfig, obs: &ObsRegistry) -> Result<NetClient, NetError> {
        let backoff = Backoff::new(cfg.backoff);
        let mut client = NetClient {
            conn: None,
            window: VecDeque::new(),
            next_seq: 0,
            acked: 0,
            finish_acked: None,
            ever_connected: false,
            backoff,
            stats: ClientStats::default(),
            buf: Vec::new(),
            hb_nonce: 0,
            reconnects_c: obs.counter("net.client.reconnects"),
            crc_errors_c: obs.counter("net.frame.crc_errors"),
            backoff_ms_h: obs.histogram("net.client.backoff_ms"),
            rtt_us_h: obs.histogram("net.client.rtt_us"),
            cfg,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats.clone()
    }

    /// Records stamped but not yet acknowledged.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Next session sequence to be stamped (= records sent so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Deliver one record. Returns once the record is stamped, windowed
    /// and written (delivery then survives any number of reconnects);
    /// blocks draining ACKs when the window is full.
    pub fn send(&mut self, report: PositionReport) -> Result<(), NetError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back((seq, report));
        self.stats.sent += 1;
        loop {
            self.ensure_connected()?;
            match self.send_step(seq) {
                Ok(()) => return Ok(()),
                Err(e) if recoverable(&e) => self.drop_conn(),
                Err(e) => return Err(e),
            }
        }
    }

    /// Block until every stamped record is acknowledged.
    pub fn flush(&mut self) -> Result<(), NetError> {
        while !self.window.is_empty() {
            self.ensure_connected()?;
            match self.pump(true) {
                Ok(()) => {}
                Err(e) if recoverable(&e) => self.drop_conn(),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Flush, exchange the finish marker, and return the final counters.
    pub fn finish(mut self) -> Result<ClientStats, NetError> {
        self.flush()?;
        let total = self.next_seq;
        loop {
            self.ensure_connected()?;
            match self.finish_step(total) {
                Ok(()) => return Ok(self.stats.clone()),
                Err(e) if recoverable(&e) => self.drop_conn(),
                Err(e) => return Err(e),
            }
        }
    }

    /// Fault hook for drills and tests: shut the live socket down without
    /// telling the client state machine, exactly as a crashed link would.
    /// The next operation discovers the dead socket and resumes.
    pub fn sever_connection(&mut self) {
        if let Some(conn) = &self.conn {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
    }

    /// Establish (or re-establish) the connection, re-handshake, prune
    /// the window to the server's watermark and replay the rest.
    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut attempts = 0u32;
        loop {
            if attempts > 0 || self.ever_connected {
                let delay = self.backoff.next_delay();
                self.backoff_ms_h.record(delay.as_millis() as u64);
                thread::sleep(delay);
            }
            attempts += 1;
            match self.try_connect() {
                Ok(conn) => {
                    if self.ever_connected {
                        self.stats.reconnects += 1;
                        self.reconnects_c.inc();
                    }
                    self.ever_connected = true;
                    self.conn = Some(conn);
                    match self.replay_window() {
                        Ok(()) => return Ok(()),
                        Err(e) if recoverable(&e) => {
                            self.drop_conn();
                            // fall through to retry under the attempt cap
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) if !recoverable(&e) => return Err(e),
                Err(_) => {}
            }
            if self.conn.is_none() && attempts >= self.cfg.max_connect_attempts {
                return Err(NetError::PeerUnavailable { attempts });
            }
        }
    }

    /// One TCP connect + Hello/HelloAck handshake.
    fn try_connect(&mut self) -> Result<Conn, NetError> {
        let addr = self
            .cfg
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or(NetError::Protocol("unresolvable server address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;

        let mut wire_seq = 0u64;
        let hello =
            WireMsg::Hello { version: PROTOCOL_VERSION, session_id: self.cfg.session_id };
        wire::write_msg(&mut (&stream), wire_seq, &hello)?;
        wire_seq += 1;

        let deadline = Instant::now() + self.cfg.dead_after;
        loop {
            match wire::read_msg(&stream, &mut self.buf) {
                Ok(Some((_, WireMsg::HelloAck { session_id, ack }))) => {
                    if session_id != self.cfg.session_id {
                        return Err(NetError::Protocol("handshake echoed wrong session"));
                    }
                    self.apply_ack(ack, true)?;
                    let now = Instant::now();
                    return Ok(Conn {
                        stream,
                        wire_seq,
                        sent_up_to: 0,
                        last_rx: now,
                        last_hb_sent: now,
                        outstanding_hb: None,
                    });
                }
                Ok(Some((_, WireMsg::Nack { seq, reason }))) => {
                    self.stats.nacks_seen += 1;
                    return Err(NetError::Nacked { seq, reason });
                }
                Ok(Some(_)) => return Err(NetError::Protocol("unexpected handshake reply")),
                Ok(None) => {
                    if Instant::now() > deadline {
                        return Err(NetError::Timeout);
                    }
                }
                Err(NetError::CorruptFrame) => {
                    self.stats.crc_errors += 1;
                    self.crc_errors_c.inc();
                    return Err(NetError::CorruptFrame);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Rewrite every windowed record on the fresh connection, in order.
    fn replay_window(&mut self) -> Result<(), NetError> {
        let conn = self.conn.as_mut().expect("replay without connection");
        for (seq, report) in self.window.iter() {
            let msg = WireMsg::Record { session_seq: *seq, report: *report };
            wire::write_msg(&mut (&conn.stream), *seq, &msg)?;
            self.stats.replayed += 1;
        }
        conn.sent_up_to = self.next_seq;
        Ok(())
    }

    /// Drain the window below the cap, write the new record, drain ACKs.
    fn send_step(&mut self, seq: u64) -> Result<(), NetError> {
        while self.window.len() > self.cfg.window {
            self.pump(true)?;
        }
        // Already acknowledged while draining (possible after a resume)?
        if seq < self.acked {
            return Ok(());
        }
        let conn = self.conn.as_mut().ok_or(NetError::ConnectionClosed)?;
        if seq >= conn.sent_up_to {
            // Not covered by this connection's replay: write it now.
            let front = self.window.front().map(|(s, _)| *s).unwrap_or(self.next_seq);
            let idx = (seq - front) as usize;
            let report = self.window[idx].1;
            let msg = WireMsg::Record { session_seq: seq, report };
            wire::write_msg(&mut (&conn.stream), seq, &msg)?;
            conn.sent_up_to = seq + 1;
        }
        self.pump(false)
    }

    /// Exchange the finish marker and wait for its acknowledgement.
    fn finish_step(&mut self, total: u64) -> Result<(), NetError> {
        {
            let conn = self.conn.as_mut().ok_or(NetError::ConnectionClosed)?;
            let seq = conn.wire_seq;
            conn.wire_seq += 1;
            wire::write_msg(&mut (&conn.stream), seq, &WireMsg::Finish { total })?;
        }
        let deadline = Instant::now() + self.cfg.dead_after;
        loop {
            let res = self.pump(true);
            // The server closes the connection right after FinishAck, so
            // one pump tick can deliver the ack *and* hit EOF; the ack
            // wins — reconnecting just to re-finish would be spurious.
            if self.finish_acked == Some(total) {
                return Ok(());
            }
            res?;
            if Instant::now() > deadline {
                return Err(NetError::Timeout);
            }
        }
    }

    /// One pump tick: read inbound frames (one blocking read when `block`,
    /// else a non-blocking drain), then heartbeat and dead-peer checks.
    fn pump(&mut self, block: bool) -> Result<(), NetError> {
        let mut first = true;
        loop {
            let res = {
                let conn = self.conn.as_ref().ok_or(NetError::ConnectionClosed)?;
                if block && first {
                    wire::read_msg(&conn.stream, &mut self.buf)
                } else {
                    wire::try_read_msg(&conn.stream, &mut self.buf)
                }
            };
            first = false;
            match res {
                Ok(Some((_, msg))) => {
                    if let Some(c) = self.conn.as_mut() {
                        c.last_rx = Instant::now();
                    }
                    self.process_msg(msg)?;
                }
                Ok(None) => break,
                Err(NetError::CorruptFrame) => {
                    self.stats.crc_errors += 1;
                    self.crc_errors_c.inc();
                    return Err(NetError::CorruptFrame);
                }
                Err(e) => return Err(e),
            }
        }

        let conn = self.conn.as_mut().ok_or(NetError::ConnectionClosed)?;
        if conn.last_rx.elapsed() > self.cfg.dead_after {
            // Nothing inbound for too long — declare the peer dead so the
            // caller reconnects instead of waiting forever.
            return Err(NetError::Timeout);
        }
        if conn.last_hb_sent.elapsed() >= self.cfg.heartbeat_interval {
            let nonce = self.hb_nonce;
            self.hb_nonce += 1;
            let seq = conn.wire_seq;
            conn.wire_seq += 1;
            wire::write_msg(&mut (&conn.stream), seq, &WireMsg::Heartbeat { nonce })?;
            let now = Instant::now();
            conn.last_hb_sent = now;
            conn.outstanding_hb = Some((nonce, now));
            self.stats.heartbeats += 1;
        }
        Ok(())
    }

    /// Apply one inbound post-handshake message.
    fn process_msg(&mut self, msg: WireMsg) -> Result<(), NetError> {
        match msg {
            WireMsg::Ack { up_to } => self.apply_ack(up_to, false),
            WireMsg::HeartbeatAck { nonce } => {
                if let Some(conn) = self.conn.as_mut() {
                    if let Some((expected, sent_at)) = conn.outstanding_hb {
                        if nonce == expected {
                            conn.outstanding_hb = None;
                            self.rtt_us_h.record(sent_at.elapsed().as_micros() as u64);
                        }
                        // A stale nonce is a duplicated frame: ignore.
                    }
                }
                Ok(())
            }
            WireMsg::Nack { seq, reason } => {
                self.stats.nacks_seen += 1;
                Err(NetError::Nacked { seq, reason })
            }
            WireMsg::FinishAck { total } => {
                self.finish_acked = Some(total);
                Ok(())
            }
            // A duplicated HelloAck (fault proxy): its watermark is still
            // authoritative.
            WireMsg::HelloAck { ack, .. } => self.apply_ack(ack, true),
            _ => Err(NetError::Protocol("client-bound message expected")),
        }
    }

    /// Advance the acknowledged watermark: prune the window and (for real
    /// post-handshake ACKs) reset the reconnect backoff.
    fn apply_ack(&mut self, up_to: u64, handshake: bool) -> Result<(), NetError> {
        if up_to > self.next_seq {
            return Err(NetError::Protocol("ack beyond the sent window"));
        }
        while let Some(&(seq, _)) = self.window.front() {
            if seq < up_to {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if up_to > self.acked {
            self.acked = up_to;
        }
        self.stats.acked = self.acked;
        if !handshake {
            self.backoff.reset();
        }
        Ok(())
    }
}

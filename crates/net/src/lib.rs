#![warn(missing_docs)]

//! # datacron-net
//!
//! Fault-tolerant networked ingestion for the datAcron real-time layer: a
//! TCP bus that carries [`datacron_geo::PositionReport`] streams from remote
//! feeders into the in-process [`datacron_stream::Topic`] bus.
//!
//! The paper's deployment delegates this to Kafka: surveillance feeds enter
//! the cluster over the network, brokers absorb disconnects, and consumer
//! offsets make redelivery exactly-once. This crate rebuilds that ingestion
//! edge natively on `std::net` (zero external crates, like the rest of the
//! workspace):
//!
//! * [`wire`] — the framed wire protocol. Every message rides in the same
//!   `[len | crc32 | seq | payload]` frame the write-ahead log uses
//!   ([`datacron_durability::framing`]), so a bit flip anywhere on the wire
//!   is detected exactly like a bit flip on disk.
//! * [`backoff`] — capped exponential reconnect backoff with deterministic
//!   seeded jitter: same seed, same delay sequence, every run.
//! * [`client`] — [`client::NetClient`]: connect/read/write timeouts,
//!   heartbeats with dead-peer detection, and **session resume** — records
//!   are stamped with a monotonic session sequence, held in a bounded
//!   unacked window, and replayed after reconnect; the server's cumulative
//!   ACK watermark plus sequence-level dedup makes delivery exactly-once.
//! * [`server`] — [`server::NetServer`]: accepts connections, bridges them
//!   onto a `Topic<PositionReport>`, and maps the topic's
//!   [`datacron_stream::OverflowPolicy`] to wire-level admission control
//!   (`Block` → TCP backpressure, `RejectNew` → typed NACK, `DropOldest`
//!   on a bounded topic refused outright: the wire may never silently drop
//!   an acknowledged record).
//! * [`proxy`] — [`proxy::FaultProxy`]: a wire-level chaos shim driven by
//!   the seeded [`datacron_stream::NetFaultPlan`] schedule — connection
//!   resets, byte truncation, in-frame bit flips, stalls and duplicated
//!   delivery, injected between client and server.
//!
//! Observability flows through [`datacron_obs::ObsRegistry`]
//! (`net.client.reconnects`, `net.client.backoff_ms`, `net.client.rtt_us`,
//! `net.server.sessions`, `net.server.nacks`, `net.frame.crc_errors`), and
//! [`NetHealth`] snapshots the server side for `HealthReport`.

pub mod backoff;
pub mod client;
pub mod proxy;
pub mod server;
pub mod wire;

pub use backoff::{Backoff, BackoffConfig};
pub use client::{ClientConfig, ClientStats, NetClient};
pub use proxy::FaultProxy;
pub use server::{NetServer, ServerConfig, SessionSnapshot};
pub use wire::{NackReason, WireMsg, MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};

use datacron_durability::CodecError;

/// Everything that can go wrong on the wire. Network damage is always
/// surfaced as one of these — never a panic, never silent loss.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket operation failed.
    Io(std::io::Error),
    /// A frame arrived intact (CRC passed) but its payload failed to
    /// decode: the peers disagree about the protocol.
    Codec(CodecError),
    /// A frame failed CRC or framing validation — bytes were damaged in
    /// flight. The connection is unusable past this point.
    CorruptFrame,
    /// The peer closed the connection.
    ConnectionClosed,
    /// A connect/read/write deadline expired mid-operation.
    Timeout,
    /// The peer violated the protocol (unexpected message, bad handshake).
    Protocol(&'static str),
    /// The server refused a record or session with a typed NACK.
    Nacked {
        /// Session sequence the NACK refers to (0 for session-level NACKs).
        seq: u64,
        /// Why the server refused.
        reason: NackReason,
    },
    /// Reconnect attempts were exhausted without reaching the server.
    PeerUnavailable {
        /// Consecutive failed connection attempts.
        attempts: u32,
    },
    /// The bridged topic is bounded with `OverflowPolicy::DropOldest`:
    /// forbidden over the wire, because the server would acknowledge
    /// records it later silently discards.
    LossyTopicPolicy,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Codec(e) => write!(f, "wire payload codec error: {e}"),
            NetError::CorruptFrame => write!(f, "corrupt frame on the wire (CRC mismatch)"),
            NetError::ConnectionClosed => write!(f, "peer closed the connection"),
            NetError::Timeout => write!(f, "network operation timed out"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Nacked { seq, reason } => {
                write!(f, "server refused sequence {seq}: {reason}")
            }
            NetError::PeerUnavailable { attempts } => {
                write!(f, "peer unavailable after {attempts} connection attempts")
            }
            NetError::LossyTopicPolicy => write!(
                f,
                "bounded DropOldest topic cannot back a network server: \
                 acknowledged records must never be silently dropped"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Point-in-time snapshot of the network server, surfaced as the
/// `NetHealth` section of the core `HealthReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetHealth {
    /// Connections currently attached (post-handshake).
    pub active_sessions: u64,
    /// Total handshakes accepted over the server's lifetime.
    pub sessions_started: u64,
    /// Records published onto the bridged topic.
    pub records_ingested: u64,
    /// Records re-delivered after resume and deduplicated by sequence.
    pub duplicates_dropped: u64,
    /// Typed NACK frames sent (admission refusals, sequence gaps).
    pub nacks_sent: u64,
    /// Frames that failed CRC or framing validation on arrival.
    pub crc_errors: u64,
}

impl NetHealth {
    /// True when the wire has seen no damage and no refusals.
    pub fn is_clean(&self) -> bool {
        self.nacks_sent == 0 && self.crc_errors == 0
    }
}

//! The framed wire protocol.
//!
//! Every message travels in the exact frame format the write-ahead log
//! uses on disk ([`datacron_durability::framing`]):
//!
//! ```text
//! frame := len:u32 | crc:u32 | seq:u64 | payload[len - 8]     (little endian)
//! ```
//!
//! with the CRC32 computed over `seq ‖ payload`. A bit flip anywhere on the
//! wire is therefore detected exactly like a bit flip on disk: the frame
//! parses as `Corrupt` and the connection is torn down, after which session
//! resume redelivers everything past the server's ACK watermark.
//!
//! For [`WireMsg::Record`] frames the frame `seq` field carries the
//! client's **session sequence** (the resume cursor); control frames carry
//! a per-connection counter that receivers treat as diagnostic only —
//! contiguity is enforced at the session level, not the frame level,
//! because the fault proxy may legitimately duplicate frames.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use datacron_durability::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use datacron_durability::framing::{self, FrameParse, FRAME_HEADER};
use datacron_durability::{decode_from_slice, encode_to_vec};
use datacron_geo::PositionReport;

use crate::NetError;

/// Wire protocol version carried in the handshake. Mismatches are refused
/// with [`NackReason::BadVersion`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame's declared payload size. A `len` field above
/// this is treated as corruption rather than trusted as an allocation hint.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// How many consecutive mid-frame read timeouts are tolerated before the
/// connection is declared stalled. Each retry waits the socket's read
/// timeout, so the total stall budget is `MID_FRAME_RETRIES × read_timeout`.
const MID_FRAME_RETRIES: u32 = 50;

/// Why a server refused a record or a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The bridged topic is full under `OverflowPolicy::RejectNew`, or has
    /// no consumers left to drain it. Retryable: back off and resume.
    TopicFull,
    /// The server is at its concurrent-session limit. Retryable.
    SessionLimit,
    /// The record's session sequence skipped ahead of the server's
    /// watermark — frames were lost in flight. The client must reconnect
    /// and replay from the acknowledged watermark.
    SequenceGap,
    /// The client spoke an incompatible protocol version. Fatal.
    BadVersion,
}

impl std::fmt::Display for NackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NackReason::TopicFull => write!(f, "topic full"),
            NackReason::SessionLimit => write!(f, "session limit reached"),
            NackReason::SequenceGap => write!(f, "session sequence gap"),
            NackReason::BadVersion => write!(f, "protocol version mismatch"),
        }
    }
}

impl Encode for NackReason {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            NackReason::TopicFull => 1,
            NackReason::SessionLimit => 2,
            NackReason::SequenceGap => 3,
            NackReason::BadVersion => 4,
        });
    }
}

impl Decode for NackReason {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            1 => Ok(NackReason::TopicFull),
            2 => Ok(NackReason::SessionLimit),
            3 => Ok(NackReason::SequenceGap),
            4 => Ok(NackReason::BadVersion),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

/// Every message either peer can put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → server: open or resume a session.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Stable client-chosen session identity; reconnects reuse it.
        session_id: u64,
    },
    /// Client → server: one position report, stamped with the session
    /// sequence (also carried in the frame `seq` field).
    Record {
        /// Monotonic per-session sequence, starting at 0.
        session_seq: u64,
        /// The report itself.
        report: PositionReport,
    },
    /// Client → server: liveness probe; the nonce comes back in
    /// [`WireMsg::HeartbeatAck`] for RTT measurement.
    Heartbeat {
        /// Echo token.
        nonce: u64,
    },
    /// Client → server: the stream is complete; `total` records were sent.
    Finish {
        /// Total session sequence count (= next unused sequence).
        total: u64,
    },
    /// Server → client: handshake accepted; `ack` is the durable
    /// watermark — every sequence below it is already ingested, so the
    /// client prunes its replay window to `ack..`.
    HelloAck {
        /// Echoed session identity.
        session_id: u64,
        /// Next session sequence the server expects.
        ack: u64,
    },
    /// Server → client: cumulative acknowledgement — every sequence below
    /// `up_to` is durably ingested.
    Ack {
        /// Next session sequence the server expects.
        up_to: u64,
    },
    /// Server → client: typed refusal; the connection closes after this.
    Nack {
        /// Session sequence the refusal refers to (0 for session-level).
        seq: u64,
        /// Why.
        reason: NackReason,
    },
    /// Server → client: heartbeat echo.
    HeartbeatAck {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Server → client: the finish marker was accepted at `total`.
    FinishAck {
        /// Echoed total.
        total: u64,
    },
}

impl Encode for WireMsg {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            WireMsg::Hello { version, session_id } => {
                w.put_u8(1);
                w.put_u32(*version);
                w.put_u64(*session_id);
            }
            WireMsg::Record { session_seq, report } => {
                w.put_u8(2);
                w.put_u64(*session_seq);
                report.encode(w);
            }
            WireMsg::Heartbeat { nonce } => {
                w.put_u8(3);
                w.put_u64(*nonce);
            }
            WireMsg::Finish { total } => {
                w.put_u8(4);
                w.put_u64(*total);
            }
            WireMsg::HelloAck { session_id, ack } => {
                w.put_u8(5);
                w.put_u64(*session_id);
                w.put_u64(*ack);
            }
            WireMsg::Ack { up_to } => {
                w.put_u8(6);
                w.put_u64(*up_to);
            }
            WireMsg::Nack { seq, reason } => {
                w.put_u8(7);
                w.put_u64(*seq);
                reason.encode(w);
            }
            WireMsg::HeartbeatAck { nonce } => {
                w.put_u8(8);
                w.put_u64(*nonce);
            }
            WireMsg::FinishAck { total } => {
                w.put_u8(9);
                w.put_u64(*total);
            }
        }
    }
}

impl Decode for WireMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            1 => Ok(WireMsg::Hello { version: r.get_u32()?, session_id: r.get_u64()? }),
            2 => Ok(WireMsg::Record {
                session_seq: r.get_u64()?,
                report: PositionReport::decode(r)?,
            }),
            3 => Ok(WireMsg::Heartbeat { nonce: r.get_u64()? }),
            4 => Ok(WireMsg::Finish { total: r.get_u64()? }),
            5 => Ok(WireMsg::HelloAck { session_id: r.get_u64()?, ack: r.get_u64()? }),
            6 => Ok(WireMsg::Ack { up_to: r.get_u64()? }),
            7 => Ok(WireMsg::Nack { seq: r.get_u64()?, reason: NackReason::decode(r)? }),
            8 => Ok(WireMsg::HeartbeatAck { nonce: r.get_u64()? }),
            9 => Ok(WireMsg::FinishAck { total: r.get_u64()? }),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

/// Encode `msg` into a single CRC-framed buffer.
pub fn encode_msg(wire_seq: u64, msg: &WireMsg) -> Vec<u8> {
    let payload = encode_to_vec(msg);
    let mut frame = Vec::with_capacity(framing::frame_size(payload.len()));
    framing::encode_frame_into(wire_seq, &payload, &mut frame);
    frame
}

/// Write one framed message. Socket write timeouts surface as `Err`.
pub fn write_msg<W: Write>(w: &mut W, wire_seq: u64, msg: &WireMsg) -> io::Result<()> {
    w.write_all(&encode_msg(wire_seq, msg))
}

/// Validate and decode a complete frame buffer into `(frame_seq, msg)`.
pub fn decode_frame(buf: &[u8]) -> Result<(u64, WireMsg), NetError> {
    match framing::parse_frame(buf) {
        FrameParse::Complete(f) if f.size == buf.len() => {
            let msg = decode_from_slice::<WireMsg>(f.payload)?;
            Ok((f.seq, msg))
        }
        _ => Err(NetError::CorruptFrame),
    }
}

/// Read one framed message under the socket's read timeout.
///
/// `Ok(None)` means the timeout elapsed with **zero** bytes read — the
/// stream is still frame-aligned and the caller may simply try again
/// (this is how handlers notice shutdown flags and idle peers). Once a
/// frame has started arriving it is read to completion, tolerating up to
/// [`MID_FRAME_RETRIES`] further timeouts before declaring a stall.
pub fn read_msg(stream: &TcpStream, buf: &mut Vec<u8>) -> Result<Option<(u64, WireMsg)>, NetError> {
    if read_frame_bytes(stream, buf, false)? {
        decode_frame(buf).map(Some)
    } else {
        Ok(None)
    }
}

/// Like [`read_msg`] but non-blocking until the first byte: returns
/// `Ok(None)` immediately when no frame is pending. Used by the client to
/// drain ACKs opportunistically between sends without paying the read
/// timeout on every record.
pub fn try_read_msg(
    stream: &TcpStream,
    buf: &mut Vec<u8>,
) -> Result<Option<(u64, WireMsg)>, NetError> {
    if read_frame_bytes(stream, buf, true)? {
        decode_frame(buf).map(Some)
    } else {
        Ok(None)
    }
}

/// Fill `buf` with exactly one frame. `probe` starts the read
/// non-blocking; blocking mode is always restored before returning.
fn read_frame_bytes(stream: &TcpStream, buf: &mut Vec<u8>, probe: bool) -> Result<bool, NetError> {
    if probe {
        stream.set_nonblocking(true)?;
    }
    let mut nonblocking = probe;
    let result = read_frame_inner(stream, buf, &mut nonblocking);
    if nonblocking {
        // Restore blocking mode even on the error paths; an error here is
        // subordinate to the read result.
        let _ = stream.set_nonblocking(false);
    }
    result
}

fn read_frame_inner(
    stream: &TcpStream,
    buf: &mut Vec<u8>,
    nonblocking: &mut bool,
) -> Result<bool, NetError> {
    let mut r = stream;
    buf.clear();
    buf.resize(FRAME_HEADER, 0);
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(NetError::ConnectionClosed),
            Ok(n) => {
                filled += n;
                if *nonblocking {
                    // A frame has started: finish it under the blocking
                    // read timeout instead of spinning on WouldBlock.
                    stream.set_nonblocking(false)?;
                    *nonblocking = false;
                }
                if filled == FRAME_HEADER && buf.len() == FRAME_HEADER {
                    let payload_len =
                        framing::declared_payload_len(buf).ok_or(NetError::CorruptFrame)?;
                    if payload_len > MAX_PAYLOAD_BYTES {
                        return Err(NetError::CorruptFrame);
                    }
                    buf.resize(FRAME_HEADER + payload_len, 0);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    return Ok(false);
                }
                stalls += 1;
                if stalls > MID_FRAME_RETRIES {
                    return Err(NetError::Timeout);
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp};

    fn sample_report() -> PositionReport {
        PositionReport {
            entity: EntityId::vessel(77),
            ts: Timestamp::from_millis(1_720_000_000_123),
            point: GeoPoint::new(23.5, 37.9),
            altitude_m: 0.0,
            speed_mps: 6.25,
            heading_deg: 131.0,
            vertical_rate_mps: 0.0,
        }
    }

    fn all_variants() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello { version: PROTOCOL_VERSION, session_id: 0xA11CE },
            WireMsg::Record { session_seq: 41, report: sample_report() },
            WireMsg::Heartbeat { nonce: 7 },
            WireMsg::Finish { total: 1000 },
            WireMsg::HelloAck { session_id: 0xA11CE, ack: 17 },
            WireMsg::Ack { up_to: 42 },
            WireMsg::Nack { seq: 9, reason: NackReason::TopicFull },
            WireMsg::Nack { seq: 0, reason: NackReason::BadVersion },
            WireMsg::HeartbeatAck { nonce: 7 },
            WireMsg::FinishAck { total: 1000 },
        ]
    }

    #[test]
    fn every_message_round_trips_through_a_frame() {
        for (i, msg) in all_variants().into_iter().enumerate() {
            let frame = encode_msg(i as u64, &msg);
            let (seq, back) = decode_frame(&frame).expect("frame decodes");
            assert_eq!(seq, i as u64);
            assert_eq!(back, msg, "variant {i} mismatch");
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let msg = WireMsg::Record { session_seq: 3, report: sample_report() };
        let frame = encode_msg(3, &msg);
        // Flipping any bit of the seq+payload region must trip the CRC;
        // flipping len/crc bytes must fail framing or the CRC compare.
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = encode_msg(1, &WireMsg::Ack { up_to: 5 });
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn nack_reasons_round_trip() {
        for reason in [
            NackReason::TopicFull,
            NackReason::SessionLimit,
            NackReason::SequenceGap,
            NackReason::BadVersion,
        ] {
            let frame = encode_msg(0, &WireMsg::Nack { seq: 1, reason });
            let (_, back) = decode_frame(&frame).unwrap();
            assert_eq!(back, WireMsg::Nack { seq: 1, reason });
        }
    }
}

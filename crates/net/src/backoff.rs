//! Capped exponential reconnect backoff with deterministic seeded jitter.
//!
//! Delay for attempt `n` (0-based) is `min(cap, base · 2ⁿ)` scaled by a
//! jitter factor in `[0.5, 1.0]` drawn from a splitmix64 stream seeded at
//! construction. The same seed therefore yields the same delay sequence on
//! every run — chaos drills stay reproducible — while different seeds
//! desynchronise reconnect storms across clients.
//!
//! [`Backoff::reset`] (called on a successful ACK) rewinds the *attempt
//! exponent* only; the jitter stream keeps advancing so a reset never
//! replays past delays.

use std::time::Duration;

/// Tuning for [`Backoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First-attempt delay (before jitter).
    pub base: Duration,
    /// Hard ceiling on any single delay (before jitter; jitter only ever
    /// shortens a delay, so the cap holds after jitter too).
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self { base: Duration::from_millis(10), cap: Duration::from_secs(2), seed: 0 }
    }
}

impl BackoffConfig {
    /// Default policy with an explicit jitter seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// Capped exponential backoff state. See the module docs for the policy.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh backoff at attempt zero.
    pub fn new(cfg: BackoffConfig) -> Self {
        Self { cfg, attempt: 0, rng: cfg.seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The configuration this policy runs under.
    pub fn config(&self) -> BackoffConfig {
        self.cfg
    }

    /// Consecutive failures since the last [`reset`](Self::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Next delay to sleep before retrying; advances the attempt counter
    /// and the jitter stream.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(30);
        let uncapped = self.cfg.base.saturating_mul(1u32 << shift);
        let capped = uncapped.min(self.cfg.cap);
        self.attempt = self.attempt.saturating_add(1);
        let jitter = 0.5 + 0.5 * self.unit();
        capped.mul_f64(jitter)
    }

    /// Rewind the attempt exponent after a success (a received ACK). The
    /// jitter stream is deliberately left running.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Next jitter sample in `[0, 1)` (splitmix64, same generator as the
    /// stream-layer fault harness).
    fn unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_delays() {
        let cfg = BackoffConfig::seeded(42);
        let mut a = Backoff::new(cfg);
        let mut b = Backoff::new(cfg);
        for _ in 0..64 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_grow_then_saturate_at_cap() {
        let cfg = BackoffConfig {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        let mut b = Backoff::new(cfg);
        for i in 0..40 {
            let d = b.next_delay();
            assert!(d <= cfg.cap, "attempt {i}: {d:?} above cap");
            // Jitter floor is 0.5 × the capped exponential value.
            let envelope = cfg.base.saturating_mul(1u32 << i.min(30)).min(cfg.cap);
            assert!(d >= envelope.mul_f64(0.5), "attempt {i}: {d:?} below floor");
        }
    }

    #[test]
    fn reset_rewinds_attempt_but_not_jitter() {
        let mut b = Backoff::new(BackoffConfig::seeded(9));
        let first = b.next_delay();
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
        let after = b.next_delay();
        // Back inside the base envelope…
        assert!(after <= b.config().base);
        assert!(after >= b.config().base.mul_f64(0.5));
        // …but the jitter stream moved on, so an exact replay of the first
        // delay would be a (astronomically unlikely) coincidence.
        let _ = first;
    }
}

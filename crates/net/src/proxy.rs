//! Wire-level fault injection: a TCP shim between client and server.
//!
//! [`FaultProxy`] listens on an ephemeral loopback port and forwards each
//! accepted connection to the real server. The client→server direction is
//! **frame-structured**: the proxy reassembles each `[len|crc|seq|payload]`
//! frame and rolls the seeded [`NetFaultSchedule`] once per frame —
//! forwarding it, duplicating it, flipping one bit inside it, truncating
//! it mid-write, stalling it, or resetting the connection outright. The
//! server→client direction is a transparent byte pipe, so ACKs always
//! describe what the server truly ingested.
//!
//! One schedule spans the proxy's whole lifetime: decisions follow the
//! **global** frame index across every reconnection, which is what makes a
//! chaos drill reproducible per seed even though the number of
//! connections it produces is an outcome, not an input.
//!
//! Bit flips target the `seq`+payload region (bytes 8..) and leave the
//! `len` field alone: the receiver then sees exactly one corrupt frame and
//! tears the connection down immediately, instead of mis-framing the rest
//! of the stream and stalling until its read budget expires.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use datacron_durability::framing::{declared_payload_len, FRAME_HEADER};
use datacron_stream::{NetFault, NetFaultPlan, NetFaultSchedule, NetFaultStats};

use crate::wire::MAX_PAYLOAD_BYTES;

/// A running fault-injection proxy. Point the client at
/// [`local_addr`](Self::local_addr); the proxy forwards to `upstream`.
pub struct FaultProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    schedule: Arc<Mutex<NetFaultSchedule>>,
}

impl FaultProxy {
    /// Start proxying loopback connections to `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let schedule = Arc::new(Mutex::new(NetFaultSchedule::new(plan)));
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let stop = Arc::clone(&stop);
            let schedule = Arc::clone(&schedule);
            let threads = Arc::clone(&threads);
            thread::Builder::new().name("proxy-accept".into()).spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let stop = Arc::clone(&stop);
                            let schedule = Arc::clone(&schedule);
                            let threads2 = Arc::clone(&threads);
                            let spawned = thread::Builder::new()
                                .name("proxy-conn".into())
                                .spawn(move || proxy_conn(client, upstream, stop, schedule, threads2));
                            if let Ok(h) = spawned {
                                threads.lock().unwrap().push(h);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(2)),
                    }
                }
            })?
        };

        Ok(FaultProxy { local_addr, stop, accept: Some(accept), threads, schedule })
    }

    /// Address for the client to dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Fault decisions taken so far (global across connections).
    pub fn stats(&self) -> NetFaultStats {
        self.schedule.lock().unwrap().stats()
    }

    /// Stop accepting and join every pump thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drained: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Kill both halves of the bridged connection.
fn kill(client: &TcpStream, server: &TcpStream) {
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

fn proxy_conn(
    client: TcpStream,
    upstream: SocketAddr,
    stop: Arc<AtomicBool>,
    schedule: Arc<Mutex<NetFaultSchedule>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(50)));

    // Server → client: transparent byte pipe.
    let down = {
        let server = match server.try_clone() {
            Ok(s) => s,
            Err(_) => {
                kill(&client, &server);
                return;
            }
        };
        let client = match client.try_clone() {
            Ok(c) => c,
            Err(_) => {
                kill(&client, &server);
                return;
            }
        };
        let stop = Arc::clone(&stop);
        thread::Builder::new().name("proxy-down".into()).spawn(move || {
            let mut chunk = [0u8; 4096];
            let mut from = &server;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match from.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        if (&client).write_all(&chunk[..n]).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            kill(&client, &server);
        })
    };
    if let Ok(h) = down {
        threads.lock().unwrap().push(h);
    }

    // Client → server: frame-at-a-time with fault decisions.
    let mut buf = Vec::new();
    let mut to = &server;
    loop {
        if !read_frame(&client, &stop, &mut buf) {
            break;
        }
        let fault = schedule.lock().unwrap().next_fault();
        let ok = match fault {
            NetFault::Pass => to.write_all(&buf).is_ok(),
            NetFault::Duplicate => to.write_all(&buf).is_ok() && to.write_all(&buf).is_ok(),
            NetFault::BitFlip { salt } => {
                let mut bad = buf.clone();
                let region = bad.len() - 8;
                let idx = 8 + (salt as usize % region);
                let bit = (salt >> 32) % 8;
                bad[idx] ^= 1 << bit;
                to.write_all(&bad).is_ok()
            }
            NetFault::Truncate { salt } => {
                let keep = 1 + (salt as usize % (buf.len() - 1));
                let _ = to.write_all(&buf[..keep]);
                false
            }
            NetFault::Reset => false,
            NetFault::Stall { ms } => {
                thread::sleep(Duration::from_millis(ms));
                to.write_all(&buf).is_ok()
            }
        };
        if !ok {
            break;
        }
    }
    kill(&client, &server);
}

/// Reassemble one frame from the client, tolerating read-timeout ticks.
/// Returns `false` when the stream ended, garbled, or the proxy stopped.
fn read_frame(client: &TcpStream, stop: &AtomicBool, buf: &mut Vec<u8>) -> bool {
    let mut from = client;
    buf.clear();
    buf.resize(FRAME_HEADER, 0);
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match from.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => {
                filled += n;
                if filled == FRAME_HEADER && buf.len() == FRAME_HEADER {
                    match declared_payload_len(buf) {
                        Some(p) if p <= MAX_PAYLOAD_BYTES => buf.resize(FRAME_HEADER + p, 0),
                        // The client never emits garbled frames; if one
                        // appears the stream is broken — drop the link.
                        _ => return false,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return false,
        }
    }
    true
}

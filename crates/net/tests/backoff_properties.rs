//! Property tests for the reconnect backoff policy (ISSUE satellite):
//! capped exponential backoff with seeded jitter is deterministic per
//! seed, every delay is monotonically bounded by the cap, and a reset
//! (successful ACK) returns the policy to the base envelope.

use std::time::Duration;

use datacron_net::backoff::{Backoff, BackoffConfig};
use proptest::prelude::*;

fn cfg(base_ms: u64, cap_ms: u64, seed: u64) -> BackoffConfig {
    BackoffConfig {
        base: Duration::from_millis(base_ms),
        cap: Duration::from_millis(cap_ms),
        seed,
    }
}

/// The deterministic envelope for attempt `n`: `min(cap, base·2ⁿ)`.
fn envelope(config: BackoffConfig, attempt: u32) -> Duration {
    config.base.saturating_mul(1u32 << attempt.min(30)).min(config.cap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two policies built from the same seed produce the identical delay
    /// sequence — chaos drills replay exactly.
    #[test]
    fn same_seed_is_deterministic(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..50,
        cap_ms in 50u64..5_000,
        steps in 1usize..128,
    ) {
        let config = cfg(base_ms, cap_ms, seed);
        let mut a = Backoff::new(config);
        let mut b = Backoff::new(config);
        for _ in 0..steps {
            prop_assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    /// Different seeds desynchronise: across a few attempts at least one
    /// delay differs (jitter is actually applied per seed).
    #[test]
    fn different_seeds_diverge(seed in 0u64..u64::MAX / 2) {
        let mut a = Backoff::new(cfg(10, 10_000, seed));
        let mut b = Backoff::new(cfg(10, 10_000, seed + 1));
        let diverged = (0..16).any(|_| a.next_delay() != b.next_delay());
        prop_assert!(diverged);
    }

    /// Every delay stays inside `[envelope/2, envelope]` where the
    /// envelope is `min(cap, base·2ⁿ)` — bounded by the cap above and by
    /// the half-jitter floor below, for every attempt.
    #[test]
    fn delays_bounded_by_cap_and_floor(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..50,
        cap_ms in 50u64..5_000,
    ) {
        let config = cfg(base_ms, cap_ms, seed);
        let mut b = Backoff::new(config);
        for attempt in 0..64u32 {
            let d = b.next_delay();
            let env = envelope(config, attempt);
            prop_assert!(d <= config.cap, "attempt {}: {:?} above cap", attempt, d);
            prop_assert!(d <= env, "attempt {}: {:?} above envelope {:?}", attempt, d, env);
            // 1 ns slack: the floor and the delay round to nanoseconds
            // independently, so an exact >= comparison can be off by one.
            let floor = env.mul_f64(0.5).saturating_sub(Duration::from_nanos(1));
            prop_assert!(
                d >= floor,
                "attempt {}: {:?} below jitter floor of {:?}", attempt, d, env
            );
        }
    }

    /// The envelope is monotone non-decreasing until it saturates at the
    /// cap and stays there — delays never regress between failures.
    #[test]
    fn envelope_monotone_until_cap(
        base_ms in 1u64..50,
        cap_ms in 50u64..5_000,
    ) {
        let config = cfg(base_ms, cap_ms, 0);
        let mut prev = Duration::ZERO;
        let mut saturated = false;
        for attempt in 0..64u32 {
            let env = envelope(config, attempt);
            prop_assert!(env >= prev);
            if saturated {
                prop_assert_eq!(env, config.cap);
            }
            saturated = env == config.cap;
            prev = env;
        }
    }

    /// After a reset (a successful ACK) the next delay is back inside the
    /// first-attempt envelope, regardless of how far backoff had climbed.
    #[test]
    fn reset_returns_to_base_envelope(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..50,
        cap_ms in 50u64..5_000,
        climbs in 1u32..40,
    ) {
        let config = cfg(base_ms, cap_ms, seed);
        let mut b = Backoff::new(config);
        for _ in 0..climbs {
            b.next_delay();
        }
        b.reset();
        prop_assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        prop_assert!(d <= config.base);
        prop_assert!(d >= config.base.mul_f64(0.5).saturating_sub(Duration::from_nanos(1)));
    }
}

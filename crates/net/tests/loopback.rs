//! Loopback integration tests for the wire protocol: clean round trips,
//! admission control per overflow policy, dead-peer handling and session
//! resume across a killed connection.

use std::sync::Arc;
use std::time::Duration;

use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp};
use datacron_net::{
    ClientConfig, NetClient, NetError, NetServer, ServerConfig, SessionSnapshot,
};
use datacron_obs::ObsRegistry;
use datacron_stream::{OverflowPolicy, Topic};

fn report(entity: u64, i: u64) -> PositionReport {
    PositionReport {
        entity: EntityId::vessel(entity),
        ts: Timestamp::from_millis(1_700_000_000_000 + i as i64 * 1_000),
        point: GeoPoint::new(-5.0 + i as f64 * 0.01, 40.0 + i as f64 * 0.005),
        altitude_m: 0.0,
        speed_mps: 5.0 + (i % 7) as f64,
        heading_deg: (i * 13 % 360) as f64,
        vertical_rate_mps: 0.0,
    }
}

fn fast_client(addr: impl Into<String>, session_id: u64) -> ClientConfig {
    let mut cfg = ClientConfig::new(addr, session_id);
    cfg.connect_timeout = Duration::from_millis(200);
    cfg.read_timeout = Duration::from_millis(20);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.dead_after = Duration::from_secs(2);
    cfg.backoff.base = Duration::from_millis(2);
    cfg.backoff.cap = Duration::from_millis(50);
    cfg.max_connect_attempts = 100;
    cfg
}

fn fast_server() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(20),
        ack_every: 8,
        ..ServerConfig::default()
    }
}

#[test]
fn clean_stream_arrives_in_order_exactly_once() {
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.in");
    let mut consumer = topic.consumer();
    let obs = ObsRegistry::new();
    let server = NetServer::bind("127.0.0.1:0", fast_server(), Arc::clone(&topic), &obs).unwrap();

    let cfg = fast_client(server.local_addr().to_string(), 7);
    let mut client = NetClient::connect(cfg, &obs).unwrap();
    let sent: Vec<PositionReport> = (0..200).map(|i| report(9, i)).collect();
    for r in &sent {
        client.send(*r).unwrap();
    }
    let stats = client.finish().unwrap();
    assert_eq!(stats.sent, 200);
    assert_eq!(stats.acked, 200);
    assert_eq!(stats.reconnects, 0);

    let got = consumer.drain().unwrap();
    assert_eq!(got, sent, "topic must see the stream in order, exactly once");

    assert_eq!(
        server.session(7),
        Some(SessionSnapshot {
            session_id: 7,
            next_expected: 200,
            duplicates: 0,
            finished: Some(200),
        })
    );
    let health = server.health();
    assert_eq!(health.records_ingested, 200);
    assert!(health.is_clean(), "clean run must see no nacks/crc errors: {health:?}");
    server.shutdown();
}

#[test]
fn bounded_drop_oldest_topic_is_refused_at_bind() {
    let topic: Arc<Topic<PositionReport>> =
        Topic::bounded("net.lossy", 16, OverflowPolicy::DropOldest);
    let obs = ObsRegistry::disabled();
    match NetServer::bind("127.0.0.1:0", fast_server(), topic, &obs) {
        Err(NetError::LossyTopicPolicy) => {}
        other => panic!("expected LossyTopicPolicy, got {other:?}", other = other.err()),
    }
}

#[test]
fn reject_new_topic_nacks_when_full_and_recovers_when_drained() {
    // Capacity 8, no consumer draining while the first burst lands.
    let topic: Arc<Topic<PositionReport>> =
        Topic::bounded("net.reject", 8, OverflowPolicy::RejectNew);
    let mut consumer = topic.consumer();
    let obs = ObsRegistry::new();
    let server = NetServer::bind("127.0.0.1:0", fast_server(), Arc::clone(&topic), &obs).unwrap();

    let cfg = fast_client(server.local_addr().to_string(), 3);
    let mut client = NetClient::connect(cfg, &obs).unwrap();

    // Fill the topic; the 9th record draws a TopicFull NACK, the client
    // reconnects under backoff, and eventually we drain to let it in.
    for i in 0..8 {
        client.send(report(1, i)).unwrap();
    }
    client.flush().unwrap();
    assert_eq!(topic.len(), 8);

    let drainer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let mut total = Vec::new();
        loop {
            match consumer.poll_wait(64, Duration::from_millis(200)) {
                Ok(batch) if batch.is_empty() => break,
                Ok(batch) => total.extend(batch),
                Err(_) => break,
            }
        }
        total
    });

    client.send(report(1, 8)).unwrap();
    let stats = client.finish().unwrap();
    assert_eq!(stats.acked, 9);
    assert!(stats.nacks_seen >= 1, "the full topic must have nacked at least once");

    let drained = drainer.join().unwrap();
    assert_eq!(drained.len(), 9, "every acked record must reach the topic exactly once");
    assert!(server.health().nacks_sent >= 1);
    server.shutdown();
}

#[test]
fn session_resumes_after_connection_kill_with_no_loss_or_duplication() {
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.resume");
    let mut consumer = topic.consumer();
    let obs = ObsRegistry::new();
    let server = NetServer::bind("127.0.0.1:0", fast_server(), Arc::clone(&topic), &obs).unwrap();

    let cfg = fast_client(server.local_addr().to_string(), 11);
    let mut client = NetClient::connect(cfg, &obs).unwrap();

    let sent: Vec<PositionReport> = (0..300).map(|i| report(2, i)).collect();
    for (i, r) in sent.iter().enumerate() {
        if i == 150 {
            // Mid-stream kill: drop the live connection behind the
            // client's back. The next operation must reconnect, resume
            // from the server's watermark and replay the unacked window.
            client.sever_connection();
        }
        client.send(*r).unwrap();
    }
    let stats = client.finish().unwrap();
    assert_eq!(stats.sent, 300);
    assert_eq!(stats.acked, 300);
    assert!(stats.reconnects >= 1, "the kill must have forced a reconnect");

    let got = consumer.drain().unwrap();
    assert_eq!(got, sent, "resume must deliver exactly the uninterrupted stream");

    let snap = server.session(11).unwrap();
    assert_eq!(snap.next_expected, 300);
    assert_eq!(snap.finished, Some(300));
    server.shutdown();
}

#[test]
fn server_survives_shutdown_with_live_client() {
    let topic: Arc<Topic<PositionReport>> = Topic::new("net.stop");
    let _consumer = topic.consumer();
    let obs = ObsRegistry::disabled();
    let server = NetServer::bind("127.0.0.1:0", fast_server(), Arc::clone(&topic), &obs).unwrap();
    let cfg = fast_client(server.local_addr().to_string(), 1);
    let mut client = NetClient::connect(cfg, &obs).unwrap();
    client.send(report(1, 0)).unwrap();
    client.flush().unwrap();
    // Shutdown with the client still attached must join promptly.
    server.shutdown();
}

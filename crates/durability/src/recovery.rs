//! Crash recovery: latest valid checkpoint + contiguous WAL suffix.
//!
//! [`RecoveryManager::recover`] is the read-only half of a restart. It
//! loads the newest checkpoint that validates, replays the write-ahead log
//! and *dedupes by sequence number* — records the checkpoint already
//! covers are discarded — so the caller applies every durable record
//! exactly once: checkpoint state first, then the WAL suffix in order.
//!
//! It never repairs the directory (truncation of a torn tail happens when
//! [`crate::wal::WriteAheadLog::open`] reopens the log for appending), and
//! it never panics on damaged input: every corruption mode maps to a typed
//! [`DurabilityError`].

use std::path::Path;

use crate::checkpoint::CheckpointStore;
use crate::wal::{ReplayIter, WalRecord};
use crate::DurabilityError;

/// Everything a restart needs to reconstruct state.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Newest valid checkpoint: `(covered_seq, payload)`. The checkpoint
    /// captures state after applying WAL records `[0, covered_seq)`.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// WAL records to replay on top of the checkpoint, contiguous from
    /// `covered_seq` (or from 0 without a checkpoint). Records the
    /// checkpoint covers are already deduplicated away.
    pub records: Vec<WalRecord>,
    /// The sequence number after the last durable record; the caller
    /// resumes feeding input from here.
    pub next_seq: u64,
    /// Torn-tail bytes detected at the end of the WAL (the open-for-append
    /// path truncates them).
    pub truncated_tail_bytes: u64,
    /// Checkpoint files skipped as corrupt while finding a valid one.
    pub corrupt_checkpoints: u64,
}

/// Reads a durability directory back into memory on restart.
#[derive(Debug)]
pub struct RecoveryManager;

impl RecoveryManager {
    /// Recovers from `dir`: newest valid checkpoint plus the deduped WAL
    /// suffix.
    ///
    /// Typed failures: [`DurabilityError::CorruptRecord`] for a damaged
    /// sealed segment, [`DurabilityError::SequenceGap`] for a missing
    /// segment or a WAL that starts after the checkpoint's coverage, and
    /// [`DurabilityError::SequenceMismatch`] when the WAL ends before the
    /// checkpoint it is supposed to extend.
    pub fn recover(dir: &Path, retain_checkpoints: usize) -> Result<RecoveryOutcome, DurabilityError> {
        std::fs::create_dir_all(dir)?;
        let mut store = CheckpointStore::open(dir, retain_checkpoints)?;
        let checkpoint = store.latest_valid()?;
        let start = checkpoint.as_ref().map(|(seq, _)| *seq).unwrap_or(0);

        let mut iter = ReplayIter::open(dir)?;
        let mut records = Vec::new();
        for record in &mut iter {
            let record = record?;
            if record.seq < start {
                continue; // covered by the checkpoint — dedupe
            }
            records.push(record);
        }
        let wal_end = iter.next_seq();
        let truncated_tail_bytes = iter.truncated_tail_bytes();

        if let Some(first) = records.first() {
            if first.seq != start {
                // The WAL suffix does not connect to the checkpoint.
                return Err(DurabilityError::SequenceGap { expected: start, found: first.seq });
            }
        } else if wal_end < start {
            // The log ends before the state the checkpoint claims to cover.
            return Err(DurabilityError::SequenceMismatch { wal: wal_end, system: start });
        }

        Ok(RecoveryOutcome {
            checkpoint,
            records,
            next_seq: wal_end.max(start),
            truncated_tail_bytes,
            corrupt_checkpoints: store.corrupt_skipped(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, WalConfig, WriteAheadLog};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "datacron-recovery-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal_config(dir: &Path) -> WalConfig {
        WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Always, segment_max_bytes: 1024 }
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = temp_dir("empty");
        let out = RecoveryManager::recover(&dir, 2).unwrap();
        assert!(out.checkpoint.is_none());
        assert!(out.records.is_empty());
        assert_eq!(out.next_seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_only_recovery_replays_everything() {
        let dir = temp_dir("walonly");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..30u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        drop(wal);
        let out = RecoveryManager::recover(&dir, 2).unwrap();
        assert!(out.checkpoint.is_none());
        assert_eq!(out.records.len(), 30);
        assert_eq!(out.next_seq, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_dedupes_covered_records() {
        let dir = temp_dir("dedupe");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..30u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(20, b"state-after-20").unwrap();
        drop(wal);

        let out = RecoveryManager::recover(&dir, 2).unwrap();
        let (seq, payload) = out.checkpoint.unwrap();
        assert_eq!((seq, payload.as_slice()), (20, b"state-after-20".as_slice()));
        // Only the suffix survives dedupe, contiguous from the checkpoint.
        assert_eq!(out.records.len(), 10);
        assert_eq!(out.records.first().unwrap().seq, 20);
        assert_eq!(out.records.last().unwrap().seq, 29);
        assert_eq!(out.next_seq, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_plus_checkpoint_still_connects() {
        let dir = temp_dir("retention");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..60u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(40, b"state-after-40").unwrap();
        wal.retain_from(40).unwrap();
        drop(wal);

        let out = RecoveryManager::recover(&dir, 2).unwrap();
        assert_eq!(out.checkpoint.as_ref().unwrap().0, 40);
        assert_eq!(out.records.first().unwrap().seq, 40);
        assert_eq!(out.next_seq, 60);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_right_after_checkpoint_has_empty_suffix() {
        let dir = temp_dir("fresh");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..10u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(10, b"all-covered").unwrap();
        drop(wal);

        let out = RecoveryManager::recover(&dir, 2).unwrap();
        assert_eq!(out.checkpoint.as_ref().unwrap().0, 10);
        assert!(out.records.is_empty());
        assert_eq!(out.next_seq, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_and_replays_more() {
        let dir = temp_dir("ckptfall");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..30u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(10, b"old").unwrap();
        let newest = store.save(25, b"new").unwrap();
        drop(wal);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let out = RecoveryManager::recover(&dir, 4).unwrap();
        assert_eq!(out.checkpoint.as_ref().unwrap().0, 10);
        assert_eq!(out.corrupt_checkpoints, 1);
        assert_eq!(out.records.first().unwrap().seq, 10);
        assert_eq!(out.records.len(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_suffix_disconnected_from_checkpoint_is_a_gap() {
        let dir = temp_dir("disconnect");
        let mut wal = WriteAheadLog::open(wal_config(&dir)).unwrap();
        for i in 0..60u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        // Checkpoint at 10, but retention for 40 already ran (operator
        // error / manual deletion): records [10..base) are gone.
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(10, b"old-state").unwrap();
        wal.retain_from(40).unwrap();
        drop(wal);

        let err = RecoveryManager::recover(&dir, 2).unwrap_err();
        assert!(matches!(err, DurabilityError::SequenceGap { .. }), "got {err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

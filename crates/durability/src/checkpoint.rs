//! Checkpoint persistence: atomically written, checksummed snapshots of
//! operator state, each tagged with the WAL sequence number it covers.
//!
//! On-disk layout of `ckpt-{seq:020}` (integers little-endian):
//!
//! ```text
//! MAGIC ("DCCKPT1\n", 8 bytes) seq:u64 len:u64 crc:u32 payload[len]
//! ```
//!
//! A checkpoint at sequence `S` captures the state after applying WAL
//! records `[0, S)`; recovery replays the WAL suffix from `S`. Writes go
//! through a temp file plus `rename`, so a crash mid-checkpoint leaves the
//! previous checkpoint intact. Corrupt or torn checkpoint files are
//! *skipped* (and counted) by [`CheckpointStore::latest_valid`] — a bad
//! newest checkpoint degrades to the one before it, never to a panic.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::DurabilityError;

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"DCCKPT1\n";
const CHECKPOINT_PREFIX: &str = "ckpt-";
const TMP_NAME: &str = "ckpt.tmp";
/// Fixed header bytes before the payload: magic + seq + len + crc.
const HEADER_LEN: usize = 8 + 8 + 8 + 4;

/// Durable store of state checkpoints in a directory (shared with the WAL
/// segments; the file-name prefixes keep them apart).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Keep at most this many checkpoint files (oldest pruned first).
    retain: usize,
    corrupt_skipped: u64,
    saved: u64,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{CHECKPOINT_PREFIX}{seq:020}"))
}

impl CheckpointStore {
    /// Opens a store rooted at `dir`, retaining up to `retain` checkpoints
    /// (minimum 1).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, retain: retain.max(1), corrupt_skipped: 0, saved: 0 })
    }

    /// Lists `(seq, path)` of every checkpoint file, sorted by sequence.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_prefix(CHECKPOINT_PREFIX) else { continue };
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Atomically persists a checkpoint covering WAL records `[0, seq)`,
    /// then prunes beyond the retention count.
    pub fn save(&mut self, seq: u64, payload: &[u8]) -> Result<PathBuf, DurabilityError> {
        let tmp = self.dir.join(TMP_NAME);
        let mut contents = Vec::with_capacity(HEADER_LEN + payload.len());
        contents.extend_from_slice(CHECKPOINT_MAGIC);
        contents.extend_from_slice(&seq.to_le_bytes());
        contents.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        contents.extend_from_slice(&crc32(payload).to_le_bytes());
        contents.extend_from_slice(payload);
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&contents)?;
            f.sync_all()?;
        }
        let path = checkpoint_path(&self.dir, seq);
        fs::rename(&tmp, &path)?;
        // Persist the rename itself (directory metadata).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.saved += 1;
        self.prune()?;
        Ok(path)
    }

    fn prune(&mut self) -> Result<(), DurabilityError> {
        let list = self.list()?;
        if list.len() > self.retain {
            for (_, path) in &list[..list.len() - self.retain] {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Loads the newest checkpoint that validates (magic, declared length,
    /// CRC32). Corrupt candidates are skipped and counted; returns `None`
    /// when no valid checkpoint exists.
    pub fn latest_valid(&mut self) -> Result<Option<(u64, Vec<u8>)>, DurabilityError> {
        let mut list = self.list()?;
        while let Some((seq, path)) = list.pop() {
            match Self::read_valid(&path, seq) {
                Some(payload) => return Ok(Some((seq, payload))),
                None => self.corrupt_skipped += 1,
            }
        }
        Ok(None)
    }

    fn read_valid(path: &Path, expect_seq: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(path).ok()?;
        if bytes.len() < HEADER_LEN || &bytes[..8] != CHECKPOINT_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let len = u64::from_le_bytes(bytes[16..24].try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(bytes[24..28].try_into().ok()?);
        if seq != expect_seq || bytes.len() != HEADER_LEN + len {
            return None;
        }
        let payload = &bytes[HEADER_LEN..];
        if crc32(payload) != crc {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Checkpoint files skipped as corrupt by [`latest_valid`](Self::latest_valid).
    pub fn corrupt_skipped(&self) -> u64 {
        self.corrupt_skipped
    }

    /// Checkpoints saved by this handle.
    pub fn saved(&self) -> u64 {
        self.saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "datacron-ckpt-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_and_load_latest() {
        let dir = temp_dir("basic");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store.latest_valid().unwrap(), None);
        store.save(10, b"state-at-10").unwrap();
        store.save(20, b"state-at-20").unwrap();
        let (seq, payload) = store.latest_valid().unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (20, b"state-at-20".as_slice()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = temp_dir("retain");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for seq in [10, 20, 30, 40] {
            store.save(seq, b"x").unwrap();
        }
        let seqs: Vec<u64> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![30, 40]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(10, b"good-old").unwrap();
        let newest = store.save(20, b"good-new").unwrap();
        // Corrupt the newest: flip a payload bit.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();

        let (seq, payload) = store.latest_valid().unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (10, b"good-old".as_slice()));
        assert_eq!(store.corrupt_skipped(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_checkpoint_is_skipped() {
        let dir = temp_dir("torn");
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(5, b"solid").unwrap();
        let newest = store.save(9, b"will-be-torn-checkpoint-payload").unwrap();
        let len = fs::metadata(&newest).unwrap().len();
        OpenOptions::new().write(true).open(&newest).unwrap().set_len(len - 7).unwrap();

        let (seq, _) = store.latest_valid().unwrap().unwrap();
        assert_eq!(seq, 5);
        assert_eq!(store.corrupt_skipped(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payload_checkpoint_is_valid() {
        let dir = temp_dir("empty");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save(0, b"").unwrap();
        let (seq, payload) = store.latest_valid().unwrap().unwrap();
        assert_eq!((seq, payload.len()), (0, 0));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The shared `[len|crc|seq|payload]` frame format.
//!
//! One frame layout serves two transports: the write-ahead log's segment
//! files ([`wal`](crate::wal)) and `datacron-net`'s TCP wire protocol. A
//! record framed for disk is byte-identical to the same record framed for
//! the wire, so corruption detection, replay tooling and tests share one
//! vocabulary.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame := len:u32 crc:u32 seq:u64 payload[len-8]
//! ```
//!
//! * `len` counts the `seq` field plus the payload, so `len >= 8` always
//!   and the whole frame occupies `8 + len` bytes;
//! * `crc` is CRC32 (IEEE) over the `seq` bytes followed by the payload —
//!   the two length fields are *not* covered, which is why
//!   [`parse_frame`] cannot distinguish a bit-flipped `len` from a
//!   truncated buffer: both surface as [`FrameParse::Incomplete`] or
//!   [`FrameParse::Corrupt`], never as a valid frame.

use crate::crc::Crc32;

/// Bytes of frame header preceding the payload: `len` + `crc` + `seq`.
pub const FRAME_HEADER: usize = 16;

/// Smallest legal value of the `len` field (an empty payload still carries
/// the 8 `seq` bytes).
pub const MIN_LEN_FIELD: u32 = 8;

/// CRC32 over the frame-covered region: the `seq` bytes then the payload.
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(&seq.to_le_bytes());
    hasher.update(payload);
    hasher.finalize()
}

/// Total on-disk / on-wire size of a frame carrying `payload_len` bytes.
pub fn frame_size(payload_len: usize) -> usize {
    FRAME_HEADER + payload_len
}

/// Appends one encoded frame to `out`.
pub fn encode_frame_into(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let len = MIN_LEN_FIELD + payload.len() as u32;
    out.reserve(frame_size(payload.len()));
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one frame into a fresh buffer.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame_size(payload.len()));
    encode_frame_into(seq, payload, &mut out);
    out
}

/// The payload length a frame header announces, before the CRC has been
/// verified. `None` when `prefix` is shorter than the 4-byte `len` field
/// or the field is below [`MIN_LEN_FIELD`] (structurally impossible).
///
/// Streaming readers (the TCP transport) use this to size the read of the
/// frame body; block readers should call [`parse_frame`] directly.
pub fn declared_payload_len(prefix: &[u8]) -> Option<usize> {
    if prefix.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
    if len < MIN_LEN_FIELD {
        return None;
    }
    Some((len - MIN_LEN_FIELD) as usize)
}

/// One successfully parsed frame, borrowing its payload from the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The sequence number the frame carries.
    pub seq: u64,
    /// The framed payload.
    pub payload: &'a [u8],
    /// Total bytes the frame occupies in the input (header + payload).
    pub size: usize,
}

/// Outcome of parsing the frame at the start of a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameParse<'a> {
    /// A structurally valid frame whose CRC matches.
    Complete(Frame<'a>),
    /// The buffer ends before the announced frame does (a torn disk tail,
    /// or a wire read that needs more bytes).
    Incomplete,
    /// The bytes cannot be a valid frame: `len` below the minimum, or a
    /// CRC mismatch.
    Corrupt,
}

/// Parses the frame starting at `bytes[0]`. Trailing bytes after the frame
/// are ignored ([`Frame::size`] says where the next frame starts). Never
/// panics, regardless of input.
pub fn parse_frame(bytes: &[u8]) -> FrameParse<'_> {
    if bytes.len() < FRAME_HEADER {
        return FrameParse::Incomplete;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len < MIN_LEN_FIELD as usize {
        return FrameParse::Corrupt;
    }
    if bytes.len() < 8 + len {
        return FrameParse::Incomplete;
    }
    let seq = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let payload = &bytes[FRAME_HEADER..8 + len];
    if frame_crc(seq, payload) != crc {
        return FrameParse::Corrupt;
    }
    FrameParse::Complete(Frame { seq, payload, size: 8 + len })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The frame layout exactly as `wal.rs` built it before the extraction
    /// of this module — the before/after byte-identity oracle.
    fn legacy_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
        let len = 8u32 + payload.len() as u32;
        let seq_bytes = seq.to_le_bytes();
        let mut hasher = Crc32::new();
        hasher.update(&seq_bytes);
        hasher.update(payload);
        let crc = hasher.finalize();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&seq_bytes);
        frame.extend_from_slice(payload);
        frame
    }

    #[test]
    fn byte_identical_to_pre_extraction_wal_frames() {
        let cases: &[(u64, &[u8])] = &[
            (0, b""),
            (1, b"a"),
            (7, b"datacron"),
            (u64::MAX, b"tail"),
            (123_456_789, &[0u8; 300]),
        ];
        for &(seq, payload) in cases {
            assert_eq!(
                encode_frame(seq, payload),
                legacy_frame(seq, payload),
                "seq={seq} payload={payload:?}: shared framing must be byte-identical"
            );
        }
    }

    #[test]
    fn golden_frame_layout_is_pinned() {
        // seq=7, payload="datacron": len = 8 + 8 = 16, crc32(seq_le ++ payload).
        let frame = encode_frame(7, b"datacron");
        assert_eq!(&frame[0..4], &16u32.to_le_bytes(), "len field");
        assert_eq!(&frame[8..16], &7u64.to_le_bytes(), "seq field");
        assert_eq!(&frame[16..], b"datacron", "payload");
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        assert_eq!(crc, frame_crc(7, b"datacron"));
        assert_eq!(frame.len(), frame_size(8));
    }

    #[test]
    fn roundtrip_with_trailing_bytes() {
        let mut buf = encode_frame(42, b"hello");
        buf.extend_from_slice(b"NEXTFRAMEBYTES");
        match parse_frame(&buf) {
            FrameParse::Complete(f) => {
                assert_eq!(f.seq, 42);
                assert_eq!(f.payload, b"hello");
                assert_eq!(f.size, FRAME_HEADER + 5);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let buf = encode_frame(9, b"");
        match parse_frame(&buf) {
            FrameParse::Complete(f) => {
                assert_eq!(f.seq, 9);
                assert!(f.payload.is_empty());
                assert_eq!(f.size, FRAME_HEADER);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn short_buffers_are_incomplete_not_panics() {
        let buf = encode_frame(3, b"abcdef");
        for cut in 0..buf.len() {
            match parse_frame(&buf[..cut]) {
                FrameParse::Incomplete => {}
                other => panic!("prefix of {cut} bytes: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let clean = encode_frame(11, b"hello-world");
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                match parse_frame(&bad) {
                    FrameParse::Complete(f) => panic!(
                        "bit {bit} of byte {byte} flipped yet frame parsed: seq={} payload={:?}",
                        f.seq, f.payload
                    ),
                    FrameParse::Incomplete | FrameParse::Corrupt => {}
                }
            }
        }
    }

    #[test]
    fn declared_payload_len_reads_the_header() {
        let buf = encode_frame(5, b"xyz");
        assert_eq!(declared_payload_len(&buf), Some(3));
        assert_eq!(declared_payload_len(&buf[..4]), Some(3));
        assert_eq!(declared_payload_len(&buf[..3]), None, "len field incomplete");
        assert_eq!(declared_payload_len(&0u32.to_le_bytes()), None, "len below minimum");
    }
}

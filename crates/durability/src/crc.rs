//! CRC32 (IEEE 802.3 polynomial, reflected) — the frame checksum of the
//! write-ahead log and the checkpoint files.
//!
//! Table-driven, built at compile time. Matches the ubiquitous `crc32`
//! used by zlib/Kafka so on-disk artifacts are externally checkable.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 hasher, for checksumming a frame from multiple slices
/// without concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"segmented write-ahead log frame payload";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"position report payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference);
            }
        }
    }
}

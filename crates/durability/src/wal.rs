//! Segmented append-only write-ahead log.
//!
//! The durable substrate the paper delegates to Kafka: every ingest record
//! is framed, checksummed and appended to a segment file *before* it is
//! processed, so a crashed run can be replayed deterministically.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! wal-{first_seq:020}.seg := MAGIC ("DCWAL01\n", 8 bytes) frame*
//! frame := len:u32 crc:u32 seq:u64 payload[len-8]
//! ```
//!
//! `len` counts the `seq` field plus the payload; `crc` is CRC32 over the
//! `seq` bytes and the payload. Sequence numbers are assigned by the log
//! and are contiguous across segments; a segment file's name records the
//! sequence number of its first frame.
//!
//! Failure semantics:
//!
//! * a partial/garbled frame at the **end of the last segment** is a torn
//!   write from the crash — [`WriteAheadLog::open`] truncates it away and
//!   [`ReplayIter`] stops in front of it (both count the bytes);
//! * damage anywhere **before** the tail (bit flips, truncated sealed
//!   segments) is real corruption — surfaced as a typed
//!   [`DurabilityError::CorruptRecord`], never a panic;
//! * a gap in the sequence numbering (e.g. a deleted middle segment) is a
//!   typed [`DurabilityError::SequenceGap`].

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::framing::{self, FrameParse};
use crate::DurabilityError;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DCWAL01\n";
/// File-name prefix/suffix of segment files.
const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".seg";

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — maximal durability, minimal throughput.
    Always,
    /// `fsync` once every `n` appended records.
    EveryN(u64),
    /// `fsync` when at least this many milliseconds elapsed since the last.
    IntervalMs(u64),
    /// Never `fsync` explicitly; rely on the OS page cache.
    Never,
}

/// Write-ahead-log configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files.
    pub dir: PathBuf,
    /// Flush policy.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_max_bytes: u64,
}

impl WalConfig {
    /// A config rooted at `dir` with batched fsync (every 64 records) and
    /// 8 MiB segments.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            segment_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Write-ahead-log counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended in this process.
    pub appended: u64,
    /// Explicit `fsync` calls issued.
    pub synced: u64,
    /// Segments created (including the initial one).
    pub segments_created: u64,
    /// Segments deleted by retention.
    pub segments_retired: u64,
    /// Torn-tail bytes truncated when the log was opened.
    pub truncated_tail_bytes: u64,
    /// Payload+frame bytes appended in this process.
    pub bytes_written: u64,
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log-assigned sequence number.
    pub seq: u64,
    /// The framed payload.
    pub payload: Vec<u8>,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}"))
}

/// Lists `(first_seq, path)` of every segment in `dir`, sorted by sequence.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix(SEGMENT_PREFIX).and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        match stem.parse::<u64>() {
            Ok(first_seq) => out.push((first_seq, entry.path())),
            Err(_) => return Err(DurabilityError::BadSegmentName(entry.path())),
        }
    }
    out.sort();
    Ok(out)
}

struct LoadedSegment {
    path: PathBuf,
    bytes: Vec<u8>,
    /// Parse position within `bytes`.
    pos: usize,
    first_seq: u64,
    is_last: bool,
}

/// Streaming replay over every frame of a WAL directory, in sequence order.
///
/// Yields `Result<WalRecord, DurabilityError>`; a torn tail on the last
/// segment ends iteration cleanly (see [`ReplayIter::truncated_tail_bytes`]),
/// while corruption anywhere else yields a typed error and stops.
pub struct ReplayIter {
    /// Remaining segments, reversed so `pop` walks forward.
    segments: Vec<(u64, PathBuf)>,
    current: Option<LoadedSegment>,
    /// Sequence number the next frame must carry.
    expected: u64,
    torn_tail_bytes: u64,
    /// `(path, valid_len, first_seq)` of the last segment once scanned.
    last_segment_valid: Option<(PathBuf, u64, u64)>,
    finished: bool,
}

impl ReplayIter {
    /// Opens a replay over the segments in `dir`. An empty/missing
    /// directory replays nothing.
    pub fn open(dir: &Path) -> Result<Self, DurabilityError> {
        let mut segments = list_segments(dir)?;
        let expected = segments.first().map(|(s, _)| *s).unwrap_or(0);
        segments.reverse();
        Ok(Self {
            segments,
            current: None,
            expected,
            torn_tail_bytes: 0,
            last_segment_valid: None,
            finished: false,
        })
    }

    /// The sequence number after the last valid record (0 for an empty log
    /// starting at sequence 0).
    pub fn next_seq(&self) -> u64 {
        self.expected
    }

    /// Bytes of torn tail encountered on the last segment (0 until the
    /// iterator reaches the tail).
    pub fn truncated_tail_bytes(&self) -> u64 {
        self.torn_tail_bytes
    }

    /// After exhaustion: the last segment's path, the byte length of its
    /// valid prefix, and its first sequence number. `None` if the
    /// directory had no segments.
    pub fn last_segment(&self) -> Option<&(PathBuf, u64, u64)> {
        self.last_segment_valid.as_ref()
    }

    fn fail(&mut self, err: DurabilityError) -> Option<Result<WalRecord, DurabilityError>> {
        self.finished = true;
        Some(Err(err))
    }

    /// Handles a bad region at parse position `pos` of the current segment:
    /// torn tail if it is the last segment, corruption otherwise.
    fn bad_region(&mut self) -> Option<Result<WalRecord, DurabilityError>> {
        let seg = self.current.take().expect("current segment");
        if seg.is_last {
            self.torn_tail_bytes += (seg.bytes.len() - seg.pos) as u64;
            self.last_segment_valid = Some((seg.path, seg.pos as u64, seg.first_seq));
            self.finished = true;
            None
        } else {
            self.fail(DurabilityError::CorruptRecord { segment: seg.path, offset: seg.pos as u64 })
        }
    }
}

impl Iterator for ReplayIter {
    type Item = Result<WalRecord, DurabilityError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.finished {
                return None;
            }
            if self.current.is_none() {
                let Some((first_seq, path)) = self.segments.pop() else {
                    self.finished = true;
                    return None;
                };
                if first_seq != self.expected {
                    return self.fail(DurabilityError::SequenceGap {
                        expected: self.expected,
                        found: first_seq,
                    });
                }
                let bytes = match fs::read(&path) {
                    Ok(b) => b,
                    Err(e) => return self.fail(DurabilityError::Io(e)),
                };
                let is_last = self.segments.is_empty();
                let mut seg = LoadedSegment { path, bytes, pos: 0, first_seq, is_last };
                // Validate the magic header.
                if seg.bytes.len() < SEGMENT_MAGIC.len() || &seg.bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                    self.current = Some(seg);
                    // A headerless last segment is treated as fully torn.
                    if let Some(item) = self.bad_region() {
                        return Some(item);
                    }
                    continue;
                }
                seg.pos = SEGMENT_MAGIC.len();
                self.current = Some(seg);
            }

            let seg = self.current.as_mut().expect("current segment set above");
            if seg.pos == seg.bytes.len() {
                // Clean end of segment.
                if seg.is_last {
                    let seg = self.current.take().expect("current");
                    self.last_segment_valid = Some((seg.path, seg.pos as u64, seg.first_seq));
                    self.finished = true;
                    return None;
                }
                self.current = None;
                continue;
            }
            // Parse one frame via the shared framing module. A torn or
            // bit-flipped frame is a bad region (torn tail on the last
            // segment, typed corruption elsewhere) exactly as before.
            let at = seg.pos;
            let (seq, payload, size) = match framing::parse_frame(&seg.bytes[at..]) {
                FrameParse::Complete(f) => (f.seq, f.payload.to_vec(), f.size),
                FrameParse::Incomplete | FrameParse::Corrupt => {
                    if let Some(item) = self.bad_region() {
                        return Some(item);
                    }
                    return None;
                }
            };
            if seq != self.expected {
                return self.fail(DurabilityError::SequenceGap { expected: self.expected, found: seq });
            }
            seg.pos = at + size;
            self.expected += 1;
            return Some(Ok(WalRecord { seq, payload }));
        }
    }
}

/// The append side of the log.
#[derive(Debug)]
pub struct WriteAheadLog {
    config: WalConfig,
    file: File,
    active_path: PathBuf,
    active_len: u64,
    next_seq: u64,
    unsynced: u64,
    last_sync: Instant,
    stats: WalStats,
}

impl WriteAheadLog {
    /// Opens (or creates) the log in `config.dir`, validating every
    /// retained segment and truncating a torn tail on the last one.
    ///
    /// Fails with a typed error on real corruption (a damaged sealed
    /// segment or a sequence gap) instead of silently losing records.
    pub fn open(config: WalConfig) -> Result<Self, DurabilityError> {
        fs::create_dir_all(&config.dir)?;
        let mut stats = WalStats::default();

        let mut iter = ReplayIter::open(&config.dir)?;
        for record in &mut iter {
            record?; // propagate CorruptRecord / SequenceGap
        }
        let next_seq = iter.next_seq();
        let torn = iter.truncated_tail_bytes();
        stats.truncated_tail_bytes = torn;

        let (active_path, active_len) = match iter.last_segment().cloned() {
            Some((path, valid_len, _first_seq)) => {
                if torn > 0 {
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(valid_len)?;
                    f.sync_all()?;
                }
                if valid_len < SEGMENT_MAGIC.len() as u64 {
                    // The whole segment (header included) was torn: rewrite
                    // a clean header so the file parses next time.
                    let mut f = OpenOptions::new().write(true).truncate(true).open(&path)?;
                    f.write_all(SEGMENT_MAGIC)?;
                    f.sync_all()?;
                    (path, SEGMENT_MAGIC.len() as u64)
                } else {
                    (path, valid_len)
                }
            }
            None => {
                let path = segment_path(&config.dir, next_seq);
                let mut f = File::create(&path)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.sync_all()?;
                stats.segments_created += 1;
                (path, SEGMENT_MAGIC.len() as u64)
            }
        };

        let file = OpenOptions::new().append(true).open(&active_path)?;
        Ok(Self {
            config,
            file,
            active_path,
            active_len,
            next_seq,
            unsynced: 0,
            last_sync: Instant::now(),
            stats,
        })
    }

    /// The sequence number the next [`append`](Self::append) will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Counters for this process's log handle.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends one record, returning its assigned sequence number. The
    /// record is on disk (modulo the fsync policy) when this returns.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, DurabilityError> {
        if self.active_len >= self.config.segment_max_bytes {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let frame = framing::encode_frame(seq, payload);
        self.file.write_all(&frame)?;

        self.active_len += frame.len() as u64;
        self.next_seq += 1;
        self.unsynced += 1;
        self.stats.appended += 1;
        self.stats.bytes_written += frame.len() as u64;
        self.maybe_sync()?;
        Ok(seq)
    }

    /// Forces an `fsync` of the active segment.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.file.sync_data()?;
        self.stats.synced += 1;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn maybe_sync(&mut self) -> Result<(), DurabilityError> {
        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::IntervalMs(ms) => self.last_sync.elapsed() >= Duration::from_millis(ms),
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Seals the active segment and starts a new one at the current
    /// sequence number.
    fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.file.sync_data()?;
        self.stats.synced += 1;
        let path = segment_path(&self.config.dir, self.next_seq);
        let mut f = File::create(&path)?;
        f.write_all(SEGMENT_MAGIC)?;
        f.sync_all()?;
        self.file = OpenOptions::new().append(true).open(&path)?;
        self.active_path = path;
        self.active_len = SEGMENT_MAGIC.len() as u64;
        self.stats.segments_created += 1;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Retention: deletes sealed segments entirely covered by a checkpoint
    /// at `seq` (every record below `seq` is durable elsewhere). The
    /// active segment is never deleted. Returns the number removed.
    pub fn retain_from(&mut self, seq: u64) -> Result<usize, DurabilityError> {
        let segments = list_segments(&self.config.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if *path == self.active_path {
                break;
            }
            // The segment's records all precede `next_first`; it is
            // disposable iff the checkpoint covers them all.
            if next_first <= seq {
                fs::remove_file(path)?;
                removed += 1;
            } else {
                break;
            }
        }
        self.stats.segments_retired += removed as u64;
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "datacron-wal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(dir: &Path) -> WalConfig {
        WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Always, segment_max_bytes: 8 * 1024 * 1024 }
    }

    fn replay_all(dir: &Path) -> Vec<WalRecord> {
        ReplayIter::open(dir).unwrap().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut wal = WriteAheadLog::open(config(&dir)).unwrap();
        for i in 0..50u64 {
            let seq = wal.append(format!("record-{i}").as_bytes()).unwrap();
            assert_eq!(seq, i);
        }
        drop(wal);
        let records = replay_all(&dir);
        assert_eq!(records.len(), 50);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.payload, format!("record-{i}").as_bytes());
        }
        // Reopen resumes the numbering.
        let wal = WriteAheadLog::open(config(&dir)).unwrap();
        assert_eq!(wal.next_seq(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_retention() {
        let dir = temp_dir("rotate");
        let mut cfg = config(&dir);
        cfg.segment_max_bytes = 256; // force frequent rotation
        let mut wal = WriteAheadLog::open(cfg).unwrap();
        for i in 0..100u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 3, "expected several segments, got {}", segments.len());
        assert!(wal.stats().segments_created as usize >= segments.len());

        // Replay still sees everything, in order.
        let records = replay_all(&dir);
        assert_eq!(records.len(), 100);

        // Retain from seq 50: sealed segments fully below 50 disappear,
        // replay of the suffix still works and starts at the segment base.
        let removed = wal.retain_from(50).unwrap();
        assert!(removed > 0);
        let remaining = list_segments(&dir).unwrap();
        assert!(remaining[0].0 <= 50, "first retained segment must cover seq 50");
        let records = replay_all(&dir);
        assert_eq!(records.last().unwrap().seq, 99);
        assert!(records.first().unwrap().seq <= 50);
        // Active segment never deleted even with a huge retention point.
        wal.retain_from(u64::MAX).unwrap();
        assert!(!list_segments(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let mut wal = WriteAheadLog::open(config(&dir)).unwrap();
        for i in 0..10u64 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        drop(wal);
        // Tear the tail: chop 3 bytes off the (only) segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();

        // Replay tolerates it: the last record is lost, the rest survive.
        let mut iter = ReplayIter::open(&dir).unwrap();
        let survivors: Vec<_> = (&mut iter).map(|r| r.unwrap()).collect();
        assert_eq!(survivors.len(), 9);
        assert!(iter.truncated_tail_bytes() > 0);

        // Open truncates and appends continue from seq 9.
        let mut wal = WriteAheadLog::open(config(&dir)).unwrap();
        assert_eq!(wal.next_seq(), 9);
        assert!(wal.stats().truncated_tail_bytes > 0);
        wal.append(b"after-recovery").unwrap();
        drop(wal);
        let records = replay_all(&dir);
        assert_eq!(records.len(), 10);
        assert_eq!(records[9].payload, b"after-recovery");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_a_typed_error() {
        let dir = temp_dir("corrupt");
        let mut cfg = config(&dir);
        cfg.segment_max_bytes = 128;
        let mut wal = WriteAheadLog::open(cfg.clone()).unwrap();
        for i in 0..60u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Flip one bit inside the payload region of the first (sealed) segment.
        let path = &segments[0].1;
        let mut bytes = fs::read(path).unwrap();
        let at = bytes.len() - 4;
        bytes[at] ^= 0x10;
        fs::write(path, &bytes).unwrap();

        let err = ReplayIter::open(&dir)
            .unwrap()
            .find_map(|r| r.err())
            .expect("corruption must surface");
        assert!(matches!(err, DurabilityError::CorruptRecord { .. }), "got {err:?}");
        // Opening for append refuses too, with the same typed error.
        let err = WriteAheadLog::open(cfg).unwrap_err();
        assert!(matches!(err, DurabilityError::CorruptRecord { .. }), "got {err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_middle_segment_is_a_sequence_gap() {
        let dir = temp_dir("gap");
        let mut cfg = config(&dir);
        cfg.segment_max_bytes = 128;
        let mut wal = WriteAheadLog::open(cfg).unwrap();
        for i in 0..60u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        fs::remove_file(&segments[1].1).unwrap();

        let err = ReplayIter::open(&dir)
            .unwrap()
            .find_map(|r| r.err())
            .expect("gap must surface");
        assert!(matches!(err, DurabilityError::SequenceGap { .. }), "got {err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_smoke() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(8),
            FsyncPolicy::IntervalMs(0),
            FsyncPolicy::Never,
        ] {
            let dir = temp_dir("fsync");
            let mut cfg = config(&dir);
            cfg.fsync = policy;
            let mut wal = WriteAheadLog::open(cfg).unwrap();
            for i in 0..20u64 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            match policy {
                FsyncPolicy::Always => assert!(wal.stats().synced >= 20),
                FsyncPolicy::EveryN(8) => assert!(wal.stats().synced >= 2),
                FsyncPolicy::Never => assert_eq!(wal.stats().synced, 0),
                _ => {}
            }
            drop(wal);
            assert_eq!(replay_all(&dir).len(), 20);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn empty_payloads_and_large_payloads() {
        let dir = temp_dir("sizes");
        let mut wal = WriteAheadLog::open(config(&dir)).unwrap();
        wal.append(b"").unwrap();
        let big = vec![0xABu8; 100_000];
        wal.append(&big).unwrap();
        drop(wal);
        let records = replay_all(&dir);
        assert_eq!(records[0].payload, b"");
        assert_eq!(records[1].payload, big);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Compact binary codec for ingest records and operator state snapshots.
//!
//! Hand-rolled (the workspace is zero-external-crate) and deterministic:
//! the same value always encodes to the same bytes, which is what makes
//! checkpoint payloads comparable bit-for-bit across runs. Conventions:
//!
//! * fixed-width integers are little-endian;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so `NaN`
//!   round-trips exactly;
//! * `Option<T>` is a 1-byte presence tag (0/1) followed by the value;
//! * sequences are a `u64` length followed by the items;
//! * strings are a `u64` byte length followed by UTF-8 bytes;
//! * enums are a 1-byte variant tag in declaration order.
//!
//! Decoding never panics: every malformed input maps to a [`CodecError`].

use std::sync::Arc;

use datacron_geo::{EntityId, GeoPoint, MovingKind, PositionReport, Timestamp};
use datacron_linkdisc::links::LinkTarget;
use datacron_linkdisc::{Link, LinkStats, Relation};
use datacron_rdf::{Literal, Term, Triple};
use datacron_stream::bus::TopicStats;
use datacron_stream::cleaning::{CleanerState, CleaningStats};
use datacron_stream::{AreaEvent, AreaEventKind, CleaningOutcome};
use datacron_synopses::generator::SynopsesState;
use datacron_synopses::{CriticalKind, CriticalPoint};

/// A malformed encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no matching variant.
    InvalidTag(u8),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoding truncated"),
            CodecError::InvalidTag(t) => write!(f, "invalid enum tag {t}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Clears the buffer, keeping its allocation (for hot-path reuse).
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its bit pattern (NaN-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over an encoded byte slice for decoding.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is an invalid tag.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    /// Reads a length-prefixed sequence length, bounds-checked against the
    /// remaining input so corrupt lengths fail fast instead of allocating.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Fails with [`CodecError::TrailingBytes`] unless the input is spent.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Serialises a value into a [`ByteWriter`].
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
}

/// Deserialises a value from a [`ByteReader`].
pub trait Decode: Sized {
    /// Reads one value, advancing the reader.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

/// Encodes `value` into a fresh buffer.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Encodes `value` into `buf`, replacing its contents but keeping its
/// allocation — the hot-path variant of [`encode_to_vec`] for callers
/// that recycle encode buffers (e.g. the cold-state spill tier, which
/// round-trips similarly-sized blobs millions of times).
pub fn encode_into<T: Encode>(value: &T, buf: &mut Vec<u8>) {
    buf.clear();
    let mut w = ByteWriter {
        buf: std::mem::take(buf),
    };
    value.encode(&mut w);
    *buf = w.into_bytes();
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Decodes a length-prefixed sequence into `out`, replacing its contents
/// but keeping its allocation — the hot-path counterpart of
/// `Vec::<T>::decode` for callers that recycle decode targets. On error,
/// `out` holds the prefix decoded so far; callers must treat it as
/// garbage.
pub fn decode_vec_into<T: Decode>(
    r: &mut ByteReader<'_>,
    out: &mut Vec<T>,
) -> Result<(), CodecError> {
    let len = r.get_len()?;
    out.clear();
    out.reserve(len.min(r.remaining()));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(())
}

/// Decodes a [`SynopsesState`] into `out`, reusing its window allocation
/// (same wire format as the `Decode` impl). On error, `out` is partially
/// overwritten and must be treated as garbage.
pub fn decode_synopses_state_into(
    r: &mut ByteReader<'_>,
    out: &mut SynopsesState,
) -> Result<(), CodecError> {
    decode_vec_into(r, &mut out.window)?;
    out.last = Decode::decode(r)?;
    out.started = r.get_bool()?;
    out.stop_candidate = Decode::decode(r)?;
    out.in_stop = r.get_bool()?;
    out.slow_candidate = Decode::decode(r)?;
    out.in_slow = r.get_bool()?;
    out.airborne = r.get_bool()?;
    out.vertical_regime = r.get_u8()? as i8;
    out.last_heading_emit = Decode::decode(r)?;
    out.last_speed_emit = Decode::decode(r)?;
    out.anchor = Decode::decode(r)?;
    out.seen = r.get_u64()?;
    out.emitted = r.get_u64()?;
    Ok(())
}

// --- primitives ---

macro_rules! impl_codec_int {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    };
}

impl_codec_int!(u8, put_u8, get_u8);
impl_codec_int!(u32, put_u32, get_u32);
impl_codec_int!(u64, put_u64, get_u64);
impl_codec_int!(i64, put_i64, get_i64);
impl_codec_int!(f64, put_f64, get_f64);
impl_codec_int!(bool, put_bool, get_bool);

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_str()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// --- geo ---

impl Encode for Timestamp {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i64(self.0);
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Timestamp(r.get_i64()?))
    }
}

impl Encode for GeoPoint {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.lon);
        w.put_f64(self.lat);
    }
}

impl Decode for GeoPoint {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let lon = r.get_f64()?;
        let lat = r.get_f64()?;
        Ok(GeoPoint::new(lon, lat))
    }
}

impl Encode for MovingKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            MovingKind::Vessel => 0,
            MovingKind::Aircraft => 1,
        });
    }
}

impl Decode for MovingKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(MovingKind::Vessel),
            1 => Ok(MovingKind::Aircraft),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for EntityId {
    fn encode(&self, w: &mut ByteWriter) {
        self.kind.encode(w);
        w.put_u64(self.id);
    }
}

impl Decode for EntityId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let kind = MovingKind::decode(r)?;
        let id = r.get_u64()?;
        Ok(EntityId { kind, id })
    }
}

impl Encode for PositionReport {
    fn encode(&self, w: &mut ByteWriter) {
        self.entity.encode(w);
        self.ts.encode(w);
        self.point.encode(w);
        w.put_f64(self.altitude_m);
        w.put_f64(self.speed_mps);
        w.put_f64(self.heading_deg);
        w.put_f64(self.vertical_rate_mps);
    }
}

impl Decode for PositionReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PositionReport {
            entity: EntityId::decode(r)?,
            ts: Timestamp::decode(r)?,
            point: GeoPoint::decode(r)?,
            altitude_m: r.get_f64()?,
            speed_mps: r.get_f64()?,
            heading_deg: r.get_f64()?,
            vertical_rate_mps: r.get_f64()?,
        })
    }
}

// --- stream: cleaning, bus, low-level events ---

impl Encode for CleaningOutcome {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            CleaningOutcome::Accepted => 0,
            CleaningOutcome::Implausible => 1,
            CleaningOutcome::Duplicate => 2,
            CleaningOutcome::OutOfOrder => 3,
            CleaningOutcome::Teleport => 4,
        });
    }
}

impl Decode for CleaningOutcome {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(CleaningOutcome::Accepted),
            1 => Ok(CleaningOutcome::Implausible),
            2 => Ok(CleaningOutcome::Duplicate),
            3 => Ok(CleaningOutcome::OutOfOrder),
            4 => Ok(CleaningOutcome::Teleport),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for CleaningStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.accepted);
        w.put_u64(self.implausible);
        w.put_u64(self.duplicates);
        w.put_u64(self.out_of_order);
        w.put_u64(self.teleports);
    }
}

impl Decode for CleaningStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CleaningStats {
            accepted: r.get_u64()?,
            implausible: r.get_u64()?,
            duplicates: r.get_u64()?,
            out_of_order: r.get_u64()?,
            teleports: r.get_u64()?,
        })
    }
}

impl Encode for CleanerState {
    fn encode(&self, w: &mut ByteWriter) {
        self.last.encode(w);
        self.stats.encode(w);
    }
}

impl Decode for CleanerState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CleanerState {
            last: Option::<PositionReport>::decode(r)?,
            stats: CleaningStats::decode(r)?,
        })
    }
}

impl Encode for TopicStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.published);
        w.put_u64(self.rejected);
        w.put_u64(self.dropped);
        w.put_u64(self.reclaimed);
        w.put_u64(self.blocked);
        w.put_u64(self.consumed);
        w.put_u64(self.lag_signals);
    }
}

impl Decode for TopicStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TopicStats {
            published: r.get_u64()?,
            rejected: r.get_u64()?,
            dropped: r.get_u64()?,
            reclaimed: r.get_u64()?,
            blocked: r.get_u64()?,
            consumed: r.get_u64()?,
            lag_signals: r.get_u64()?,
        })
    }
}

impl Encode for AreaEventKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            AreaEventKind::Entered => 0,
            AreaEventKind::Exited => 1,
        });
    }
}

impl Decode for AreaEventKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(AreaEventKind::Entered),
            1 => Ok(AreaEventKind::Exited),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for AreaEvent {
    fn encode(&self, w: &mut ByteWriter) {
        self.entity.encode(w);
        self.ts.encode(w);
        w.put_u64(self.area_id);
        self.kind.encode(w);
        self.point.encode(w);
    }
}

impl Decode for AreaEvent {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(AreaEvent {
            entity: EntityId::decode(r)?,
            ts: Timestamp::decode(r)?,
            area_id: r.get_u64()?,
            kind: AreaEventKind::decode(r)?,
            point: GeoPoint::decode(r)?,
        })
    }
}

// --- synopses ---

impl Encode for CriticalKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            CriticalKind::Start => w.put_u8(0),
            CriticalKind::End => w.put_u8(1),
            CriticalKind::StopStart => w.put_u8(2),
            CriticalKind::StopEnd => w.put_u8(3),
            CriticalKind::SlowMotionStart => w.put_u8(4),
            CriticalKind::SlowMotionEnd => w.put_u8(5),
            CriticalKind::ChangeInHeading { delta_deg } => {
                w.put_u8(6);
                w.put_f64(*delta_deg);
            }
            CriticalKind::SpeedChange { ratio } => {
                w.put_u8(7);
                w.put_f64(*ratio);
            }
            CriticalKind::GapStart => w.put_u8(8),
            CriticalKind::GapEnd { silence_s } => {
                w.put_u8(9);
                w.put_f64(*silence_s);
            }
            CriticalKind::ChangeInAltitude { rate_mps } => {
                w.put_u8(10);
                w.put_f64(*rate_mps);
            }
            CriticalKind::Takeoff => w.put_u8(11),
            CriticalKind::Landing => w.put_u8(12),
        }
    }
}

impl Decode for CriticalKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(CriticalKind::Start),
            1 => Ok(CriticalKind::End),
            2 => Ok(CriticalKind::StopStart),
            3 => Ok(CriticalKind::StopEnd),
            4 => Ok(CriticalKind::SlowMotionStart),
            5 => Ok(CriticalKind::SlowMotionEnd),
            6 => Ok(CriticalKind::ChangeInHeading { delta_deg: r.get_f64()? }),
            7 => Ok(CriticalKind::SpeedChange { ratio: r.get_f64()? }),
            8 => Ok(CriticalKind::GapStart),
            9 => Ok(CriticalKind::GapEnd { silence_s: r.get_f64()? }),
            10 => Ok(CriticalKind::ChangeInAltitude { rate_mps: r.get_f64()? }),
            11 => Ok(CriticalKind::Takeoff),
            12 => Ok(CriticalKind::Landing),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for CriticalPoint {
    fn encode(&self, w: &mut ByteWriter) {
        self.report.encode(w);
        self.kind.encode(w);
    }
}

impl Decode for CriticalPoint {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let report = PositionReport::decode(r)?;
        let kind = CriticalKind::decode(r)?;
        Ok(CriticalPoint { report, kind })
    }
}

impl Encode for SynopsesState {
    fn encode(&self, w: &mut ByteWriter) {
        self.window.encode(w);
        self.last.encode(w);
        w.put_bool(self.started);
        self.stop_candidate.encode(w);
        w.put_bool(self.in_stop);
        self.slow_candidate.encode(w);
        w.put_bool(self.in_slow);
        w.put_bool(self.airborne);
        w.put_u8(self.vertical_regime as u8);
        self.last_heading_emit.encode(w);
        self.last_speed_emit.encode(w);
        self.anchor.encode(w);
        w.put_u64(self.seen);
        w.put_u64(self.emitted);
    }
}

impl Decode for SynopsesState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut out = SynopsesState {
            window: Vec::new(),
            last: None,
            started: false,
            stop_candidate: None,
            in_stop: false,
            slow_candidate: None,
            in_slow: false,
            airborne: false,
            vertical_regime: 0,
            last_heading_emit: None,
            last_speed_emit: None,
            anchor: None,
            seen: 0,
            emitted: 0,
        };
        decode_synopses_state_into(r, &mut out)?;
        Ok(out)
    }
}

// --- link discovery ---

impl Encode for Relation {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Relation::Within => 0,
            Relation::NearTo => 1,
        });
    }
}

impl Decode for Relation {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Relation::Within),
            1 => Ok(Relation::NearTo),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for LinkTarget {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            LinkTarget::Region(id) => {
                w.put_u8(0);
                w.put_u64(*id);
            }
            LinkTarget::Port(id) => {
                w.put_u8(1);
                w.put_u64(*id);
            }
            LinkTarget::Entity(e) => {
                w.put_u8(2);
                e.encode(w);
            }
        }
    }
}

impl Decode for LinkTarget {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(LinkTarget::Region(r.get_u64()?)),
            1 => Ok(LinkTarget::Port(r.get_u64()?)),
            2 => Ok(LinkTarget::Entity(EntityId::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for Link {
    fn encode(&self, w: &mut ByteWriter) {
        self.entity.encode(w);
        self.ts.encode(w);
        self.relation.encode(w);
        self.target.encode(w);
    }
}

impl Decode for Link {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Link {
            entity: EntityId::decode(r)?,
            ts: Timestamp::decode(r)?,
            relation: Relation::decode(r)?,
            target: LinkTarget::decode(r)?,
        })
    }
}

impl Encode for LinkStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.points);
        w.put_u64(self.mask_hits);
        w.put_u64(self.refinements);
        w.put_u64(self.links);
    }
}

impl Decode for LinkStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(LinkStats {
            points: r.get_u64()?,
            mask_hits: r.get_u64()?,
            refinements: r.get_u64()?,
            links: r.get_u64()?,
        })
    }
}

// --- RDF ---

impl Encode for Literal {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Literal::Str(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            Literal::Int(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            Literal::Double(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
            Literal::DateTime(v) => {
                w.put_u8(3);
                w.put_i64(*v);
            }
            Literal::Wkt(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
            Literal::Bool(v) => {
                w.put_u8(5);
                w.put_bool(*v);
            }
        }
    }
}

impl Decode for Literal {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Literal::Str(Arc::from(r.get_str()?))),
            1 => Ok(Literal::Int(r.get_i64()?)),
            2 => Ok(Literal::Double(r.get_f64()?)),
            3 => Ok(Literal::DateTime(r.get_i64()?)),
            4 => Ok(Literal::Wkt(Arc::from(r.get_str()?))),
            5 => Ok(Literal::Bool(r.get_bool()?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for Term {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Term::Iri(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            Term::Blank(id) => {
                w.put_u8(1);
                w.put_u64(*id);
            }
            Term::Literal(l) => {
                w.put_u8(2);
                l.encode(w);
            }
        }
    }
}

impl Decode for Term {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Term::Iri(Arc::from(r.get_str()?))),
            1 => Ok(Term::Blank(r.get_u64()?)),
            2 => Ok(Term::Literal(Literal::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for Triple {
    fn encode(&self, w: &mut ByteWriter) {
        self.s.encode(w);
        self.p.encode(w);
        self.o.encode(w);
    }
}

impl Decode for Triple {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Triple {
            s: Term::decode(r)?,
            p: Term::decode(r)?,
            o: Term::decode(r)?,
        })
    }
}

// --- topic checkpoints ---

/// Durable snapshot of one in-memory topic: its base offset, counters and
/// the retained log contents. Restoring all three reproduces the topic's
/// observable state (offsets, health, unread messages) exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicCheckpoint<T> {
    /// Offset of the first retained message.
    pub base: u64,
    /// Publish/drop/reclaim counters at snapshot time.
    pub stats: TopicStats,
    /// The retained log contents, oldest first.
    pub retained: Vec<T>,
}

impl<T: Encode> Encode for TopicCheckpoint<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.base);
        self.stats.encode(w);
        self.retained.encode(w);
    }
}

impl<T: Decode> Decode for TopicCheckpoint<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TopicCheckpoint {
            base: r.get_u64()?,
            stats: TopicStats::decode(r)?,
            retained: Vec::<T>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + std::fmt::Debug>(value: &T) -> T {
        let bytes = encode_to_vec(value);
        decode_from_slice(&bytes).expect("roundtrip decode")
    }

    fn sample_report(id: u64, ts: i64) -> PositionReport {
        PositionReport {
            entity: EntityId::vessel(id),
            ts: Timestamp(ts),
            point: GeoPoint::new(23.5 + id as f64 * 0.01, 37.9),
            altitude_m: 0.0,
            speed_mps: 5.25,
            heading_deg: 271.5,
            vertical_rate_mps: 0.0,
        }
    }

    #[test]
    fn position_report_roundtrips() {
        let r = sample_report(42, 1_000);
        assert_eq!(roundtrip(&r), r);
        let a = PositionReport {
            entity: EntityId::aircraft(7),
            altitude_m: 10_500.0,
            vertical_rate_mps: -12.5,
            ..sample_report(7, -5)
        };
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn nan_and_infinity_roundtrip_exactly() {
        let mut r = sample_report(1, 0);
        r.heading_deg = f64::NAN;
        r.speed_mps = f64::INFINITY;
        r.altitude_m = f64::NEG_INFINITY;
        let back = roundtrip(&r);
        assert_eq!(back.heading_deg.to_bits(), r.heading_deg.to_bits());
        assert_eq!(back.speed_mps, f64::INFINITY);
        assert_eq!(back.altitude_m, f64::NEG_INFINITY);
    }

    #[test]
    fn critical_kinds_roundtrip() {
        let kinds = vec![
            CriticalKind::Start,
            CriticalKind::End,
            CriticalKind::StopStart,
            CriticalKind::StopEnd,
            CriticalKind::SlowMotionStart,
            CriticalKind::SlowMotionEnd,
            CriticalKind::ChangeInHeading { delta_deg: -34.5 },
            CriticalKind::SpeedChange { ratio: 0.75 },
            CriticalKind::GapStart,
            CriticalKind::GapEnd { silence_s: 1800.0 },
            CriticalKind::ChangeInAltitude { rate_mps: -9.0 },
            CriticalKind::Takeoff,
            CriticalKind::Landing,
        ];
        assert_eq!(roundtrip(&kinds), kinds);
    }

    #[test]
    fn rdf_terms_roundtrip() {
        let triple = Triple {
            s: Term::iri("http://datacron.eu/vessel/9"),
            p: Term::Blank(3),
            o: Term::Literal(Literal::Double(4.5)),
        };
        assert_eq!(roundtrip(&triple), triple);
        let lits = vec![
            Literal::str("hello"),
            Literal::Int(-9),
            Literal::DateTime(1_700_000_000_000),
            Literal::wkt("POINT (23.5 37.9)"),
            Literal::Bool(true),
        ];
        assert_eq!(roundtrip(&lits), lits);
    }

    #[test]
    fn links_and_events_roundtrip() {
        let link = Link {
            entity: EntityId::vessel(5),
            ts: Timestamp(99),
            relation: Relation::NearTo,
            target: LinkTarget::Port(11),
        };
        assert_eq!(roundtrip(&link), link);
        let ev = AreaEvent {
            entity: EntityId::aircraft(2),
            ts: Timestamp(7),
            area_id: 13,
            kind: AreaEventKind::Exited,
            point: GeoPoint::new(1.0, 2.0),
        };
        assert_eq!(roundtrip(&ev), ev);
    }

    #[test]
    fn topic_checkpoint_roundtrips() {
        let ck = TopicCheckpoint {
            base: 17,
            stats: TopicStats {
                published: 40,
                rejected: 1,
                dropped: 2,
                reclaimed: 17,
                blocked: 3,
                consumed: 23,
                lag_signals: 4,
            },
            retained: vec![sample_report(1, 10), sample_report(2, 20)],
        };
        assert_eq!(roundtrip(&ck), ck);
    }

    #[test]
    fn corrupt_inputs_yield_typed_errors_not_panics() {
        // Truncation at every prefix length.
        let bytes = encode_to_vec(&sample_report(3, 3));
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_from_slice::<PositionReport>(&bytes[..cut]),
                Err(CodecError::Truncated)
            );
        }
        // Bad enum tag.
        assert_eq!(decode_from_slice::<MovingKind>(&[9]), Err(CodecError::InvalidTag(9)));
        // Trailing garbage.
        let mut padded = encode_to_vec(&Timestamp(5));
        padded.push(0);
        assert_eq!(decode_from_slice::<Timestamp>(&padded), Err(CodecError::TrailingBytes));
        // Absurd length prefix must not allocate/panic.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_from_slice::<Vec<u64>>(&huge), Err(CodecError::Truncated));
    }
}

#![warn(missing_docs)]

//! # datacron-durability
//!
//! Durability substrate for the datAcron real-time layer: a write-ahead
//! ingest log, checkpointed operator state and crash recovery.
//!
//! The paper's deployment delegates exactly this to its infrastructure —
//! Kafka is the replayable log feeding the Flink jobs, and Flink's
//! checkpoint/restore gives the streaming operators exactly-once state.
//! This crate rebuilds that substrate natively (zero external crates, like
//! the rest of the workspace):
//!
//! * [`wal`] — a segmented append-only **write-ahead log**: length+CRC32
//!   framed records, configurable fsync policy (per-record / batched /
//!   interval), segment rotation and retention, and a replay iterator
//!   that tolerates and truncates a torn tail.
//! * [`framing`] — the shared `[len|crc|seq|payload]` **frame format**
//!   consumed by both the WAL and `datacron-net`'s TCP wire protocol.
//! * [`codec`] — a compact, deterministic **binary codec** for ingest
//!   records ([`datacron_geo::PositionReport`]) and operator state
//!   snapshots (cleaner, synopses, topics, links, RDF terms).
//! * [`checkpoint`] — atomically-written, checksummed **checkpoints**,
//!   each tagged with the WAL sequence number it covers.
//! * [`recovery`] — the [`RecoveryManager`]: newest valid checkpoint +
//!   contiguous WAL suffix, deduped by sequence number, so a recovered
//!   run applies every durable record exactly once.
//!
//! The integration lives in `datacron-core`: `DatacronSystem` logs every
//! ingest before processing it and checkpoints the full real-time-layer
//! state on a configurable interval, which makes a recovered run's
//! outputs bit-identical to an uninterrupted one.

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod framing;
pub mod recovery;
pub mod wal;

pub use checkpoint::CheckpointStore;
pub use codec::{
    decode_from_slice, decode_synopses_state_into, decode_vec_into, encode_into, encode_to_vec,
    ByteReader, ByteWriter, CodecError, Decode, Encode, TopicCheckpoint,
};
pub use framing::{encode_frame, encode_frame_into, parse_frame, Frame, FrameParse, FRAME_HEADER};
pub use recovery::{RecoveryManager, RecoveryOutcome};
pub use wal::{FsyncPolicy, ReplayIter, WalConfig, WalRecord, WalStats, WriteAheadLog};

use std::path::PathBuf;

/// Everything that can go wrong in the durability layer. Damaged on-disk
/// state is always surfaced as one of these — never a panic.
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A WAL or checkpoint payload failed to decode.
    Codec(CodecError),
    /// A sealed WAL segment holds a frame whose checksum or framing is
    /// invalid (e.g. a bit flip): the log cannot be trusted past here.
    CorruptRecord {
        /// The damaged segment file.
        segment: PathBuf,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
    },
    /// Sequence numbering is discontinuous (e.g. a deleted segment).
    SequenceGap {
        /// The sequence number that should have come next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A file in the WAL directory matches the segment naming scheme but
    /// its name does not parse.
    BadSegmentName(PathBuf),
    /// The WAL's next sequence number disagrees with the system state it
    /// is being attached to.
    SequenceMismatch {
        /// The log's next sequence number.
        wal: u64,
        /// The system's record count.
        system: u64,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Codec(e) => write!(f, "durability codec error: {e}"),
            DurabilityError::CorruptRecord { segment, offset } => {
                write!(f, "corrupt WAL record in {} at offset {offset}", segment.display())
            }
            DurabilityError::SequenceGap { expected, found } => {
                write!(f, "WAL sequence gap: expected {expected}, found {found}")
            }
            DurabilityError::BadSegmentName(path) => {
                write!(f, "unparseable WAL segment name: {}", path.display())
            }
            DurabilityError::SequenceMismatch { wal, system } => {
                write!(f, "WAL at sequence {wal} but system has processed {system} records")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

//! Low-level event detection: area entry/exit (§4.2.1).
//!
//! "Raw position data are enriched with low-level events of entering or
//! leaving of moving entities from one area to another one, by processing
//! the real-time stream of moving entity positions."
//!
//! [`AreaMonitor`] indexes the areas of interest in an equi-grid (bbox
//! coarse filter, polygon refinement) and tracks, per entity, the set of
//! areas it is currently inside; transitions emit [`AreaEvent`]s.

use crate::operator::Operator;
use datacron_geo::{BoundingBox, EntityId, EquiGrid, GeoPoint, Polygon, PositionReport, Timestamp};
use std::collections::{HashMap, HashSet};

/// Entry or exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AreaEventKind {
    /// The entity entered the area.
    Entered,
    /// The entity exited the area.
    Exited,
}

/// A detected low-level area event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEvent {
    /// The moving entity.
    pub entity: EntityId,
    /// Event time (the report that revealed the transition).
    pub ts: Timestamp,
    /// The area's identifier (caller-assigned).
    pub area_id: u64,
    /// Entered or exited.
    pub kind: AreaEventKind,
    /// The position at the transition.
    pub point: GeoPoint,
}

/// Streaming detector of area entry/exit events.
#[derive(Debug)]
pub struct AreaMonitor {
    grid: EquiGrid,
    areas: Vec<(u64, Polygon)>,
    /// area indices (into `areas`) per grid cell.
    cell_index: HashMap<u32, Vec<u32>>,
    /// Currently-inside area ids per entity.
    inside: HashMap<EntityId, HashSet<u64>>,
}

impl AreaMonitor {
    /// Builds a monitor over the given `(id, polygon)` areas, indexed on a
    /// grid of roughly `cell_deg` degrees covering all areas.
    pub fn new(areas: Vec<(u64, Polygon)>, cell_deg: f64) -> Self {
        let mut extent = BoundingBox::empty();
        for (_, poly) in &areas {
            extent = extent.union(poly.bbox());
        }
        if extent.is_empty() {
            // No areas: a unit grid that never matches anything.
            extent = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        }
        let grid = EquiGrid::with_cell_size(extent.expanded(cell_deg), cell_deg);
        let mut cell_index: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, (_, poly)) in areas.iter().enumerate() {
            for cell in grid.cells_intersecting(poly.bbox()) {
                if poly.intersects_bbox(&grid.cell_bbox(cell)) {
                    cell_index.entry(grid.flat_id(cell)).or_default().push(i as u32);
                }
            }
        }
        Self {
            grid,
            areas,
            cell_index,
            inside: HashMap::new(),
        }
    }

    /// Number of indexed areas.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// The set of area ids containing `p`.
    pub fn areas_containing(&self, p: &GeoPoint) -> HashSet<u64> {
        let mut hit = HashSet::new();
        let Some(cell) = self.grid.cell_of(p) else {
            return hit;
        };
        if let Some(candidates) = self.cell_index.get(&self.grid.flat_id(cell)) {
            for &i in candidates {
                let (id, poly) = &self.areas[i as usize];
                if poly.contains(p) {
                    hit.insert(*id);
                }
            }
        }
        hit
    }

    /// Processes one report, emitting transitions since the entity's last
    /// report.
    pub fn observe(&mut self, r: &PositionReport) -> Vec<AreaEvent> {
        let mut events = Vec::new();
        self.observe_into(r, &mut events);
        events
    }

    /// [`observe`](Self::observe), appending into a caller-owned buffer so
    /// the hot path can reuse one allocation across records. The appended
    /// suffix is sorted by area id, exactly as `observe` returns it.
    pub fn observe_into(&mut self, r: &PositionReport, events: &mut Vec<AreaEvent>) {
        let start = events.len();
        let now = self.areas_containing(&r.point);
        let before = self.inside.entry(r.entity).or_default();
        for &id in now.iter() {
            if !before.contains(&id) {
                events.push(AreaEvent {
                    entity: r.entity,
                    ts: r.ts,
                    area_id: id,
                    kind: AreaEventKind::Entered,
                    point: r.point,
                });
            }
        }
        for &id in before.iter() {
            if !now.contains(&id) {
                events.push(AreaEvent {
                    entity: r.entity,
                    ts: r.ts,
                    area_id: id,
                    kind: AreaEventKind::Exited,
                    point: r.point,
                });
            }
        }
        events[start..].sort_by_key(|e| e.area_id);
        *before = now;
    }

    /// The areas an entity is currently inside.
    pub fn currently_inside(&self, entity: EntityId) -> Option<&HashSet<u64>> {
        self.inside.get(&entity)
    }

    /// Deterministic snapshot of the per-entity inside-sets (sorted by
    /// entity, area ids sorted), for checkpointing.
    pub fn inside_state(&self) -> Vec<(EntityId, Vec<u64>)> {
        let mut out: Vec<(EntityId, Vec<u64>)> = self
            .inside
            .iter()
            .map(|(entity, ids)| {
                let mut ids: Vec<u64> = ids.iter().copied().collect();
                ids.sort_unstable();
                (*entity, ids)
            })
            .collect();
        out.sort_unstable_by_key(|(entity, _)| *entity);
        out
    }

    /// Replaces the per-entity inside-sets with a checkpointed snapshot.
    pub fn restore_inside_state(&mut self, state: Vec<(EntityId, Vec<u64>)>) {
        self.inside = state
            .into_iter()
            .map(|(entity, ids)| (entity, ids.into_iter().collect()))
            .collect();
    }
}

impl Operator<PositionReport, AreaEvent> for AreaMonitor {
    fn on_record(&mut self, input: PositionReport, out: &mut Vec<AreaEvent>) {
        out.extend(self.observe(&input));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(id: u64, lon0: f64, lat0: f64, side: f64) -> (u64, Polygon) {
        (
            id,
            Polygon::rect(BoundingBox::new(lon0, lat0, lon0 + side, lat0 + side)),
        )
    }

    fn report(t_s: i64, lon: f64, lat: f64) -> PositionReport {
        PositionReport::basic(EntityId::vessel(7), Timestamp::from_secs(t_s), GeoPoint::new(lon, lat))
    }

    #[test]
    fn detects_entry_and_exit() {
        let mut m = AreaMonitor::new(vec![square(1, 1.0, 1.0, 1.0)], 0.5);
        assert!(m.observe(&report(0, 0.5, 1.5)).is_empty());
        let enter = m.observe(&report(10, 1.5, 1.5));
        assert_eq!(enter.len(), 1);
        assert_eq!(enter[0].kind, AreaEventKind::Entered);
        assert_eq!(enter[0].area_id, 1);
        assert!(m.observe(&report(20, 1.6, 1.5)).is_empty(), "no repeat while inside");
        let exit = m.observe(&report(30, 2.5, 1.5));
        assert_eq!(exit.len(), 1);
        assert_eq!(exit[0].kind, AreaEventKind::Exited);
    }

    #[test]
    fn overlapping_areas_both_fire() {
        let mut m = AreaMonitor::new(vec![square(1, 0.0, 0.0, 2.0), square(2, 1.0, 1.0, 2.0)], 0.5);
        let events = m.observe(&report(0, 1.5, 1.5));
        assert_eq!(events.len(), 2, "inside both areas");
        assert!(events.iter().all(|e| e.kind == AreaEventKind::Entered));
        // Move out of area 2 only.
        let events = m.observe(&report(10, 0.5, 0.5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].area_id, 2);
        assert_eq!(events[0].kind, AreaEventKind::Exited);
    }

    #[test]
    fn entities_tracked_independently() {
        let mut m = AreaMonitor::new(vec![square(1, 0.0, 0.0, 1.0)], 0.5);
        let a = PositionReport::basic(EntityId::vessel(1), Timestamp(0), GeoPoint::new(0.5, 0.5));
        let b = PositionReport::basic(EntityId::vessel(2), Timestamp(0), GeoPoint::new(0.5, 0.5));
        assert_eq!(m.observe(&a).len(), 1);
        assert_eq!(m.observe(&b).len(), 1, "second entity enters on its own");
        assert!(m.currently_inside(EntityId::vessel(1)).unwrap().contains(&1));
    }

    #[test]
    fn no_areas_never_fires() {
        let mut m = AreaMonitor::new(Vec::new(), 0.5);
        assert!(m.observe(&report(0, 0.5, 0.5)).is_empty());
        assert_eq!(m.area_count(), 0);
    }

    #[test]
    fn grid_index_agrees_with_exhaustive_scan() {
        use datacron_data::context::AreaGenerator;
        let regions = AreaGenerator::new(BoundingBox::new(0.0, 35.0, 10.0, 45.0)).generate(40, "natura", 3);
        let areas: Vec<(u64, Polygon)> = regions.iter().map(|r| (r.id, r.polygon.clone())).collect();
        let m = AreaMonitor::new(areas.clone(), 0.25);
        // Probe a lattice of points; indexed lookup must equal brute force.
        for i in 0..20 {
            for j in 0..20 {
                let p = GeoPoint::new(0.25 + 0.5 * i as f64, 35.25 + 0.5 * j as f64);
                let indexed = m.areas_containing(&p);
                let brute: HashSet<u64> = areas
                    .iter()
                    .filter(|(_, poly)| poly.contains(&p))
                    .map(|(id, _)| *id)
                    .collect();
                assert_eq!(indexed, brute, "mismatch at {p}");
            }
        }
    }

    #[test]
    fn operator_impl_streams_events() {
        let mut m = AreaMonitor::new(vec![square(1, 1.0, 1.0, 1.0)], 0.5);
        let out = m.run(vec![report(0, 0.5, 1.5), report(10, 1.5, 1.5), report(20, 2.5, 1.5)]);
        assert_eq!(out.len(), 2);
    }
}

//! Cross-stream fusion of surveillance sources.
//!
//! One of the paper's stated next steps for the synopses pipeline: "we plan
//! to address the case of cross-stream processing, i.e., correlating
//! surveillance data from multiple (and perhaps contradicting) sources in
//! order to provide a coherent trajectory representation" (§4.2.2).
//!
//! Terrestrial AIS, satellite AIS and coastal radar report the same vessels
//! at different rates, with different latencies, and occasionally with
//! contradicting positions. [`CrossStreamFusion`] merges per-entity streams
//! from multiple tagged sources into one coherent, time-ordered stream:
//!
//! * **reordering** — reports are buffered for a bounded lateness window and
//!   released in timestamp order once the watermark passes them;
//! * **deduplication** — reports closer than a time epsilon are considered
//!   the same observation; the higher-priority source wins;
//! * **conflict resolution** — same-time reports that disagree spatially by
//!   more than a plausibility bound are resolved in favour of the
//!   higher-priority source (and counted, so data-quality dashboards see
//!   the disagreement rate).

use datacron_geo::{EntityId, PositionReport, Timestamp};
use std::collections::HashMap;

/// A tagged surveillance source. Lower `priority` values win conflicts
/// (e.g. terrestrial AIS = 0, satellite = 1).
pub type SourceId = u8;

/// Fusion parameters.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// How long reports wait for stragglers from slower sources, seconds.
    pub lateness_s: f64,
    /// Two reports of one entity within this many seconds are one
    /// observation.
    pub dedup_epsilon_s: f64,
    /// Same-observation positions further apart than this disagree, metres.
    pub conflict_distance_m: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            lateness_s: 30.0,
            dedup_epsilon_s: 2.0,
            conflict_distance_m: 500.0,
        }
    }
}

/// Fusion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Reports ingested across sources.
    pub ingested: u64,
    /// Reports emitted downstream.
    pub emitted: u64,
    /// Near-duplicates dropped.
    pub duplicates: u64,
    /// Spatial conflicts resolved by priority.
    pub conflicts: u64,
}

/// Per-entity buffered report with its source.
#[derive(Debug, Clone, Copy)]
struct Buffered {
    report: PositionReport,
    source: SourceId,
    priority: u8,
}

/// The cross-stream merger.
#[derive(Debug)]
pub struct CrossStreamFusion {
    config: FusionConfig,
    /// Priority per source (lower wins); unknown sources get priority 255.
    priorities: HashMap<SourceId, u8>,
    /// Per-entity buffers, kept sorted by timestamp.
    buffers: HashMap<EntityId, Vec<Buffered>>,
    /// Global watermark: max event time seen minus lateness.
    max_seen: Option<Timestamp>,
    stats: FusionStats,
}

impl CrossStreamFusion {
    /// Creates a merger; `priorities` maps source ids to their precedence
    /// (lower value = more trusted).
    pub fn new(config: FusionConfig, priorities: impl IntoIterator<Item = (SourceId, u8)>) -> Self {
        Self {
            config,
            priorities: priorities.into_iter().collect(),
            buffers: HashMap::new(),
            max_seen: None,
            stats: FusionStats::default(),
        }
    }

    /// Fusion counters so far.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Reports currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Ingests one report from `source`; returns any reports whose lateness
    /// window has closed, in coherent per-entity timestamp order.
    pub fn push(&mut self, source: SourceId, report: PositionReport) -> Vec<PositionReport> {
        self.stats.ingested += 1;
        let priority = self.priorities.get(&source).copied().unwrap_or(255);
        let entry = Buffered {
            report,
            source,
            priority,
        };
        let buf = self.buffers.entry(report.entity).or_default();
        let pos = buf.partition_point(|b| b.report.ts <= report.ts);
        buf.insert(pos, entry);
        self.max_seen = Some(self.max_seen.map_or(report.ts, |m| m.max(report.ts)));
        self.drain_ready()
    }

    /// Flushes everything still buffered (end of stream).
    pub fn flush(&mut self) -> Vec<PositionReport> {
        self.max_seen = Some(Timestamp(i64::MAX - (self.config.lateness_s * 1000.0) as i64 - 1));
        self.drain_ready()
    }

    fn drain_ready(&mut self) -> Vec<PositionReport> {
        let Some(max_seen) = self.max_seen else {
            return Vec::new();
        };
        let watermark = max_seen - (self.config.lateness_s * 1000.0) as i64;
        let epsilon_ms = (self.config.dedup_epsilon_s * 1000.0) as i64;
        let mut out = Vec::new();
        for buf in self.buffers.values_mut() {
            // Releasable prefix: strictly older than the watermark.
            let ready = buf.partition_point(|b| b.report.ts < watermark);
            if ready == 0 {
                continue;
            }
            let mut group: Vec<Buffered> = Vec::new();
            let emit_group = |group: &mut Vec<Buffered>, out: &mut Vec<PositionReport>, stats: &mut FusionStats| {
                // The whole group is one observation: best priority wins;
                // spatial disagreement beyond the bound is a conflict.
                // (`min_by_key` on an empty group is `None` — nothing to emit.)
                let Some(&best) = group.iter().min_by_key(|b| (b.priority, b.source)) else {
                    return;
                };
                for other in group.iter() {
                    if other.source != best.source
                        && other.report.point.haversine_distance(&best.report.point)
                            > self.config.conflict_distance_m
                    {
                        stats.conflicts += 1;
                    }
                }
                stats.duplicates += group.len() as u64 - 1;
                stats.emitted += 1;
                out.push(best.report);
                group.clear();
            };
            for b in buf.drain(..ready) {
                match group.last() {
                    Some(last) if b.report.ts.delta_millis(&last.report.ts) <= epsilon_ms => {
                        group.push(b);
                    }
                    _ => {
                        emit_group(&mut group, &mut out, &mut self.stats);
                        group.push(b);
                    }
                }
            }
            emit_group(&mut group, &mut out, &mut self.stats);
        }
        self.buffers.retain(|_, b| !b.is_empty());
        out.sort_by_key(|r| (r.ts, r.entity));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::GeoPoint;

    const TERRESTRIAL: SourceId = 0;
    const SATELLITE: SourceId = 1;

    fn fusion() -> CrossStreamFusion {
        CrossStreamFusion::new(FusionConfig::default(), [(TERRESTRIAL, 0), (SATELLITE, 1)])
    }

    fn rep(t_s: i64, lon: f64) -> PositionReport {
        PositionReport::basic(EntityId::vessel(1), Timestamp::from_secs(t_s), GeoPoint::new(lon, 40.0))
    }

    #[test]
    fn reorders_across_sources() {
        let mut f = fusion();
        // Satellite delivers t=0 late, after terrestrial t=10 and t=50.
        assert!(f.push(TERRESTRIAL, rep(10, 0.1)).is_empty());
        assert!(f.push(SATELLITE, rep(0, 0.0)).is_empty());
        // t=50 moves the watermark to 20: t=0 and t=10 release, in order.
        let out = f.push(TERRESTRIAL, rep(50, 0.5));
        let times: Vec<i64> = out.iter().map(|r| r.ts.secs()).collect();
        assert_eq!(times, vec![0, 10]);
        let rest = f.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].ts.secs(), 50);
    }

    #[test]
    fn dedupes_same_observation_preferring_priority() {
        let mut f = fusion();
        f.push(SATELLITE, rep(10, 0.1004)); // ~30 m east of terrestrial fix
        f.push(TERRESTRIAL, rep(10, 0.1));
        let out = f.flush();
        assert_eq!(out.len(), 1, "one observation");
        assert!((out[0].point.lon - 0.1).abs() < 1e-12, "terrestrial wins");
        assert_eq!(f.stats().duplicates, 1);
        assert_eq!(f.stats().conflicts, 0, "30 m apart is agreement");
    }

    #[test]
    fn counts_contradicting_sources() {
        let mut f = fusion();
        f.push(TERRESTRIAL, rep(10, 0.1));
        f.push(SATELLITE, rep(11, 0.2)); // ~8.5 km away, within dedup epsilon? 1 s apart: yes
        let out = f.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(f.stats().conflicts, 1, "positions disagree beyond the bound");
        assert!((out[0].point.lon - 0.1).abs() < 1e-12);
    }

    #[test]
    fn entities_are_fused_independently() {
        let mut f = fusion();
        let mut r2 = rep(10, 0.5);
        r2.entity = EntityId::vessel(2);
        f.push(TERRESTRIAL, rep(10, 0.1));
        f.push(TERRESTRIAL, r2);
        let out = f.flush();
        assert_eq!(out.len(), 2, "no cross-entity dedup");
    }

    #[test]
    fn stats_balance() {
        let mut f = fusion();
        let mut emitted = 0u64;
        for i in 0..20 {
            emitted += f.push(TERRESTRIAL, rep(i * 10, 0.01 * i as f64)).len() as u64;
            if i % 2 == 0 {
                emitted += f.push(SATELLITE, rep(i * 10 + 1, 0.01 * i as f64)).len() as u64;
            }
        }
        emitted += f.flush().len() as u64;
        let s = f.stats();
        assert_eq!(s.ingested, 30);
        assert_eq!(s.emitted, emitted);
        assert_eq!(s.emitted + s.duplicates, s.ingested);
        assert_eq!(s.duplicates, 10);
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn unknown_source_has_lowest_priority() {
        let mut f = fusion();
        f.push(99, rep(10, 0.3));
        f.push(SATELLITE, rep(10, 0.1));
        let out = f.flush();
        assert_eq!(out.len(), 1);
        assert!((out[0].point.lon - 0.1).abs() < 1e-12, "known source beats unknown");
    }

    #[test]
    fn fused_stream_feeds_synopses_coherently() {
        // The end goal: a coherent trajectory representation. Two interleaved
        // sources of one straight track fuse into a stream whose implied
        // speeds stay physical.
        let mut f = fusion();
        let mut out = Vec::new();
        for i in 0..60i64 {
            let lon = 0.001 * i as f64;
            out.extend(f.push(TERRESTRIAL, rep(i * 10, lon)));
            if i % 3 == 0 {
                // Satellite echoes with 20 s latency (processed later but
                // carrying the original timestamp) and slight offset.
                out.extend(f.push(SATELLITE, rep(i * 10 + 1, lon + 0.00005)));
            }
        }
        out.extend(f.flush());
        assert!(out.windows(2).all(|w| w[0].ts < w[1].ts), "strictly ordered output");
        for w in out.windows(2) {
            let dt = w[1].ts.delta_secs(&w[0].ts);
            let implied = w[0].point.haversine_distance(&w[1].point) / dt;
            assert!(implied < 20.0, "implied speed {implied} m/s stays physical");
        }
    }
}

#![warn(missing_docs)]

//! # datacron-stream
//!
//! A small single-process stream-processing runtime plus the in-situ
//! processing components of the datAcron real-time layer (§4.2.1).
//!
//! The paper implements its stream layer on Apache Flink and wires the
//! components together over Apache Kafka. The algorithms it evaluates are
//! per-record, keyed-state computations, so this crate reproduces the same
//! processing model natively:
//!
//! * [`bus`] — a Kafka-like in-memory message bus: append-only topic logs
//!   with independent consumer offsets, optional bounded capacity with
//!   backpressure, and explicit lag signalling.
//! * [`faults`] — deterministic fault injection (drops, duplicates,
//!   reordering, corruption, gaps, bursts) for chaos-testing the pipeline.
//! * [`operator`] — the operator abstraction: a keyed, stateful
//!   record-at-a-time transformer, with pipeline composition and a parallel
//!   executor over key partitions.
//! * [`parallel`] — the sharded parallel executor: key-hash partitioning
//!   across worker threads over bounded backpressured topics, with stamped
//!   outputs and a deterministic merge back into submission order (the
//!   Flink `keyBy` + parallelism scaling model of §4.2).
//! * [`cleaning`] — online data cleaning: plausibility filtering,
//!   impossible-speed outlier rejection, duplicate and out-of-order
//!   handling ("online data cleaning of erroneous data", §3).
//! * [`insitu`] — per-trajectory running statistics (min/max/average/median
//!   of speed, acceleration, …) computed "as close to the sources as
//!   possible" (§4.2.1).
//! * [`lowlevel`] — low-level event detection: entry/exit of moving
//!   entities to/from geographical areas of interest.
//! * [`fusion`] — cross-stream fusion of multiple surveillance sources into
//!   one coherent per-entity stream (the paper's stated next step for the
//!   synopses pipeline).

pub mod bus;
pub mod cleaning;
pub mod faults;
pub mod fusion;
pub mod insitu;
pub mod lowlevel;
pub mod operator;
pub mod parallel;

pub use bus::{Consumer, Lagged, MessageBus, OverflowPolicy, PublishError, SpaceWaitError, Topic, TopicConfig, TopicHealth, TopicStats};
pub use faults::{ChaosSource, ChaosTopic, Corrupt, DiskFault, FaultInjector, FaultPlan, FaultStats, NetFault, NetFaultPlan, NetFaultSchedule, NetFaultStats, inject_disk_fault};
pub use fusion::{CrossStreamFusion, FusionConfig, FusionStats};
pub use cleaning::{CleanerState, CleaningConfig, CleaningOutcome, StreamCleaner};
pub use insitu::{InSituProcessor, RunningStats, TrajectoryStats};
pub use lowlevel::{AreaEvent, AreaEventKind, AreaMonitor};
pub use operator::{KeyedOperator, Operator, Pipeline};
pub use parallel::{
    Directive, FinishedRun, SeqStamp, SequenceMerger, ShardAssigner, ShardPanic, ShardStage,
    ShardedConfig, ShardedExecutor, Stamped,
};

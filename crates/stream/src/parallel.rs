//! Sharded parallel stream execution with a deterministic merge.
//!
//! The paper's central scalability claim is that the online layer keeps up
//! with surveillance streams *by scaling with parallelism*: Flink
//! hash-partitions the keyed per-entity state across operator instances and
//! the output stream is reassembled downstream. This module reproduces that
//! execution model natively:
//!
//! * [`ShardAssigner`] — deterministic key → shard routing (Fx hash of the
//!   key, reduced modulo the shard count); the same key always lands on the
//!   same shard, so per-key processing order is preserved.
//! * [`SeqStamp`]/[`Stamped`] — every record is stamped at submission with
//!   a **global sequence number** (its position in the input stream), its
//!   shard, and a per-key sequence number.
//! * [`SequenceMerger`] — a reorder buffer that reassembles the shard
//!   outputs into the exact global input order, so the merged output stream
//!   is **bit-identical** to a single-threaded run over the same input, not
//!   merely per-key ordered.
//! * [`ShardedExecutor`] — N worker threads, each owning one [`ShardStage`]
//!   (a full per-key pipeline partition), fed through bounded
//!   [`Topic`]s with [`OverflowPolicy::Block`] so a saturated shard
//!   backpressures the submitter instead of buffering unboundedly.
//!
//! ## Ordering and determinism contract
//!
//! Records with the same key are processed by one shard in submission
//! order, so any deterministic per-key stage produces per-key outputs
//! identical to a sequential run. Because the merge orders by the global
//! stamp, the *interleaving* is also reproduced exactly: consuming
//! [`ShardedExecutor::poll`] yields outputs in submission order, always.
//!
//! ## Latency model
//!
//! The executor is time-critical, not merely throughput-oriented:
//!
//! * **Bounded admission window** — [`ShardedConfig::max_in_flight`] caps
//!   records submitted but not yet released by the merger; `submit` and
//!   `submit_batch` drain-and-wait when the window is full, so the reorder
//!   buffer can never balloon (`max_pending ≤ max_in_flight`, always).
//! * **Prompt handoff** — workers publish completed outputs as soon as the
//!   input queue is momentarily empty (a partial poll batch), falling back
//!   to batched handoff only when a backlog exists to amortize.
//! * **Event-driven waits** — every blocked edge (full shard queue, full
//!   output topic, full admission window, shutdown wind-down) parks on a
//!   condvar ([`Topic::wait_for_space`], [`Consumer::poll_wait`]) and is
//!   woken by the progress that unblocks it; nothing busy-spins or sleeps
//!   on a fixed quantum in the common path.
//! * **Honest per-record latency** — every [`Stamped`] record carries its
//!   own routing-time [`Instant`], so the `exec.submit_to_merge_ns`
//!   histogram measures each record from submission to in-order release,
//!   not a per-drain smear.
//!
//! ## Failure model
//!
//! The executor is lossless by construction: submission retries refused
//! publishes (backpressure, not loss), workers retry output publishes, and
//! [`ShardedExecutor::finish`] drains everything and reports
//! `submitted == merged` (plus late/duplicate counters from the merger,
//! which must be zero). A worker that dies (a stage panic escaping
//! `on_record`) is detected at the next submit-side wait, barrier or
//! `finish`, and reported as a [`ShardPanic`] rather than a hang.

use crate::bus::{Consumer, OverflowPolicy, SpaceWaitError, Topic, TopicConfig};
use datacron_geo::hash::{fx_hash, FxHashMap};
use datacron_obs::{Gauge, LogHistogram, MetricsSnapshot, ObsRegistry};
use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Provenance stamps carried by every record through the sharded pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqStamp {
    /// The routing epoch the record was submitted under. Each live resize
    /// (executor teardown + re-spawn with a new [`ShardAssigner`]) starts a
    /// new epoch with a fresh gap-free sequence space; the merger uses the
    /// epoch to tell a stale pre-resize stamp from a current one.
    pub epoch: u64,
    /// Position in the epoch's input stream (0-based, gap-free per epoch).
    pub global_seq: u64,
    /// The shard that processed (or will process) the record.
    pub shard: u32,
    /// Position in the per-key substream (0-based per key).
    pub key_seq: u64,
}

/// A value plus its pipeline stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// The stamps.
    pub stamp: SeqStamp,
    /// When the coordinator routed the record (`None` when executor
    /// metrics are disabled). Carried through the worker unchanged, so the
    /// submit→merge latency of every record is measured against its *own*
    /// submission instant — not smeared across a batch or a drain.
    pub submitted_at: Option<Instant>,
    /// The value.
    pub value: T,
}

/// What flows down a shard's input topic.
#[derive(Debug, Clone)]
pub enum Directive<T> {
    /// Process one stamped record.
    Record(Stamped<T>),
    /// Emit end-of-stream state (barrier; the worker acknowledges).
    Flush,
    /// Emit a point-in-time snapshot (barrier; the worker acknowledges).
    Snapshot,
    /// Emit durable checkpoint state (barrier; the worker acknowledges).
    Checkpoint,
    /// Emit the stage's metrics (barrier; the worker acknowledges).
    Metrics,
    /// Drain and exit, returning the stage to the coordinator.
    Shutdown,
}

/// Deterministic key → shard routing: Fx hash of the key reduced modulo
/// the shard count, with an optional hot-key override table consulted
/// first.
///
/// Routing is **total** (every key hash maps to exactly one shard in
/// `0..shards`) and **stable** (the same key always routes identically for
/// the same assigner). Overrides pin individual heavy keys — identified by
/// their hash — to explicit shards, so a rebalance can peel a hot entity
/// off an overloaded shard without touching anyone else's route.
#[derive(Debug, Clone)]
pub struct ShardAssigner {
    shards: u32,
    /// Hot-key pins: key hash → shard. Shared, immutable per assigner.
    overrides: Arc<FxHashMap<u64, u32>>,
}

impl ShardAssigner {
    /// An assigner over `shards` shards (at least 1), no overrides.
    pub fn new(shards: usize) -> Self {
        Self::with_overrides(shards, FxHashMap::default())
    }

    /// An assigner over `shards` shards with hot-key pins. Override targets
    /// must be valid shards.
    pub fn with_overrides(shards: usize, overrides: FxHashMap<u64, u32>) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(shards <= u32::MAX as usize, "shard count fits u32");
        assert!(
            overrides.values().all(|&s| (s as usize) < shards),
            "override targets a shard out of range"
        );
        Self { shards: shards as u32, overrides: Arc::new(overrides) }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The hot-key override table (key hash → pinned shard).
    pub fn overrides(&self) -> &FxHashMap<u64, u32> {
        &self.overrides
    }

    /// The shard a key routes to. Deterministic across runs and processes.
    pub fn assign<K: Hash>(&self, key: &K) -> u32 {
        self.assign_hashed(fx_hash(key))
    }

    /// The shard a pre-hashed key routes to (the submit hot path hashes
    /// once and reuses it for routing and per-key sequencing).
    pub fn assign_hashed(&self, key_hash: u64) -> u32 {
        if !self.overrides.is_empty() {
            if let Some(&shard) = self.overrides.get(&key_hash) {
                return shard;
            }
        }
        (key_hash % self.shards as u64) as u32
    }
}

/// When and how to rebalance a skewed shard fleet.
///
/// Hash partitioning spreads *keys* evenly but not *load*: one hot entity
/// (a busy port, a surveilled aircraft) can concentrate half the traffic
/// on one shard, and that shard's queue drives the whole pipeline's tail
/// latency. The policy watches per-shard routed-record loads, and when the
/// skew-adjusted imbalance exceeds the threshold it plans a set of hot-key
/// [`ShardAssigner`] overrides that isolates the heavy hitters on the
/// least-loaded shards.
///
/// The imbalance metric is `max shard load / max(mean shard load, max
/// single-key load)`: a shard carrying exactly one unsplittable hot key is
/// as balanced as hash routing can get, so 1.0 is the achievable floor and
/// the metric never blames the policy for skew it cannot remove.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Trigger threshold: rebalance when
    /// [`imbalance`](Self::imbalance) exceeds this (must be > 1.0).
    pub max_imbalance: f64,
    /// Minimum records routed in the current epoch before load estimates
    /// are trusted.
    pub min_records: u64,
    /// Minimum records routed between two automatic rebalances (a manual
    /// trigger ignores the cooldown).
    pub cooldown_records: u64,
    /// Override-table budget: at most this many heavy keys are pinned.
    pub max_overrides: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        Self {
            max_imbalance: 1.5,
            min_records: 1024,
            cooldown_records: 4096,
            max_overrides: 64,
        }
    }
}

impl RebalancePolicy {
    /// Skew-adjusted load imbalance of a fleet: the heaviest shard's load
    /// over the larger of the mean shard load and the heaviest single
    /// key's load. 1.0 is perfectly balanced *given the key skew*; returns
    /// 1.0 for an idle fleet.
    pub fn imbalance(shard_loads: &[u64], max_key_load: u64) -> f64 {
        let total: u64 = shard_loads.iter().sum();
        if total == 0 || shard_loads.is_empty() {
            return 1.0;
        }
        let max_shard = *shard_loads.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / shard_loads.len() as f64;
        max_shard / mean.max(max_key_load as f64)
    }

    /// Whether the policy wants an automatic rebalance: enough routed
    /// records to trust the estimate, cooldown elapsed, imbalance above
    /// threshold.
    pub fn should_rebalance(
        &self,
        shard_loads: &[u64],
        max_key_load: u64,
        routed_since_last: u64,
    ) -> bool {
        let total: u64 = shard_loads.iter().sum();
        total >= self.min_records
            && routed_since_last >= self.cooldown_records
            && Self::imbalance(shard_loads, max_key_load) > self.max_imbalance
    }

    /// Plans hot-key overrides for `shards` shards from observed per-key
    /// loads (`(key hash, records routed)`): heavy keys — those whose solo
    /// load exceeds the ideal per-shard share — are peeled off their hash
    /// shard and placed, heaviest first, on the currently least-loaded
    /// shard. Deterministic: ties break on shard index, then key hash.
    /// Returns the override table (empty when nothing is heavy).
    pub fn plan(&self, shards: usize, key_loads: &[(u64, u64)]) -> FxHashMap<u64, u32> {
        assert!(shards >= 1, "at least one shard");
        let total: u64 = key_loads.iter().map(|(_, n)| n).sum();
        if total == 0 || shards < 2 {
            return FxHashMap::default();
        }
        let ideal = total as f64 / shards as f64;
        let mut heavy: Vec<(u64, u64)> = key_loads
            .iter()
            .copied()
            .filter(|&(_, n)| n as f64 > ideal)
            .collect();
        // Heaviest first; hash tiebreak keeps the plan deterministic.
        heavy.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        heavy.truncate(self.max_overrides);
        if heavy.is_empty() {
            return FxHashMap::default();
        }
        // Base load per shard with the heavy keys lifted out of their hash
        // shards, then greedy least-loaded placement.
        let mut loads = vec![0u64; shards];
        for &(hash, n) in key_loads {
            if !heavy.iter().any(|&(h, _)| h == hash) {
                loads[(hash % shards as u64) as usize] += n;
            }
        }
        let mut overrides = FxHashMap::default();
        for (hash, n) in heavy {
            let target = loads
                .iter()
                .enumerate()
                .min_by_key(|(i, &l)| (l, *i))
                .map(|(i, _)| i)
                .expect("non-empty fleet");
            loads[target] += n;
            overrides.insert(hash, target as u32);
        }
        overrides
    }
}

/// A reorder buffer that restores global submission order from
/// shard-interleaved stamped outputs.
///
/// The merger is **routing-epoch aware**: a live resize tears the worker
/// fleet down and re-spawns it, restarting the gap-free sequence space
/// from 0 under a new epoch ([`begin_epoch`](Self::begin_epoch)). A stamp
/// from an older epoch arriving after the boundary is behind the release
/// cursor *by construction* (its epoch was fully released before the
/// boundary), so it is classified late — exactly like a same-epoch
/// re-delivery after release.
#[derive(Debug)]
pub struct SequenceMerger<T> {
    epoch: u64,
    next: u64,
    pending: BTreeMap<u64, T>,
    late: u64,
    duplicates: u64,
    max_pending: usize,
}

impl<T> Default for SequenceMerger<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SequenceMerger<T> {
    /// An empty merger in epoch 0, expecting sequence 0 first.
    pub fn new() -> Self {
        Self::with_epoch(0)
    }

    /// An empty merger starting in `epoch` — the resume path after a
    /// resize: the re-spawned executor's merger continues the epoch
    /// numbering, so stale pre-resize stamps stay classifiable.
    pub fn with_epoch(epoch: u64) -> Self {
        Self {
            epoch,
            next: 0,
            pending: BTreeMap::new(),
            late: 0,
            duplicates: 0,
            max_pending: 0,
        }
    }

    /// The current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Crosses a routing-epoch boundary: bumps the epoch and restarts the
    /// sequence space at 0. The previous epoch must be fully drained — the
    /// resize barrier guarantees every pre-resize record merged before the
    /// fleet is torn down.
    ///
    /// # Panics
    /// Panics when values are still buffered (the boundary would orphan
    /// them).
    pub fn begin_epoch(&mut self) {
        assert!(
            self.pending.is_empty(),
            "routing-epoch boundary with {} value(s) still buffered",
            self.pending.len()
        );
        self.epoch += 1;
        self.next = 0;
    }

    /// Offers one stamped value; appends to `out` every value that became
    /// deliverable in order (possibly none, possibly many).
    ///
    /// A value whose sequence the merger has already released past —
    /// `global_seq < next` within the current epoch (a re-delivery after
    /// release, or a late arrival after an upstream lag skip), or any
    /// stamp from an **older epoch** (released in full before the resize
    /// boundary) — is dropped and counted as [`late`](Self::late); a value
    /// whose sequence is already buffered waiting for a gap is dropped and
    /// counted as [`duplicates`](Self::duplicates). The two failure modes
    /// are distinct: late records are an ordering violation, duplicates an
    /// at-most-once violation. A stamp from a *future* epoch is a protocol
    /// violation (the boundary starts only after the prior epoch fully
    /// drained) and is counted late as well, defensively.
    pub fn push(&mut self, epoch: u64, global_seq: u64, value: T, out: &mut Vec<T>) {
        if epoch != self.epoch || global_seq < self.next {
            self.late += 1;
            return;
        }
        if self.pending.contains_key(&global_seq) {
            self.duplicates += 1;
            return;
        }
        self.pending.insert(global_seq, value);
        self.max_pending = self.max_pending.max(self.pending.len());
        while let Some(v) = self.pending.remove(&self.next) {
            out.push(v);
            self.next += 1;
        }
    }

    /// The next global sequence number the merger will release — equal to
    /// the number of values released so far.
    pub fn released(&self) -> u64 {
        self.next
    }

    /// Values buffered waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of the reorder buffer.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Stamped values that arrived after their sequence was already
    /// released (must be 0 in a healthy pipeline).
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Stamped values that arrived twice while the first copy was still
    /// buffered (must be 0 in a healthy pipeline).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// `true` when nothing is buffered out of order.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

/// One shard's worth of pipeline: a stateful per-key stage.
///
/// `on_record` is called once per routed record, in submission order for
/// records sharing a key. `on_flush`/`snapshot` answer the corresponding
/// barriers.
pub trait ShardStage: Send + 'static {
    /// Input record type.
    type In: Send + Clone + 'static;
    /// Per-record output type.
    type Out: Send + Clone + 'static;
    /// End-of-stream output type.
    type Flush: Send + Clone + 'static;
    /// Point-in-time snapshot type.
    type Snapshot: Send + Clone + 'static;
    /// Durable checkpoint state type.
    type Checkpoint: Send + Clone + 'static;
    /// Stage metrics type (e.g. a `MetricsSnapshot`).
    type Metrics: Send + Clone + 'static;

    /// Processes one record.
    fn on_record(&mut self, input: Self::In) -> Self::Out;
    /// Processes a run of records as one batch, draining `inputs` and
    /// appending exactly one output per input to `out`, in order. Workers
    /// feed every record through this hook (runs are cut at barriers and
    /// poll-batch boundaries), so a stage with a batch-optimised path —
    /// e.g. the real-time layer's columnar ingest — overrides it; the
    /// default simply loops [`on_record`](Self::on_record) and must stay
    /// observably identical to per-record processing.
    fn on_batch(&mut self, inputs: &mut Vec<Self::In>, out: &mut Vec<Self::Out>) {
        for input in inputs.drain(..) {
            out.push(self.on_record(input));
        }
    }
    /// Emits end-of-stream state (e.g. trailing synopses).
    fn on_flush(&mut self) -> Self::Flush;
    /// Reports a point-in-time snapshot (e.g. health).
    fn snapshot(&self) -> Self::Snapshot;
    /// Captures durable checkpoint state, restorable into a fresh stage.
    fn checkpoint(&self) -> Self::Checkpoint;
    /// Reports the stage's metrics (answering the metrics barrier).
    fn metrics(&self) -> Self::Metrics;
}

/// Capacity and pacing knobs of the sharded executor.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Worker thread / shard count.
    pub shards: usize,
    /// Bounded capacity of each shard's input topic; a full queue
    /// backpressures [`ShardedExecutor::submit`].
    pub queue_capacity: usize,
    /// Capacity of the merged-output topic; `None` = unbounded (the
    /// coordinator drains it on every submit, so it stays small in
    /// practice).
    pub output_capacity: Option<usize>,
    /// Bounded admission window: the maximum number of records in flight
    /// at once (submitted but not yet released by the merger, wherever
    /// they sit — shard queue, stage, output topic or reorder buffer).
    /// [`submit`](ShardedExecutor::submit)/[`submit_batch`](ShardedExecutor::submit_batch)
    /// drain-and-wait when the window is full, so the reorder buffer is
    /// hard-bounded: `SequenceMerger::max_pending() ≤ max_in_flight` on
    /// every run. `None` disables admission control (in-flight records are
    /// then bounded only by the shard queue capacities) — a throughput
    /// knob that forfeits the latency bound.
    pub max_in_flight: Option<usize>,
    /// Upper bound on one event-driven handoff wait (liveness check
    /// granularity, not a loss threshold — handoffs retry forever; waits
    /// are condvar-signalled and normally end well before this cap).
    pub handoff_timeout: Duration,
    /// How long a barrier ([`flush_all`](ShardedExecutor::flush_all),
    /// [`snapshot_all`](ShardedExecutor::snapshot_all), `finish`) waits for
    /// worker acknowledgements before declaring a shard dead.
    pub barrier_timeout: Duration,
    /// Whether the executor keeps its own observability instruments
    /// (per-shard queue-depth gauges, merge-buffer occupancy, submit→merge
    /// latency). Disabling removes all metric cost from the submit path.
    pub metrics: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            output_capacity: None,
            max_in_flight: Some(4096),
            handoff_timeout: Duration::from_millis(200),
            barrier_timeout: Duration::from_secs(60),
            metrics: true,
        }
    }
}

impl ShardedConfig {
    /// A config with the given shard count and defaults otherwise.
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// A shard worker died mid-run (a stage panic escaped `on_record`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// Which shard.
    pub shard: u32,
    /// The panic message, when it was a string.
    pub message: String,
}

impl std::fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} worker panicked: {}", self.shard, self.message)
    }
}

impl std::error::Error for ShardPanic {}

/// Everything `finish` hands back after a clean drain.
#[derive(Debug)]
pub struct FinishedRun<S: ShardStage> {
    /// Merged outputs not yet taken via `poll`, in global order.
    pub outputs: Vec<S::Out>,
    /// The per-shard stages, in shard order, for post-run inspection.
    pub stages: Vec<S>,
    /// Records submitted over the executor's lifetime.
    pub submitted: u64,
    /// Outputs released by the merger over the executor's lifetime
    /// (== `submitted` on a lossless run).
    pub merged: u64,
    /// Stamped outputs that arrived after their sequence was already
    /// released (must be 0).
    pub late: u64,
    /// Duplicate stamped outputs observed while the first copy was still
    /// pending (must be 0).
    pub duplicates: u64,
    /// High-water mark of the reorder buffer (never exceeds
    /// [`ShardedConfig::max_in_flight`] when the window is enabled).
    pub max_reorder: usize,
}

/// N worker threads, each owning one [`ShardStage`], fed over bounded
/// backpressured topics, with outputs merged back into submission order.
pub struct ShardedExecutor<S: ShardStage> {
    assigner: ShardAssigner,
    inputs: Vec<Arc<Topic<Directive<S::In>>>>,
    output_consumer: Consumer<Stamped<S::Out>>,
    flush_consumer: Consumer<(u32, S::Flush)>,
    snapshot_consumer: Consumer<(u32, S::Snapshot)>,
    checkpoint_consumer: Consumer<(u32, S::Checkpoint)>,
    metrics_consumer: Consumer<(u32, S::Metrics)>,
    workers: Vec<JoinHandle<S>>,
    key_seqs: FxHashMap<u64, u64>,
    /// Records routed to each shard this epoch — the load signal behind
    /// the `exec.shard{i}.routed` gauges and [`RebalancePolicy`].
    shard_routed: Vec<u64>,
    epoch: u64,
    merger: SequenceMerger<Stamped<S::Out>>,
    ready: Vec<S::Out>,
    /// Reused buffer for outputs released by one merger push-batch.
    released_scratch: Vec<Stamped<S::Out>>,
    next_seq: u64,
    max_in_flight: Option<usize>,
    barrier_timeout: Duration,
    obs: ObsRegistry,
    queue_depth_gauges: Vec<Gauge>,
    routed_gauges: Vec<Gauge>,
    merge_pending_gauge: Gauge,
    merge_late_gauge: Gauge,
    merge_duplicates_gauge: Gauge,
    in_flight_gauge: Gauge,
    submit_to_merge_ns: LogHistogram,
}

impl<S: ShardStage> ShardedExecutor<S> {
    /// Spawns the shard workers. `make` is called once per shard, on the
    /// caller's thread, to build that shard's stage.
    pub fn new(config: ShardedConfig, make: impl FnMut(u32) -> S) -> Self {
        let assigner = ShardAssigner::new(config.shards);
        Self::with_assigner(config, assigner, 0, make)
    }

    /// Spawns the shard workers under an explicit routing assigner and
    /// epoch — the resume path after a live resize: the new fleet carries
    /// the rebalanced routes and continues the epoch numbering, so any
    /// stale pre-resize stamp is classifiable. `config.shards` must match
    /// the assigner's shard count.
    pub fn with_assigner(
        config: ShardedConfig,
        assigner: ShardAssigner,
        epoch: u64,
        mut make: impl FnMut(u32) -> S,
    ) -> Self {
        assert_eq!(
            config.shards,
            assigner.shards(),
            "config and assigner disagree on the shard count"
        );
        // Executor-internal topics use a zero block timeout: a full topic
        // refuses the publish immediately and the caller parks on
        // `wait_for_space`/`poll_wait` (doing productive work — draining —
        // in between) instead of blocking inside the publish where it can
        // drain nothing.
        let output = Topic::with_config(
            "shard-outputs",
            TopicConfig {
                capacity: config.output_capacity,
                policy: OverflowPolicy::Block,
                block_timeout: Duration::ZERO,
            },
        );
        let output_consumer = output.consumer();
        let flushes: Arc<Topic<(u32, S::Flush)>> = Topic::new("shard-flushes");
        let flush_consumer = flushes.consumer();
        let snapshots: Arc<Topic<(u32, S::Snapshot)>> = Topic::new("shard-snapshots");
        let snapshot_consumer = snapshots.consumer();
        let checkpoints: Arc<Topic<(u32, S::Checkpoint)>> = Topic::new("shard-checkpoints");
        let checkpoint_consumer = checkpoints.consumer();
        let metrics: Arc<Topic<(u32, S::Metrics)>> = Topic::new("shard-metrics");
        let metrics_consumer = metrics.consumer();
        let obs = if config.metrics {
            ObsRegistry::new()
        } else {
            ObsRegistry::disabled()
        };
        let mut inputs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards as u32 {
            let input: Arc<Topic<Directive<S::In>>> = Topic::with_config(
                format!("shard-{shard}-input"),
                TopicConfig {
                    capacity: Some(config.queue_capacity),
                    policy: OverflowPolicy::Block,
                    block_timeout: Duration::ZERO,
                },
            );
            let stage = make(shard);
            let worker = {
                let input = Arc::clone(&input);
                let output = Arc::clone(&output);
                let flushes = Arc::clone(&flushes);
                let snapshots = Arc::clone(&snapshots);
                let checkpoints = Arc::clone(&checkpoints);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("datacron-shard-{shard}"))
                    .spawn(move || {
                        worker_loop(
                            shard,
                            stage,
                            input,
                            output,
                            flushes,
                            snapshots,
                            checkpoints,
                            metrics,
                        )
                    })
                    .expect("spawn shard worker")
            };
            inputs.push(input);
            workers.push(worker);
        }
        let queue_depth_gauges = (0..config.shards)
            .map(|shard| obs.gauge(&format!("exec.shard{shard}.queue_depth")))
            .collect();
        let routed_gauges = (0..config.shards)
            .map(|shard| obs.gauge(&format!("exec.shard{shard}.routed")))
            .collect();
        let merge_pending_gauge = obs.gauge("exec.merge.pending");
        let merge_late_gauge = obs.gauge("exec.merge.late");
        let merge_duplicates_gauge = obs.gauge("exec.merge.duplicates");
        let in_flight_gauge = obs.gauge("exec.in_flight");
        let submit_to_merge_ns = obs.histogram("exec.submit_to_merge_ns");
        Self {
            shard_routed: vec![0; config.shards],
            assigner,
            inputs,
            output_consumer,
            flush_consumer,
            snapshot_consumer,
            checkpoint_consumer,
            metrics_consumer,
            workers,
            key_seqs: FxHashMap::default(),
            epoch,
            merger: SequenceMerger::with_epoch(epoch),
            ready: Vec::new(),
            released_scratch: Vec::new(),
            next_seq: 0,
            max_in_flight: config.max_in_flight,
            barrier_timeout: config.barrier_timeout,
            obs,
            queue_depth_gauges,
            routed_gauges,
            merge_pending_gauge,
            merge_late_gauge,
            merge_duplicates_gauge,
            in_flight_gauge,
            submit_to_merge_ns,
        }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.assigner.shards()
    }

    /// The routing assigner (shard count + hot-key overrides).
    pub fn assigner(&self) -> &ShardAssigner {
        &self.assigner
    }

    /// The routing epoch this fleet runs under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records routed to each shard this epoch, in shard order — the load
    /// signal for [`RebalancePolicy`].
    pub fn shard_loads(&self) -> &[u64] {
        &self.shard_routed
    }

    /// Records routed per key hash this epoch, unsorted — the heavy-hitter
    /// signal for [`RebalancePolicy::plan`].
    pub fn key_loads(&self) -> Vec<(u64, u64)> {
        self.key_seqs.iter().map(|(&h, &n)| (h, n)).collect()
    }

    /// Records submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    /// Outputs merged back into global order so far.
    pub fn merged(&self) -> u64 {
        self.merger.released()
    }

    /// Records in flight: submitted but not yet released by the merger.
    pub fn in_flight(&self) -> usize {
        (self.next_seq - self.merger.released()) as usize
    }

    /// Routes one keyed record to its shard, blocking (backpressure) while
    /// the admission window or that shard's queue is full. Returns the
    /// record's stamps.
    ///
    /// Also opportunistically drains finished outputs into the internal
    /// ready buffer, so a submit-only loop cannot deadlock against a
    /// bounded output topic.
    pub fn submit(&mut self, key: &impl Hash, input: S::In) -> SeqStamp {
        self.await_admission();
        let key_hash = fx_hash(key);
        let shard = self.assigner.assign_hashed(key_hash);
        let key_seq = self.key_seqs.entry(key_hash).or_insert(0);
        let stamp = SeqStamp {
            epoch: self.epoch,
            global_seq: self.next_seq,
            shard,
            key_seq: *key_seq,
        };
        *key_seq += 1;
        self.next_seq += 1;
        self.shard_routed[shard as usize] += 1;
        let submitted_at = if self.obs.is_enabled() { Some(Instant::now()) } else { None };
        let mut msg = Directive::Record(Stamped { stamp, submitted_at, value: input });
        loop {
            match self.inputs[shard as usize].try_publish(msg) {
                Ok(_) => break,
                Err(err) => {
                    // Backpressure: free output space, then park until the
                    // worker consumes (condvar-woken); never drop.
                    msg = err.into_inner();
                    self.drain_outputs();
                    if self.inputs[shard as usize].wait_for_space(COORD_SPACE_WAIT).is_err() {
                        self.panic_if_worker_died();
                    }
                }
            }
        }
        self.drain_outputs();
        stamp
    }

    /// Submits a batch of keyed records with **one handoff per shard**:
    /// records are grouped by destination shard and appended to each shard
    /// queue under a single lock acquisition ([`Topic::publish_batch_all`]),
    /// retrying refused suffixes so nothing is lost. The admission window
    /// applies to every record: the batch is admitted in window-sized
    /// chunks, draining between chunks, so `max_pending ≤ max_in_flight`
    /// holds mid-batch too.
    pub fn submit_batch<K: Hash>(&mut self, items: impl IntoIterator<Item = (K, S::In)>) {
        let shards = self.assigner.shards();
        let timed = self.obs.is_enabled();
        let mut per_shard: Vec<Vec<Directive<S::In>>> = (0..shards).map(|_| Vec::new()).collect();
        let mut items = items.into_iter();
        loop {
            self.await_admission();
            let budget = match self.max_in_flight {
                Some(max) => max.max(1) - self.in_flight(),
                None => usize::MAX,
            };
            let mut taken = 0usize;
            for (key, input) in items.by_ref().take(budget) {
                let submitted_at = if timed { Some(Instant::now()) } else { None };
                let key_hash = fx_hash(&key);
                let shard = self.assigner.assign_hashed(key_hash);
                let key_seq = self.key_seqs.entry(key_hash).or_insert(0);
                let stamp = SeqStamp {
                    epoch: self.epoch,
                    global_seq: self.next_seq,
                    shard,
                    key_seq: *key_seq,
                };
                *key_seq += 1;
                self.next_seq += 1;
                self.shard_routed[shard as usize] += 1;
                per_shard[shard as usize]
                    .push(Directive::Record(Stamped { stamp, submitted_at, value: input }));
                taken += 1;
            }
            if taken == 0 {
                break;
            }
            for (shard, batch) in per_shard.iter_mut().enumerate() {
                while !batch.is_empty() {
                    let (_, refused) = self.inputs[shard].publish_batch_all(batch.drain(..));
                    *batch = refused;
                    if !batch.is_empty() {
                        self.drain_outputs();
                        if self.inputs[shard].wait_for_space(COORD_SPACE_WAIT).is_err() {
                            self.panic_if_worker_died();
                        }
                    }
                }
            }
            self.drain_outputs();
        }
    }

    /// Takes every output whose global order is already reassembled, in
    /// submission order. Non-blocking.
    pub fn poll(&mut self) -> Vec<S::Out> {
        self.drain_outputs();
        std::mem::take(&mut self.ready)
    }

    /// Like [`poll`](Self::poll), but when nothing is ready yet, parks on
    /// the output topic (condvar-woken by the next worker publish) for up
    /// to `timeout`. The event-driven way to observe merges promptly
    /// without spinning — a low-rate consumer sees each output
    /// microseconds after its worker finishes, not at its own next poll.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Vec<S::Out> {
        self.drain_outputs();
        if self.ready.is_empty() && self.in_flight() > 0 {
            let batch = self
                .output_consumer
                .poll_wait(OUTPUT_DRAIN_BATCH, timeout)
                .unwrap_or_else(|lagged| {
                    unreachable!("Block-bounded output topic never truncates unread data: {lagged:?}")
                });
            self.absorb(batch);
            self.drain_outputs();
        }
        std::mem::take(&mut self.ready)
    }

    /// Blocks while the admission window is full, draining outputs
    /// (event-driven: parked on the output consumer, woken by worker
    /// publishes) until at least one slot frees.
    fn await_admission(&mut self) {
        let Some(max) = self.max_in_flight else {
            return;
        };
        let max = max.max(1);
        if self.in_flight() < max {
            return;
        }
        loop {
            self.drain_outputs();
            if self.in_flight() < max {
                return;
            }
            let batch = self
                .output_consumer
                .poll_wait(OUTPUT_DRAIN_BATCH, OUTPUT_WAIT)
                .unwrap_or_else(|lagged| {
                    unreachable!("Block-bounded output topic never truncates unread data: {lagged:?}")
                });
            if batch.is_empty() {
                // Sustained silence with a full window: make sure the
                // records we are waiting on can still arrive.
                self.panic_if_worker_died();
            }
            self.absorb(batch);
        }
    }

    /// Fails fast when a shard worker died while the executor is still
    /// accepting records: its queued records can never merge, so a
    /// submit-side wait would hang forever. Never called on the shutdown
    /// path, where finished workers are the expected state.
    fn panic_if_worker_died(&mut self) {
        for shard in 0..self.workers.len() {
            if self.workers[shard].is_finished() {
                let message = match self.workers.remove(shard).join() {
                    Err(payload) => crate::operator::panic_message(payload.as_ref()),
                    Ok(_) => "worker exited without a shutdown directive".to_string(),
                };
                panic!("{}", ShardPanic { shard: shard as u32, message });
            }
        }
    }

    fn drain_outputs(&mut self) {
        loop {
            let batch = self
                .output_consumer
                .poll(OUTPUT_DRAIN_BATCH)
                .unwrap_or_else(|lagged| {
                    unreachable!("Block-bounded output topic never truncates unread data: {lagged:?}")
                });
            if batch.is_empty() {
                break;
            }
            self.absorb(batch);
        }
    }

    /// Feeds one batch of stamped worker outputs through the reorder
    /// buffer, recording submit→merge latency for every record released:
    /// one release instant per batch (they became globally ordered
    /// together, at this moment) against each record's own routing-time
    /// stamp.
    fn absorb(&mut self, batch: Vec<Stamped<S::Out>>) {
        for stamped in batch {
            self.merger.push(
                stamped.stamp.epoch,
                stamped.stamp.global_seq,
                stamped,
                &mut self.released_scratch,
            );
        }
        if self.released_scratch.is_empty() {
            return;
        }
        let now = if self.obs.is_enabled() { Some(Instant::now()) } else { None };
        for stamped in self.released_scratch.drain(..) {
            if let (Some(now), Some(t0)) = (now, stamped.submitted_at) {
                let ns = now.duration_since(t0).as_nanos();
                self.submit_to_merge_ns.record(ns.min(u64::MAX as u128) as u64);
            }
            self.ready.push(stamped.value);
        }
    }

    /// Routes one directive to a shard queue, draining outputs between
    /// backpressure retries so a worker blocked on a full output topic can
    /// always make progress (no coordinator/worker deadlock). No liveness
    /// check: directives are sent on the shutdown path too, where finished
    /// workers are expected; a dead shard is caught by the barrier timeout
    /// or the `finish` join.
    fn send_directive(&mut self, shard: usize, msg: Directive<S::In>) {
        let mut msg = msg;
        loop {
            match self.inputs[shard].try_publish(msg) {
                Ok(_) => return,
                Err(err) => {
                    msg = err.into_inner();
                    self.drain_outputs();
                    let _ = self.inputs[shard].wait_for_space(COORD_SPACE_WAIT);
                }
            }
        }
    }

    /// End-of-stream barrier: every worker finishes its queued records,
    /// emits its flush output, and acknowledges. Returns the per-shard
    /// flush outputs in shard order.
    ///
    /// # Panics
    /// Panics with the dead shard's id when a worker fails to acknowledge
    /// within the barrier timeout.
    pub fn flush_all(&mut self) -> Vec<S::Flush> {
        for shard in 0..self.shards() {
            self.send_directive(shard, Directive::Flush);
        }
        let shards = self.shards();
        let mut got: Vec<Option<S::Flush>> = (0..shards).map(|_| None).collect();
        self.await_barrier("flush", &mut got, |exec, max, t| {
            exec.flush_consumer
                .poll_wait(max, t)
                .unwrap_or_else(|lagged| unreachable!("unbounded topic never lags: {lagged:?}"))
        });
        self.drain_outputs();
        got.into_iter().map(|f| f.expect("all shards acknowledged")).collect()
    }

    /// Snapshot barrier: every worker reports its stage snapshot after
    /// finishing its queued records. Returns snapshots in shard order.
    pub fn snapshot_all(&mut self) -> Vec<S::Snapshot> {
        for shard in 0..self.shards() {
            self.send_directive(shard, Directive::Snapshot);
        }
        let shards = self.shards();
        let mut got: Vec<Option<S::Snapshot>> = (0..shards).map(|_| None).collect();
        self.await_barrier("snapshot", &mut got, |exec, max, t| {
            exec.snapshot_consumer
                .poll_wait(max, t)
                .unwrap_or_else(|lagged| unreachable!("unbounded topic never lags: {lagged:?}"))
        });
        self.drain_outputs();
        got.into_iter().map(|s| s.expect("all shards acknowledged")).collect()
    }

    /// Checkpoint barrier: every worker captures its stage's durable state
    /// after finishing its queued records. Returns checkpoints in shard
    /// order. Like [`snapshot_all`](Self::snapshot_all), this is a
    /// consistent cut: every record submitted before the barrier is
    /// reflected, none submitted after.
    pub fn checkpoint_all(&mut self) -> Vec<S::Checkpoint> {
        for shard in 0..self.shards() {
            self.send_directive(shard, Directive::Checkpoint);
        }
        let shards = self.shards();
        let mut got: Vec<Option<S::Checkpoint>> = (0..shards).map(|_| None).collect();
        self.await_barrier("checkpoint", &mut got, |exec, max, t| {
            exec.checkpoint_consumer
                .poll_wait(max, t)
                .unwrap_or_else(|lagged| unreachable!("unbounded topic never lags: {lagged:?}"))
        });
        self.drain_outputs();
        got.into_iter().map(|c| c.expect("all shards acknowledged")).collect()
    }

    /// Metrics barrier: every worker reports its stage's metrics after
    /// finishing its queued records. Returns them in shard order. Like the
    /// other barriers this is a consistent cut, so count-typed stage
    /// metrics summed across shards equal a single-threaded run's.
    pub fn metrics_all(&mut self) -> Vec<S::Metrics> {
        for shard in 0..self.shards() {
            self.send_directive(shard, Directive::Metrics);
        }
        let shards = self.shards();
        let mut got: Vec<Option<S::Metrics>> = (0..shards).map(|_| None).collect();
        self.await_barrier("metrics", &mut got, |exec, max, t| {
            exec.metrics_consumer
                .poll_wait(max, t)
                .unwrap_or_else(|lagged| unreachable!("unbounded topic never lags: {lagged:?}"))
        });
        self.drain_outputs();
        got.into_iter().map(|m| m.expect("all shards acknowledged")).collect()
    }

    /// The executor's own instruments (timing/occupancy-typed only, never
    /// counters — so merged per-shard counter metrics stay bit-identical to
    /// a single-threaded run): per-shard queue depth, merge-buffer
    /// occupancy, in-flight records, and submit→merge latency. Gauges are
    /// refreshed at call time. Empty when metrics are disabled.
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        if self.obs.is_enabled() {
            for (shard, gauge) in self.queue_depth_gauges.iter().enumerate() {
                gauge.set(self.inputs[shard].retained() as i64);
            }
            for (shard, gauge) in self.routed_gauges.iter().enumerate() {
                gauge.set(self.shard_routed[shard] as i64);
            }
            self.merge_pending_gauge.set(self.merger.pending() as i64);
            self.in_flight_gauge
                .set((self.next_seq - self.merger.released()) as i64);
            self.merge_late_gauge.set(self.merger.late() as i64);
            self.merge_duplicates_gauge
                .set(self.merger.duplicates() as i64);
        }
        self.obs.snapshot()
    }

    /// Waits for one acknowledgement per shard, draining outputs the whole
    /// time so workers blocked on a bounded output topic can reach the
    /// barrier.
    fn await_barrier<A>(
        &mut self,
        what: &str,
        got: &mut [Option<A>],
        mut poll: impl FnMut(&mut Self, usize, Duration) -> Vec<(u32, A)>,
    ) {
        let shards = got.len();
        let mut remaining = shards;
        let deadline = std::time::Instant::now() + self.barrier_timeout;
        while remaining > 0 {
            self.drain_outputs();
            assert!(
                std::time::Instant::now() < deadline,
                "{what} barrier timed out with {remaining} shard(s) unresponsive"
            );
            let batch = poll(self, shards, Duration::from_millis(10));
            for (shard, ack) in batch {
                if got[shard as usize].replace(ack).is_none() {
                    remaining -= 1;
                }
            }
        }
    }

    /// Shuts the workers down, drains every in-flight record, and returns
    /// the merged remainder plus the per-shard stages. Lossless: on return,
    /// `merged == submitted` unless a worker died, in which case this
    /// panics with the shard's [`ShardPanic`] message.
    pub fn finish(mut self) -> FinishedRun<S> {
        for shard in 0..self.shards() {
            self.send_directive(shard, Directive::Shutdown);
        }
        // Event-driven wind-down: park on the output topic and absorb until
        // every submitted record has merged — at that point no worker can be
        // blocked publishing, so joining is safe and immediate. Waking is
        // condvar-driven (worker publishes), not sleep-quantized. If a
        // worker died mid-run some records can never merge; the all-finished
        // check below breaks the wait so the join can surface its panic.
        while self.merger.released() < self.next_seq {
            let batch = self
                .output_consumer
                .poll_wait(OUTPUT_DRAIN_BATCH, OUTPUT_WAIT)
                .unwrap_or_else(|lagged| {
                    unreachable!("Block-bounded output topic never truncates unread data: {lagged:?}")
                });
            let quiet = batch.is_empty();
            self.absorb(batch);
            if quiet && self.workers.iter().all(|w| w.is_finished()) {
                self.drain_outputs();
                break;
            }
        }
        let mut stages = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.drain(..).enumerate() {
            match worker.join() {
                Ok(stage) => stages.push(stage),
                Err(payload) => {
                    let message = crate::operator::panic_message(payload.as_ref());
                    panic!("{}", ShardPanic { shard: shard as u32, message });
                }
            }
        }
        // All workers have exited; everything they published is in the
        // output topic.
        self.drain_outputs();
        let outputs = std::mem::take(&mut self.ready);
        assert!(
            self.merger.is_drained(),
            "merger holds {} out-of-order outputs after full drain (lost records?)",
            self.merger.pending()
        );
        FinishedRun {
            outputs,
            stages,
            submitted: self.next_seq,
            merged: self.merger.released(),
            late: self.merger.late(),
            duplicates: self.merger.duplicates(),
            max_reorder: self.merger.max_pending(),
        }
    }
}

/// Publishes one directive, retrying on backpressure until it is appended.
/// Parks on the topic's condvar between attempts instead of busy-spinning.
///
/// Returns `false` — abandoning the message — when the topic reports
/// [`SpaceWaitError::NoConsumers`]: every reader is gone, so no retry can
/// ever succeed and looping would hang the worker forever (the
/// consumer-drop-while-parked pathology).
fn publish_reliable<T: Clone>(topic: &Topic<T>, msg: T) -> bool {
    let mut msg = msg;
    loop {
        match topic.try_publish(msg) {
            Ok(_) => return true,
            Err(err) => {
                msg = err.into_inner();
                if topic.wait_for_space(WORKER_PUBLISH_WAIT) == Err(SpaceWaitError::NoConsumers) {
                    return false;
                }
            }
        }
    }
}

/// How many directives a worker pulls per wakeup.
const WORKER_BATCH: usize = 256;
/// How long a worker parks waiting for input before re-checking.
const WORKER_PARK: Duration = Duration::from_millis(50);
/// How long a worker parks waiting for output-topic space before retrying.
const WORKER_PUBLISH_WAIT: Duration = Duration::from_millis(50);
/// Upper bound on one coordinator park for input-queue space. Short so the
/// coordinator keeps interleaving output drains (the usual reason a worker
/// is stuck); the common wake path is the worker's consume → condvar.
const COORD_SPACE_WAIT: Duration = Duration::from_millis(1);
/// Upper bound on one coordinator park for output data.
const OUTPUT_WAIT: Duration = Duration::from_millis(50);
/// How many outputs the coordinator pulls per drain step.
const OUTPUT_DRAIN_BATCH: usize = 4096;

#[allow(clippy::too_many_arguments)]
fn worker_loop<S: ShardStage>(
    shard: u32,
    mut stage: S,
    input: Arc<Topic<Directive<S::In>>>,
    output: Arc<Topic<Stamped<S::Out>>>,
    flushes: Arc<Topic<(u32, S::Flush)>>,
    snapshots: Arc<Topic<(u32, S::Snapshot)>>,
    checkpoints: Arc<Topic<(u32, S::Checkpoint)>>,
    metrics: Arc<Topic<(u32, S::Metrics)>>,
) -> S {
    let mut consumer = input.consumer();
    let mut out_buf: Vec<Stamped<S::Out>> = Vec::new();
    // Run accumulators: consecutive records are grouped and handed to the
    // stage's `on_batch` in one call (runs are cut at barriers and at
    // poll-batch ends); stamps ride in a parallel array and are re-zipped
    // with the outputs, so stamping is untouched by batching.
    let mut run_inputs: Vec<S::In> = Vec::new();
    let mut run_stamps: Vec<(SeqStamp, Option<Instant>)> = Vec::new();
    let mut run_scratch: Vec<S::Out> = Vec::new();
    loop {
        let batch = consumer
            .poll_wait(WORKER_BATCH, WORKER_PARK)
            .unwrap_or_else(|lagged| {
                unreachable!("Block-bounded input topic never truncates unread data: {lagged:?}")
            });
        // Prompt handoff: a partial batch means the input queue was
        // momentarily empty — the pipeline is in tail/low-rate mode, so
        // publish each output as it is produced (latency over batching). A
        // full batch means backlog — amortize the handoff lock per batch.
        let prompt = batch.len() < WORKER_BATCH;
        for directive in batch {
            match directive {
                Directive::Record(stamped) => {
                    run_stamps.push((stamped.stamp, stamped.submitted_at));
                    run_inputs.push(stamped.value);
                    if prompt || run_inputs.len() >= WORKER_BATCH {
                        drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                        if !flush_outputs(&output, &mut out_buf) {
                            return stage;
                        }
                    }
                }
                Directive::Flush => {
                    drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                    if !flush_outputs(&output, &mut out_buf)
                        || !publish_reliable(&flushes, (shard, stage.on_flush()))
                    {
                        return stage;
                    }
                }
                Directive::Snapshot => {
                    drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                    if !flush_outputs(&output, &mut out_buf)
                        || !publish_reliable(&snapshots, (shard, stage.snapshot()))
                    {
                        return stage;
                    }
                }
                Directive::Checkpoint => {
                    drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                    if !flush_outputs(&output, &mut out_buf)
                        || !publish_reliable(&checkpoints, (shard, stage.checkpoint()))
                    {
                        return stage;
                    }
                }
                Directive::Metrics => {
                    drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                    if !flush_outputs(&output, &mut out_buf)
                        || !publish_reliable(&metrics, (shard, stage.metrics()))
                    {
                        return stage;
                    }
                }
                Directive::Shutdown => {
                    drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
                    let _ = flush_outputs(&output, &mut out_buf);
                    return stage;
                }
            }
        }
        // Batched handoff: one publish per input batch, not per record.
        drain_run(&mut stage, &mut run_inputs, &mut run_stamps, &mut run_scratch, &mut out_buf);
        if !flush_outputs(&output, &mut out_buf) {
            // The coordinator's output consumer is gone: orderly exit
            // instead of retrying into the void forever.
            return stage;
        }
    }
}

/// Feeds the accumulated run through the stage's `on_batch` and re-zips
/// the outputs with their stamps into `out_buf`, leaving the run buffers
/// empty (allocations retained).
fn drain_run<S: ShardStage>(
    stage: &mut S,
    inputs: &mut Vec<S::In>,
    stamps: &mut Vec<(SeqStamp, Option<Instant>)>,
    scratch: &mut Vec<S::Out>,
    out_buf: &mut Vec<Stamped<S::Out>>,
) {
    if inputs.is_empty() {
        return;
    }
    stage.on_batch(inputs, scratch);
    debug_assert!(inputs.is_empty(), "on_batch must drain its inputs");
    debug_assert_eq!(scratch.len(), stamps.len(), "on_batch must emit one output per input");
    for ((stamp, submitted_at), value) in stamps.drain(..).zip(scratch.drain(..)) {
        out_buf.push(Stamped { stamp, submitted_at, value });
    }
    inputs.clear();
}

/// Publishes the buffered outputs losslessly, retrying refused suffixes.
/// Parks on the topic's condvar (woken by the coordinator's drain) between
/// attempts instead of busy-spinning.
///
/// Returns `false` — with the undeliverable suffix still in `buf` — when
/// the topic has no live consumers left (the coordinator dropped its
/// output consumer): retrying can never succeed, so the worker must stop
/// instead of spinning forever.
fn flush_outputs<T: Clone>(topic: &Topic<T>, buf: &mut Vec<T>) -> bool {
    while !buf.is_empty() {
        let (_, refused) = topic.publish_batch_all(buf.drain(..));
        *buf = refused;
        if !buf.is_empty()
            && topic.wait_for_space(WORKER_PUBLISH_WAIT) == Err(SpaceWaitError::NoConsumers)
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles its input; counts records; flush reports the count.
    struct Doubler {
        seen: u64,
    }

    impl ShardStage for Doubler {
        type In = u64;
        type Out = u64;
        type Flush = u64;
        type Snapshot = u64;
        type Checkpoint = u64;
        type Metrics = u64;

        fn on_record(&mut self, input: u64) -> u64 {
            self.seen += 1;
            input * 2
        }

        fn on_flush(&mut self) -> u64 {
            self.seen
        }

        fn snapshot(&self) -> u64 {
            self.seen
        }

        fn checkpoint(&self) -> u64 {
            self.seen
        }

        fn metrics(&self) -> u64 {
            self.seen
        }
    }

    #[test]
    fn assigner_is_deterministic_and_stable() {
        let a = ShardAssigner::new(4);
        for key in 0..1000u64 {
            assert_eq!(a.assign(&key), a.assign(&key));
            assert!(a.assign(&key) < 4);
        }
        assert_eq!(ShardAssigner::new(1).assign(&99u64), 0);
    }

    #[test]
    fn merger_restores_global_order() {
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 2, "c", &mut out);
        m.push(0, 0, "a", &mut out);
        assert_eq!(out, vec!["a"]);
        m.push(0, 1, "b", &mut out);
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(m.is_drained());
        assert_eq!(m.released(), 3);
        assert_eq!(m.duplicates(), 0);
        assert_eq!(m.max_pending(), 2);
    }

    #[test]
    fn merger_counts_late_records() {
        // A sequence that was already released arrives again: it is *late*
        // (behind the release cursor), not a buffered duplicate.
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 0, 10, &mut out);
        m.push(0, 0, 10, &mut out);
        m.push(0, 1, 11, &mut out);
        m.push(0, 1, 11, &mut out);
        assert_eq!(out, vec![10, 11]);
        assert_eq!(m.late(), 2);
        assert_eq!(m.duplicates(), 0);
        assert_eq!(m.released(), 2);
    }

    #[test]
    fn merger_counts_buffered_duplicates() {
        // The same out-of-order sequence arrives twice while the first copy
        // is still buffered: a true duplicate, distinct from lateness.
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 2, 12, &mut out);
        m.push(0, 2, 12, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.duplicates(), 1);
        assert_eq!(m.late(), 0);
        m.push(0, 0, 10, &mut out);
        m.push(0, 1, 11, &mut out);
        assert_eq!(out, vec![10, 11, 12]);
        // Re-delivery after release flips to the late counter.
        m.push(0, 2, 12, &mut out);
        assert_eq!(m.duplicates(), 1);
        assert_eq!(m.late(), 1);
        assert_eq!(m.released(), 3);
        assert!(m.is_drained());
    }

    #[test]
    fn merger_clean_path_across_epoch_boundary() {
        // The clean resize path: epoch 0 fully drains, the boundary
        // crosses, epoch 1 restarts the sequence space at 0 — and nothing
        // is counted late or duplicate.
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 0, "a0", &mut out);
        m.push(0, 1, "a1", &mut out);
        assert!(m.is_drained());
        m.begin_epoch();
        assert_eq!(m.epoch(), 1);
        m.push(1, 1, "b1", &mut out);
        m.push(1, 0, "b0", &mut out);
        assert_eq!(out, vec!["a0", "a1", "b0", "b1"]);
        assert_eq!(m.late(), 0);
        assert_eq!(m.duplicates(), 0);
        assert_eq!(m.released(), 2, "sequence space restarted at the boundary");
        assert!(m.is_drained());
    }

    #[test]
    fn merger_classifies_stale_epoch_stamps_as_late() {
        // A pre-resize stamp straddling the boundary: its epoch was fully
        // released before the boundary, so it is late even though its
        // sequence number (1) is not behind the new epoch's cursor (0).
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 0, 10, &mut out);
        m.push(0, 1, 11, &mut out);
        m.begin_epoch();
        m.push(0, 1, 11, &mut out);
        assert_eq!(m.late(), 1, "stale-epoch re-delivery is late, not duplicate");
        assert_eq!(m.duplicates(), 0);
        // A current-epoch duplicate while buffered still counts as a
        // duplicate — the epoch check does not mask at-most-once tracking.
        m.push(1, 1, 21, &mut out);
        m.push(1, 1, 21, &mut out);
        assert_eq!(m.duplicates(), 1);
        m.push(1, 0, 20, &mut out);
        assert_eq!(out, vec![10, 11, 20, 21]);
        // A future-epoch stamp is a protocol violation, counted late
        // defensively rather than buffered against a cursor that will
        // never reach it.
        m.push(7, 0, 99, &mut out);
        assert_eq!(m.late(), 2);
        assert!(m.is_drained());
    }

    #[test]
    #[should_panic(expected = "still buffered")]
    fn epoch_boundary_with_buffered_values_panics() {
        let mut m = SequenceMerger::new();
        let mut out = Vec::new();
        m.push(0, 2, "c", &mut out);
        m.begin_epoch();
    }

    #[test]
    fn assigner_overrides_reroute_only_pinned_keys() {
        let plain = ShardAssigner::new(4);
        let hot = 777u64;
        let hot_hash = fx_hash(&hot);
        let pinned_shard = (plain.assign(&hot) + 1) % 4;
        let mut overrides = FxHashMap::default();
        overrides.insert(hot_hash, pinned_shard);
        let pinned = ShardAssigner::with_overrides(4, overrides);
        assert_eq!(pinned.assign(&hot), pinned_shard);
        for key in 0..500u64 {
            if key != hot {
                assert_eq!(pinned.assign(&key), plain.assign(&key), "key {key} unaffected");
            }
        }
    }

    #[test]
    fn rebalance_policy_isolates_heavy_keys() {
        // One key carries half the load over 4 shards: solo it exceeds the
        // ideal share, so the plan pins it; light keys are untouched.
        let key_loads: Vec<(u64, u64)> = (0..8u64)
            .map(|h| (h, if h == 3 { 700 } else { 100 }))
            .collect();
        let policy = RebalancePolicy::default();
        let plan = policy.plan(4, &key_loads);
        assert_eq!(plan.len(), 1, "only the heavy key is pinned: {plan:?}");
        assert!(plan.contains_key(&3));
        // Re-planning from the same loads is deterministic.
        assert_eq!(plan, policy.plan(4, &key_loads));
        // Uniform load plans nothing.
        let uniform: Vec<(u64, u64)> = (0..32u64).map(|h| (h, 10)).collect();
        assert!(policy.plan(4, &uniform).is_empty());
    }

    #[test]
    fn imbalance_floor_is_one_for_unsplittable_skew() {
        // A shard holding exactly one hot key cannot be split further:
        // the skew-adjusted metric reports 1.0, not max/mean.
        assert!((RebalancePolicy::imbalance(&[500, 100, 100, 100], 500) - 1.0).abs() < 1e-9);
        // Without key skew the metric is plain max/mean.
        assert!((RebalancePolicy::imbalance(&[200, 100, 100, 0], 10) - 2.0).abs() < 1e-9);
        assert!((RebalancePolicy::imbalance(&[], 0) - 1.0).abs() < 1e-9);
        assert!((RebalancePolicy::imbalance(&[0, 0], 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn executor_with_assigner_carries_epoch_and_counts_loads() {
        let assigner = ShardAssigner::new(2);
        let mut exec = ShardedExecutor::with_assigner(
            ShardedConfig::with_shards(2),
            assigner,
            3,
            |_| Doubler { seen: 0 },
        );
        assert_eq!(exec.epoch(), 3);
        for i in 0..100u64 {
            exec.submit(&(i % 10), i);
        }
        assert_eq!(exec.shard_loads().iter().sum::<u64>(), 100);
        let key_total: u64 = exec.key_loads().iter().map(|(_, n)| n).sum();
        assert_eq!(key_total, 100);
        let snap = exec.obs_snapshot();
        let routed: i64 = (0..2)
            .map(|s| snap.gauge(&format!("exec.shard{s}.routed")).unwrap())
            .sum();
        assert_eq!(routed, 100);
        let run = exec.finish();
        assert_eq!(run.merged, 100);
    }

    #[test]
    fn executor_outputs_in_submission_order() {
        for shards in [1usize, 2, 4] {
            let mut exec = ShardedExecutor::new(
                ShardedConfig::with_shards(shards),
                |_| Doubler { seen: 0 },
            );
            let mut got = Vec::new();
            for i in 0..500u64 {
                exec.submit(&(i % 37), i);
                got.extend(exec.poll());
            }
            let run = exec.finish();
            got.extend(run.outputs);
            assert_eq!(got, (0..500u64).map(|i| i * 2).collect::<Vec<_>>(), "{shards} shards");
            assert_eq!(run.submitted, 500);
            assert_eq!(run.merged, 500);
            assert_eq!(run.duplicates, 0);
            let total: u64 = run.stages.iter().map(|s| s.seen).sum();
            assert_eq!(total, 500, "every record processed exactly once");
        }
    }

    #[test]
    fn executor_batch_submit_is_equivalent() {
        let mut exec = ShardedExecutor::new(ShardedConfig::with_shards(3), |_| Doubler { seen: 0 });
        exec.submit_batch((0..300u64).map(|i| (i % 11, i)));
        let run = exec.finish();
        assert_eq!(run.outputs, (0..300u64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(run.merged, 300);
    }

    #[test]
    fn flush_and_snapshot_barriers_account_for_every_record() {
        let mut exec = ShardedExecutor::new(ShardedConfig::with_shards(4), |_| Doubler { seen: 0 });
        for i in 0..200u64 {
            exec.submit(&i, i);
        }
        let counts = exec.snapshot_all();
        assert_eq!(counts.iter().sum::<u64>(), 200, "barrier sees all prior records");
        let flushes = exec.flush_all();
        assert_eq!(flushes.iter().sum::<u64>(), 200);
        let run = exec.finish();
        assert_eq!(run.merged, 200);
    }

    #[test]
    fn checkpoint_barrier_is_a_consistent_cut() {
        let mut exec = ShardedExecutor::new(ShardedConfig::with_shards(3), |_| Doubler { seen: 0 });
        for i in 0..150u64 {
            exec.submit(&(i % 7), i);
        }
        let ckpts = exec.checkpoint_all();
        assert_eq!(ckpts.len(), 3);
        assert_eq!(ckpts.iter().sum::<u64>(), 150, "checkpoint covers all prior records");
        // Restoring fresh stages from the checkpoints and continuing must
        // account for every record exactly once.
        for i in 150..300u64 {
            exec.submit(&(i % 7), i);
        }
        let run = exec.finish();
        assert_eq!(run.merged, 300);
        let total: u64 = run.stages.iter().map(|s| s.seen).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn metrics_barrier_is_a_consistent_cut_and_obs_reflects_drain() {
        let mut exec = ShardedExecutor::new(ShardedConfig::with_shards(2), |_| Doubler { seen: 0 });
        for i in 0..100u64 {
            exec.submit(&(i % 9), i);
        }
        let metrics = exec.metrics_all();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics.iter().sum::<u64>(), 100, "every prior record is reflected");
        let snap = exec.obs_snapshot();
        assert_eq!(snap.gauge("exec.in_flight"), Some(0), "barrier drained everything");
        assert_eq!(snap.gauge("exec.merge.pending"), Some(0));
        assert!(snap.gauge("exec.shard0.queue_depth").is_some());
        assert!(snap.gauge("exec.shard1.queue_depth").is_some());
        let h = snap.histogram("exec.submit_to_merge_ns").expect("latency recorded");
        assert_eq!(h.count, 100, "one submit→merge sample per record");
        let run = exec.finish();
        assert_eq!(run.merged, 100);
    }

    #[test]
    fn disabled_metrics_cost_nothing_and_snapshot_is_empty() {
        let mut exec = ShardedExecutor::new(
            ShardedConfig { metrics: false, ..ShardedConfig::with_shards(2) },
            |_| Doubler { seen: 0 },
        );
        for i in 0..50u64 {
            exec.submit(&i, i);
        }
        // The stage-metrics barrier still works (it is independent of the
        // executor's own instruments)…
        assert_eq!(exec.metrics_all().iter().sum::<u64>(), 50);
        // …but the executor records nothing about itself.
        let snap = exec.obs_snapshot();
        assert!(snap.counters().is_empty());
        assert!(snap.gauges().is_empty());
        assert!(snap.histograms().is_empty());
        let run = exec.finish();
        assert_eq!(run.merged, 50);
    }

    #[test]
    fn bounded_queues_backpressure_without_loss() {
        let mut exec = ShardedExecutor::new(
            ShardedConfig {
                shards: 2,
                queue_capacity: 4,
                output_capacity: Some(8),
                ..ShardedConfig::default()
            },
            |_| Doubler { seen: 0 },
        );
        // Far more records than the queues hold: submission must block and
        // drain rather than drop.
        for i in 0..2000u64 {
            exec.submit(&(i % 5), i);
        }
        let run = exec.finish();
        assert_eq!(run.submitted, 2000);
        assert_eq!(run.merged, 2000);
        assert_eq!(run.duplicates, 0);
    }

    #[test]
    fn admission_window_bounds_the_reorder_buffer() {
        let mut exec = ShardedExecutor::new(
            ShardedConfig { max_in_flight: Some(8), ..ShardedConfig::with_shards(4) },
            |_| Doubler { seen: 0 },
        );
        let mut got = Vec::new();
        for i in 0..1000u64 {
            exec.submit(&(i % 13), i);
            assert!(exec.in_flight() <= 8, "window violated at record {i}");
            got.extend(exec.poll());
        }
        let run = exec.finish();
        got.extend(run.outputs);
        assert_eq!(got, (0..1000u64).map(|i| i * 2).collect::<Vec<_>>());
        assert!(
            run.max_reorder <= 8,
            "reorder buffer exceeded the admission window: {}",
            run.max_reorder
        );
        assert_eq!(run.merged, 1000);
        assert_eq!(run.late, 0);
        assert_eq!(run.duplicates, 0);
    }

    #[test]
    fn admission_window_bounds_batch_submission_too() {
        let mut exec = ShardedExecutor::new(
            ShardedConfig { max_in_flight: Some(16), ..ShardedConfig::with_shards(3) },
            |_| Doubler { seen: 0 },
        );
        exec.submit_batch((0..600u64).map(|i| (i % 11, i)));
        let run = exec.finish();
        assert_eq!(run.outputs, (0..600u64).map(|i| i * 2).collect::<Vec<_>>());
        assert!(run.max_reorder <= 16, "mid-batch window violated: {}", run.max_reorder);
        assert_eq!(run.merged, 600);
    }

    #[test]
    fn unbounded_window_still_works() {
        let mut exec = ShardedExecutor::new(
            ShardedConfig { max_in_flight: None, ..ShardedConfig::with_shards(2) },
            |_| Doubler { seen: 0 },
        );
        for i in 0..400u64 {
            exec.submit(&(i % 7), i);
        }
        let run = exec.finish();
        assert_eq!(run.merged, 400);
        assert_eq!(run.outputs.len(), 400);
    }
}

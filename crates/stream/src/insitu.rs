//! In-situ running statistics (§4.2.1).
//!
//! "Attributes of min/max, median/average of properties (e.g. speed,
//! acceleration etc.) are generated on a per trajectory basis" to support
//! data-quality assessment. [`RunningStats`] maintains exact min/max/mean
//! and an exact streaming median (two-heap method); [`InSituProcessor`]
//! tracks speed and acceleration per entity and annotates each report with
//! the statistics so far.

use crate::operator::Operator;
use datacron_geo::{EntityId, PositionReport};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact streaming summary of one scalar property.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    // Two-heap exact median: `lower` is a max-heap of the smaller half,
    // `upper` a min-heap of the larger half.
    lower: BinaryHeap<OrderedF64>,
    upper: BinaryHeap<Reverse<OrderedF64>>,
}

/// Total-order wrapper for finite f64 heap entries.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl RunningStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            lower: BinaryHeap::new(),
            upper: BinaryHeap::new(),
        }
    }

    /// Adds one observation. Non-finite values are ignored (they are already
    /// rejected upstream by cleaning; ignoring keeps the summary total).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        // Median maintenance.
        if self.lower.peek().is_none_or(|m| x <= m.0) {
            self.lower.push(OrderedF64(x));
        } else {
            self.upper.push(Reverse(OrderedF64(x)));
        }
        // Rebalance so |lower| == |upper| or |lower| == |upper| + 1. The
        // length guards make the pops infallible; `if let` keeps this free
        // of panic paths regardless.
        if self.lower.len() > self.upper.len() + 1 {
            if let Some(moved) = self.lower.pop() {
                self.upper.push(Reverse(moved));
            }
        } else if self.upper.len() > self.lower.len() {
            if let Some(Reverse(moved)) = self.upper.pop() {
                self.lower.push(moved);
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact median (lower median for even counts averaged with upper);
    /// `None` when empty.
    pub fn median(&self) -> Option<f64> {
        let lo = self.lower.peek()?.0;
        if self.lower.len() > self.upper.len() {
            Some(lo)
        } else {
            // Balanced heaps: the upper median exists whenever the counts
            // are equal and non-zero; fall back to `lo` rather than panic.
            match self.upper.peek() {
                Some(&Reverse(OrderedF64(hi))) => Some((lo + hi) / 2.0),
                None => Some(lo),
            }
        }
    }
}

/// Per-trajectory statistics of the in-situ layer.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryStats {
    /// Speed summary, m/s.
    pub speed: RunningStats,
    /// Acceleration summary, m/s².
    pub acceleration: RunningStats,
    /// Report-interval summary, seconds.
    pub report_interval: RunningStats,
}

/// A report annotated with its trajectory's statistics so far.
#[derive(Debug, Clone)]
pub struct AnnotatedReport {
    /// The original report.
    pub report: PositionReport,
    /// Mean speed so far, m/s.
    pub mean_speed: f64,
    /// Median speed so far, m/s.
    pub median_speed: f64,
    /// Max acceleration magnitude so far, m/s².
    pub max_acceleration: f64,
}

/// Per-entity in-situ statistics operator. Use one per entity.
#[derive(Debug, Clone, Default)]
pub struct InSituProcessor {
    stats: TrajectoryStats,
    last: Option<PositionReport>,
    entity: Option<EntityId>,
}

impl InSituProcessor {
    /// Creates an empty processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &TrajectoryStats {
        &self.stats
    }

    /// Ingests one report, returning the annotation.
    pub fn ingest(&mut self, r: PositionReport) -> AnnotatedReport {
        debug_assert!(
            self.entity.is_none() || self.entity == Some(r.entity),
            "one InSituProcessor per entity"
        );
        self.entity = Some(r.entity);
        self.stats.speed.push(r.speed_mps);
        if let Some(prev) = &self.last {
            let dt = r.ts.delta_secs(&prev.ts);
            if dt > 0.0 {
                self.stats.report_interval.push(dt);
                self.stats.acceleration.push((r.speed_mps - prev.speed_mps) / dt);
            }
        }
        self.last = Some(r);
        AnnotatedReport {
            report: r,
            mean_speed: self.stats.speed.mean().unwrap_or(0.0),
            median_speed: self.stats.speed.median().unwrap_or(0.0),
            max_acceleration: self
                .stats
                .acceleration
                .max()
                .map(|mx| mx.abs().max(self.stats.acceleration.min().unwrap_or(0.0).abs()))
                .unwrap_or(0.0),
        }
    }
}

impl Operator<PositionReport, AnnotatedReport> for InSituProcessor {
    fn on_record(&mut self, input: PositionReport, out: &mut Vec<AnnotatedReport>) {
        out.push(self.ingest(input));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{GeoPoint, Timestamp};

    #[test]
    fn running_stats_basic_moments() {
        let mut s = RunningStats::new();
        for x in [3.0, 1.0, 4.0, 1.0, 5.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert!((s.mean().unwrap() - 2.8).abs() < 1e-12);
        assert_eq!(s.median(), Some(3.0));
    }

    #[test]
    fn median_even_count_averages() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.median(), Some(2.5));
    }

    #[test]
    fn median_matches_sorted_reference() {
        let mut s = RunningStats::new();
        let xs: Vec<f64> = (0..101).map(|i| ((i * 7919) % 101) as f64).collect();
        for &x in &xs {
            s.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(s.median(), Some(sorted[50]));
    }

    #[test]
    fn empty_stats_are_none() {
        let s = RunningStats::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut s = RunningStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.median(), Some(2.0));
    }

    fn report(t_s: i64, speed: f64) -> PositionReport {
        PositionReport {
            speed_mps: speed,
            ..PositionReport::basic(
                EntityId::vessel(1),
                Timestamp::from_secs(t_s),
                GeoPoint::new(0.0, 40.0),
            )
        }
    }

    #[test]
    fn insitu_accumulates_speed_and_acceleration() {
        let mut p = InSituProcessor::new();
        p.ingest(report(0, 0.0));
        p.ingest(report(10, 5.0)); // +0.5 m/s²
        let a = p.ingest(report(20, 5.0)); // 0 m/s²
        assert!((a.mean_speed - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.median_speed, 5.0);
        assert!((a.max_acceleration - 0.5).abs() < 1e-9);
        assert_eq!(p.stats().report_interval.mean(), Some(10.0));
    }

    #[test]
    fn deceleration_counts_toward_max_magnitude() {
        let mut p = InSituProcessor::new();
        p.ingest(report(0, 10.0));
        let a = p.ingest(report(10, 0.0)); // -1.0 m/s²
        assert!((a.max_acceleration - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operator_annotates_every_record() {
        let mut p = InSituProcessor::new();
        let out = p.run((0..5).map(|i| report(i * 10, i as f64)));
        assert_eq!(out.len(), 5);
        assert!(out.last().unwrap().mean_speed > 0.0);
    }
}

//! A Kafka-like in-memory message bus.
//!
//! Components of the datAcron architecture communicate through ordered
//! topics. [`Topic<T>`] is an append-only log; each [`Consumer`] holds its
//! own offset, so multiple downstream components (synopses → RDFizer,
//! synopses → CEP, …) read the same stream independently, exactly as the
//! paper's Kafka deployment does. Thread-safe: producers and consumers may
//! live on different threads.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An append-only, thread-safe topic log.
#[derive(Debug)]
pub struct Topic<T> {
    name: String,
    log: RwLock<Vec<T>>,
}

impl<T: Clone> Topic<T> {
    /// Creates an empty topic.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            log: RwLock::new(Vec::new()),
        })
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one message, returning its offset.
    pub fn publish(&self, msg: T) -> u64 {
        let mut log = self.log.write();
        log.push(msg);
        (log.len() - 1) as u64
    }

    /// Appends a batch of messages, returning the offset of the first.
    pub fn publish_batch(&self, msgs: impl IntoIterator<Item = T>) -> u64 {
        let mut log = self.log.write();
        let first = log.len() as u64;
        log.extend(msgs);
        first
    }

    /// Number of messages ever published.
    pub fn len(&self) -> u64 {
        self.log.read().len() as u64
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.log.read().is_empty()
    }

    /// Creates a consumer starting at the beginning of the log.
    pub fn consumer(self: &Arc<Self>) -> Consumer<T> {
        Consumer {
            topic: Arc::clone(self),
            offset: 0,
        }
    }

    /// Creates a consumer starting at the current end of the log (sees only
    /// future messages).
    pub fn consumer_at_end(self: &Arc<Self>) -> Consumer<T> {
        Consumer {
            offset: self.len(),
            topic: Arc::clone(self),
        }
    }

    /// Reads messages `[from, from + max)` without any consumer state.
    pub fn read(&self, from: u64, max: usize) -> Vec<T> {
        let log = self.log.read();
        let from = from as usize;
        if from >= log.len() {
            return Vec::new();
        }
        log[from..log.len().min(from + max)].to_vec()
    }
}

/// A reader over a topic with its own offset.
#[derive(Debug)]
pub struct Consumer<T> {
    topic: Arc<Topic<T>>,
    offset: u64,
}

impl<T: Clone> Consumer<T> {
    /// The next offset this consumer will read.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Polls up to `max` messages, advancing the offset.
    pub fn poll(&mut self, max: usize) -> Vec<T> {
        let batch = self.topic.read(self.offset, max);
        self.offset += batch.len() as u64;
        batch
    }

    /// Polls one message if available.
    pub fn poll_one(&mut self) -> Option<T> {
        self.poll(1).into_iter().next()
    }

    /// Drains everything currently available.
    pub fn drain(&mut self) -> Vec<T> {
        let remaining = (self.topic.len() - self.offset) as usize;
        self.poll(remaining)
    }

    /// Messages published but not yet consumed.
    pub fn lag(&self) -> u64 {
        self.topic.len() - self.offset
    }

    /// Rewinds to the beginning.
    pub fn rewind(&mut self) {
        self.offset = 0;
    }
}

/// A registry of named topics, each carrying one message type `T`.
///
/// The integrated pipeline uses one bus per message type (raw reports,
/// critical points, RDF fragments, events); the registry keeps topic
/// creation race-free.
#[derive(Debug)]
pub struct MessageBus<T> {
    topics: RwLock<HashMap<String, Arc<Topic<T>>>>,
}

impl<T: Clone> MessageBus<T> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self {
            topics: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the topic with this name, creating it on first use.
    pub fn topic(&self, name: &str) -> Arc<Topic<T>> {
        if let Some(t) = self.topics.read().get(name) {
            return Arc::clone(t);
        }
        let mut topics = self.topics.write();
        Arc::clone(
            topics
                .entry(name.to_string())
                .or_insert_with(|| Topic::new(name)),
        )
    }

    /// Names of all topics created so far, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl<T: Clone> Default for MessageBus<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_and_poll_in_order() {
        let topic = Topic::new("raw");
        let mut c = topic.consumer();
        topic.publish(1);
        topic.publish(2);
        topic.publish(3);
        assert_eq!(c.poll(2), vec![1, 2]);
        assert_eq!(c.poll(10), vec![3]);
        assert!(c.poll(10).is_empty());
    }

    #[test]
    fn independent_consumers() {
        let topic = Topic::new("raw");
        topic.publish_batch(0..5);
        let mut a = topic.consumer();
        let mut b = topic.consumer();
        assert_eq!(a.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.poll(2), vec![0, 1]);
        assert_eq!(b.lag(), 3);
    }

    #[test]
    fn consumer_at_end_sees_only_future() {
        let topic = Topic::new("raw");
        topic.publish(1);
        let mut c = topic.consumer_at_end();
        assert!(c.poll(10).is_empty());
        topic.publish(2);
        assert_eq!(c.poll(10), vec![2]);
    }

    #[test]
    fn rewind_replays() {
        let topic = Topic::new("raw");
        topic.publish_batch([10, 20]);
        let mut c = topic.consumer();
        assert_eq!(c.drain(), vec![10, 20]);
        c.rewind();
        assert_eq!(c.drain(), vec![10, 20]);
    }

    #[test]
    fn bus_creates_and_reuses_topics() {
        let bus: MessageBus<u32> = MessageBus::new();
        let t1 = bus.topic("alpha");
        let t2 = bus.topic("alpha");
        t1.publish(7);
        assert_eq!(t2.len(), 1);
        bus.topic("beta");
        assert_eq!(bus.topic_names(), vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn concurrent_producers_and_consumer() {
        let topic: Arc<Topic<u64>> = Topic::new("raw");
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let t = Arc::clone(&topic);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        t.publish(p * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer thread");
        }
        let mut c = topic.consumer();
        let all = c.drain();
        assert_eq!(all.len(), 4000);
        // Per-producer order is preserved.
        for p in 0..4u64 {
            let seq: Vec<u64> = all.iter().copied().filter(|v| v / 1000 == p).collect();
            assert!(seq.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn publish_batch_returns_first_offset() {
        let topic = Topic::new("raw");
        topic.publish(0);
        let first = topic.publish_batch([1, 2, 3]);
        assert_eq!(first, 1);
        assert_eq!(topic.len(), 4);
    }
}

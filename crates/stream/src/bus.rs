//! A Kafka-like in-memory message bus with bounded, backpressured topics.
//!
//! Components of the datAcron architecture communicate through ordered
//! topics. [`Topic<T>`] is an append-only log; each [`Consumer`] holds its
//! own offset, so multiple downstream components (synopses → RDFizer,
//! synopses → CEP, …) read the same stream independently, exactly as the
//! paper's Kafka deployment does. Thread-safe: producers and consumers may
//! live on different threads.
//!
//! # Failure model
//!
//! Surveillance feeds overrun slow consumers by design, so an unbounded
//! log is a memory leak with a delay. A topic may therefore be *bounded*
//! ([`Topic::bounded`]): when the retained window is full, the configured
//! [`OverflowPolicy`] decides between
//!
//! * [`DropOldest`](OverflowPolicy::DropOldest) — truncate the oldest
//!   retained message (lossy, never blocks; Kafka-style retention);
//! * [`RejectNew`](OverflowPolicy::RejectNew) — refuse the publish and hand
//!   the message back to the producer;
//! * [`Block`](OverflowPolicy::Block) — backpressure: wait until every
//!   registered consumer has read past the oldest retained message, then
//!   reclaim the consumed prefix and publish.
//!
//! Truncation never silently corrupts a reader: a [`Consumer`] whose
//! offset has fallen behind the retained window observes an explicit
//! [`Lagged`] signal carrying how many messages it missed, and is resynced
//! to the oldest retained message for its next poll.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Duration;

/// What a bounded topic does when the retained window is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Truncate the oldest retained message to make room (lossy; lagging
    /// consumers observe [`Lagged`]).
    #[default]
    DropOldest,
    /// Refuse the new message and return it to the producer.
    RejectNew,
    /// Block the producer until consumers free space (backpressure). Gives
    /// up with [`PublishError::Timeout`] after [`TopicConfig::block_timeout`]
    /// so a topic with no (or stalled) consumers cannot deadlock ingestion.
    Block,
}

/// Capacity and overflow behaviour of a topic.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Maximum retained messages; `None` = unbounded.
    pub capacity: Option<usize>,
    /// What to do when full.
    pub policy: OverflowPolicy,
    /// How long a [`Block`](OverflowPolicy::Block) publish waits before
    /// giving up.
    pub block_timeout: Duration,
}

impl Default for TopicConfig {
    fn default() -> Self {
        Self {
            capacity: None,
            policy: OverflowPolicy::DropOldest,
            block_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a publish did not append a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError<T> {
    /// The topic is full under [`OverflowPolicy::RejectNew`]; the message
    /// is handed back.
    Rejected(T),
    /// An [`OverflowPolicy::Block`] publish timed out waiting for
    /// consumers; the message is handed back.
    Timeout(T),
}

impl<T> PublishError<T> {
    /// Recovers the message that was not published.
    pub fn into_inner(self) -> T {
        match self {
            PublishError::Rejected(msg) | PublishError::Timeout(msg) => msg,
        }
    }
}

impl<T> std::fmt::Display for PublishError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Rejected(_) => write!(f, "topic full: message rejected"),
            PublishError::Timeout(_) => write!(f, "topic full: blocked publish timed out"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for PublishError<T> {}

/// Why [`Topic::wait_for_space`] returned without space becoming
/// available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceWaitError {
    /// The timeout expired while the topic stayed full.
    Timeout,
    /// Every registered consumer has been dropped on a full
    /// [`Block`](OverflowPolicy::Block) topic: nothing can ever free
    /// space, so waiting out the timeout would only delay the inevitable.
    /// Surfaced promptly — including to callers already parked when the
    /// last consumer dropped.
    NoConsumers,
}

impl std::fmt::Display for SpaceWaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceWaitError::Timeout => write!(f, "timed out waiting for topic space"),
            SpaceWaitError::NoConsumers => {
                write!(f, "no live consumers: topic space can never be freed")
            }
        }
    }
}

impl std::error::Error for SpaceWaitError {}

/// A consumer fell behind a truncated prefix: `skipped` messages were
/// dropped before it could read them. The consumer is resynced to the
/// oldest retained message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lagged {
    /// How many messages this consumer missed.
    pub skipped: u64,
}

/// Running counters of one topic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopicStats {
    /// Messages successfully appended.
    pub published: u64,
    /// Messages refused under `RejectNew` (or timed-out `Block`).
    pub rejected: u64,
    /// Messages truncated by `DropOldest` while unread by some consumer
    /// position (these are what lagging consumers observe as skipped).
    pub dropped: u64,
    /// Messages reclaimed after every registered consumer read them
    /// (lossless truncation under `Block`).
    pub reclaimed: u64,
    /// Times a `Block` publish had to wait.
    pub blocked: u64,
    /// Messages delivered to consumers via `poll`/`poll_wait` (each
    /// delivery counts once per consumer, so with two consumers this is
    /// up to `2 × published`).
    pub consumed: u64,
    /// Times a consumer observed a [`Lagged`] signal.
    pub lag_signals: u64,
}

/// A point-in-time health snapshot of one topic.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicHealth {
    /// Topic name.
    pub name: String,
    /// Messages currently retained.
    pub retained: usize,
    /// Configured capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Next offset to be assigned (= messages ever published).
    pub end_offset: u64,
    /// Oldest retained offset.
    pub base_offset: u64,
    /// Counters.
    pub stats: TopicStats,
}

impl TopicHealth {
    /// `true` when the topic has lost or refused messages.
    pub fn is_lossless(&self) -> bool {
        self.stats.dropped == 0 && self.stats.rejected == 0
    }
}

#[derive(Debug)]
struct Inner<T> {
    /// Retained messages; `log[0]` sits at offset `base`.
    log: VecDeque<T>,
    /// Offset of the oldest retained message.
    base: u64,
    stats: TopicStats,
    /// Offsets of registered consumers (dropped consumers are pruned
    /// lazily). Used to reclaim the consumed prefix under `Block`.
    consumers: Vec<Weak<AtomicU64>>,
}

impl<T> Inner<T> {
    fn end(&self) -> u64 {
        self.base + self.log.len() as u64
    }

    /// Lowest offset any live registered consumer still needs, if any.
    fn min_consumer_offset(&mut self) -> Option<u64> {
        self.consumers.retain(|w| w.strong_count() > 0);
        self.consumers
            .iter()
            .filter_map(|w| w.upgrade())
            .map(|pos| pos.load(Ordering::Acquire))
            .min()
    }

    /// Truncates the prefix every registered consumer has already read.
    /// Returns how many messages were reclaimed.
    fn reclaim_consumed(&mut self) -> usize {
        let Some(min) = self.min_consumer_offset() else {
            return 0;
        };
        let upto = min.min(self.end());
        let n = upto.saturating_sub(self.base) as usize;
        for _ in 0..n {
            self.log.pop_front();
        }
        self.base = upto.max(self.base);
        self.stats.reclaimed += n as u64;
        n
    }
}

/// An ordered, thread-safe topic log, optionally bounded.
#[derive(Debug)]
pub struct Topic<T> {
    name: String,
    config: TopicConfig,
    inner: Mutex<Inner<T>>,
    /// Signalled whenever a consumer advances (space may be reclaimable).
    progress: Condvar,
}

impl<T: Clone> Topic<T> {
    /// Creates an empty unbounded topic.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Self::with_config(name, TopicConfig::default())
    }

    /// Creates an empty bounded topic with the given overflow policy.
    pub fn bounded(name: impl Into<String>, capacity: usize, policy: OverflowPolicy) -> Arc<Self> {
        Self::with_config(
            name,
            TopicConfig {
                capacity: Some(capacity),
                policy,
                ..TopicConfig::default()
            },
        )
    }

    /// Creates an empty topic with full configuration control.
    pub fn with_config(name: impl Into<String>, config: TopicConfig) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            config,
            inner: Mutex::new(Inner {
                log: VecDeque::new(),
                base: 0,
                stats: TopicStats::default(),
                consumers: Vec::new(),
            }),
            progress: Condvar::new(),
        })
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topic configuration.
    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    /// The append path shared by single and batched publishes: applies the
    /// overflow policy (possibly waiting on the progress condvar under
    /// `Block`) and appends, threading the lock guard through so a batch can
    /// append many messages under one acquisition.
    fn append_locked<'a>(
        &'a self,
        mut inner: std::sync::MutexGuard<'a, Inner<T>>,
        msg: T,
    ) -> (std::sync::MutexGuard<'a, Inner<T>>, Result<u64, PublishError<T>>) {
        if let Some(capacity) = self.config.capacity {
            let mut waited = false;
            while inner.log.len() >= capacity.max(1) {
                match self.config.policy {
                    OverflowPolicy::DropOldest => {
                        inner.log.pop_front();
                        inner.base += 1;
                        inner.stats.dropped += 1;
                    }
                    OverflowPolicy::RejectNew => {
                        // Space may have been freed by consumers since the
                        // last publish: reclaim the fully-consumed prefix
                        // before refusing, like the Block arm does.
                        if inner.reclaim_consumed() > 0 {
                            continue;
                        }
                        inner.stats.rejected += 1;
                        return (inner, Err(PublishError::Rejected(msg)));
                    }
                    OverflowPolicy::Block => {
                        if inner.reclaim_consumed() > 0 {
                            continue;
                        }
                        if waited || inner.min_consumer_offset().is_none() {
                            // Timed out — or no live consumer exists, so
                            // space can never be freed and waiting out the
                            // block timeout would just stall the producer.
                            inner.stats.rejected += 1;
                            return (inner, Err(PublishError::Timeout(msg)));
                        }
                        inner.stats.blocked += 1;
                        waited = true;
                        // A batch publish appends its prefix without
                        // signalling until the whole batch is done, so a
                        // consumer parked in `poll_wait` has not been woken
                        // yet. Wake it before parking ourselves, or producer
                        // and consumer both sleep on `progress` until the
                        // block timeout expires.
                        self.progress.notify_all();
                        let deadline = std::time::Instant::now() + self.config.block_timeout;
                        loop {
                            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                            if remaining.is_zero() {
                                break;
                            }
                            let (guard, _timeout) = self
                                .progress
                                .wait_timeout(inner, remaining)
                                .unwrap_or_else(|e| e.into_inner());
                            inner = guard;
                            if inner.log.len() < capacity || inner.reclaim_consumed() > 0 {
                                waited = false;
                                break;
                            }
                            if inner.min_consumer_offset().is_none() {
                                // The last consumer dropped while we were
                                // parked (its Drop woke us): give up now.
                                break;
                            }
                        }
                    }
                }
            }
        }
        let offset = inner.end();
        inner.log.push_back(msg);
        inner.stats.published += 1;
        (inner, Ok(offset))
    }

    /// Appends one message, returning its offset, or an error carrying the
    /// message back when the topic is full and the policy refuses it.
    pub fn try_publish(&self, msg: T) -> Result<u64, PublishError<T>> {
        let inner = self.lock();
        let (inner, result) = self.append_locked(inner, msg);
        drop(inner);
        if result.is_ok() {
            // Wake consumers waiting in `poll_wait` for new data.
            self.progress.notify_all();
        }
        result
    }

    /// Appends one message, returning its offset, or `None` when the topic
    /// refused it (full under `RejectNew`, or a timed-out `Block`). The
    /// refusal is counted in [`TopicStats::rejected`]; use
    /// [`try_publish`](Self::try_publish) to get the message back.
    pub fn publish(&self, msg: T) -> Option<u64> {
        self.try_publish(msg).ok()
    }

    /// Appends a batch under a **single lock acquisition** (a `Block` wait
    /// mid-batch still releases the lock while waiting), returning the
    /// offset of the first message that was actually published — `None` for
    /// an empty batch or when every message was refused. Refused messages
    /// are dropped and counted in [`TopicStats::rejected`]; use
    /// [`publish_batch_all`](Self::publish_batch_all) to get them back.
    pub fn publish_batch(&self, msgs: impl IntoIterator<Item = T>) -> Option<u64> {
        self.publish_batch_inner(msgs, None)
    }

    /// Like [`publish_batch`](Self::publish_batch), but hands refused
    /// messages back to the producer (in input order) instead of dropping
    /// them, so a lossless producer can retry exactly what was not
    /// appended.
    pub fn publish_batch_all(&self, msgs: impl IntoIterator<Item = T>) -> (Option<u64>, Vec<T>) {
        let mut refused = Vec::new();
        let first = self.publish_batch_inner(msgs, Some(&mut refused));
        (first, refused)
    }

    fn publish_batch_inner(
        &self,
        msgs: impl IntoIterator<Item = T>,
        mut refused: Option<&mut Vec<T>>,
    ) -> Option<u64> {
        let mut first = None;
        let mut appended = false;
        let mut inner = self.lock();
        for msg in msgs {
            let (guard, result) = self.append_locked(inner, msg);
            inner = guard;
            match result {
                Ok(offset) => {
                    first.get_or_insert(offset);
                    appended = true;
                }
                Err(err) => {
                    if let Some(out) = refused.as_deref_mut() {
                        out.push(err.into_inner());
                    }
                }
            }
        }
        drop(inner);
        if appended {
            self.progress.notify_all();
        }
        first
    }

    /// Number of messages ever published (not reduced by truncation).
    pub fn len(&self) -> u64 {
        self.lock().end()
    }

    /// `true` when nothing has ever been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Oldest offset still retained.
    pub fn base_offset(&self) -> u64 {
        self.lock().base
    }

    /// Messages currently retained in memory.
    pub fn retained(&self) -> usize {
        self.lock().log.len()
    }

    /// Running counters.
    pub fn stats(&self) -> TopicStats {
        self.lock().stats
    }

    /// Durable snapshot for checkpointing: the base offset, the counters
    /// and a clone of the retained log contents.
    pub fn durable_state(&self) -> (u64, TopicStats, Vec<T>) {
        let inner = self.lock();
        (inner.base, inner.stats, inner.log.iter().cloned().collect())
    }

    /// Restores a checkpointed snapshot, replacing the current contents and
    /// counters. Registered consumers keep their offsets; restore before
    /// consumers advance (i.e. immediately after construction) so offsets
    /// and contents stay coherent. Waiters are notified.
    pub fn restore_state(&self, base: u64, stats: TopicStats, retained: Vec<T>) {
        {
            let mut inner = self.lock();
            inner.base = base;
            inner.stats = stats;
            inner.log = retained.into();
        }
        self.progress.notify_all();
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> TopicHealth {
        let inner = self.lock();
        TopicHealth {
            name: self.name.clone(),
            retained: inner.log.len(),
            capacity: self.config.capacity,
            end_offset: inner.end(),
            base_offset: inner.base,
            stats: inner.stats,
        }
    }

    /// Creates a registered consumer starting at the oldest retained
    /// message.
    pub fn consumer(self: &Arc<Self>) -> Consumer<T> {
        let base = self.lock().base;
        self.consumer_from(base)
    }

    /// Creates a registered consumer starting at the current end of the log
    /// (sees only future messages).
    pub fn consumer_at_end(self: &Arc<Self>) -> Consumer<T> {
        let end = self.lock().end();
        self.consumer_from(end)
    }

    fn consumer_from(self: &Arc<Self>, offset: u64) -> Consumer<T> {
        let pos = Arc::new(AtomicU64::new(offset));
        self.lock().consumers.push(Arc::downgrade(&pos));
        Consumer {
            topic: Arc::clone(self),
            pos,
            skipped_total: 0,
        }
    }

    /// Reads messages `[from, from + max)` without any consumer state.
    /// Offsets below the retained window are skipped silently — use a
    /// [`Consumer`] to observe truncation as [`Lagged`].
    pub fn read(&self, from: u64, max: usize) -> Vec<T> {
        let inner = self.lock();
        let from = from.max(inner.base);
        if from >= inner.end() {
            return Vec::new();
        }
        let start = (from - inner.base) as usize;
        let stop = inner.log.len().min(start.saturating_add(max));
        inner.log.range(start..stop).cloned().collect()
    }

    /// Waits until the topic has room for at least one more message, or
    /// the timeout expires. `Ok(())` means space is available.
    ///
    /// "Room" means the retained window is below capacity, or (under
    /// [`OverflowPolicy::Block`]) a fully-consumed prefix could be
    /// reclaimed — which this call performs, exactly as a blocked publish
    /// would. Unbounded and [`DropOldest`](OverflowPolicy::DropOldest)
    /// topics always have room.
    ///
    /// Fails typed instead of blocking pointlessly:
    /// [`SpaceWaitError::Timeout`] when the deadline expires, and
    /// [`SpaceWaitError::NoConsumers`] **promptly** when a full `Block`
    /// topic has no live registered consumer — space can then never be
    /// freed, and a caller parked here is woken the moment the last
    /// consumer drops (see [`Consumer`]'s `Drop`).
    ///
    /// This is the event-driven retry primitive for lossless producers:
    /// instead of busy-spinning `try_publish` against a full topic (each
    /// attempt re-arming its own internal timeout), park here — every
    /// consumer advance signals the same condvar a blocked publish waits
    /// on, so the wakeup is prompt, not sleep-quantized.
    pub fn wait_for_space(&self, timeout: Duration) -> Result<(), SpaceWaitError> {
        let Some(capacity) = self.config.capacity else {
            return Ok(());
        };
        if self.config.policy == OverflowPolicy::DropOldest {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.log.len() < capacity.max(1) {
                return Ok(());
            }
            if self.config.policy == OverflowPolicy::Block {
                if inner.reclaim_consumed() > 0 {
                    return Ok(());
                }
                if inner.min_consumer_offset().is_none() {
                    return Err(SpaceWaitError::NoConsumers);
                }
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(SpaceWaitError::Timeout);
            }
            let (guard, _timeout) = self
                .progress
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

}

// Internal plumbing that must not require `T: Clone` (used from
// `Consumer::drop`, which is implemented for every `T`).
impl<T> Topic<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned bus mutex means a writer panicked mid-append of a
        // single element; the log itself is still structurally sound, so
        // keep serving rather than cascading the failure.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Called by consumers after advancing; wakes blocked producers.
    fn note_progress(&self) {
        // Taking the lock orders the offset store before the wakeup.
        drop(self.lock());
        self.progress.notify_all();
    }
}

/// A registered reader over a topic with its own offset.
#[derive(Debug)]
pub struct Consumer<T> {
    topic: Arc<Topic<T>>,
    pos: Arc<AtomicU64>,
    skipped_total: u64,
}

impl<T: Clone> Consumer<T> {
    /// The next offset this consumer will read.
    pub fn offset(&self) -> u64 {
        self.pos.load(Ordering::Acquire)
    }

    /// Total messages this consumer has ever missed to truncation.
    pub fn skipped_total(&self) -> u64 {
        self.skipped_total
    }

    /// Polls up to `max` messages, advancing the offset.
    ///
    /// When the topic truncated past this consumer's offset, returns
    /// [`Lagged`] with the number of messages missed and resyncs to the
    /// oldest retained message; the next call returns data again.
    pub fn poll(&mut self, max: usize) -> Result<Vec<T>, Lagged> {
        let offset = self.pos.load(Ordering::Acquire);
        let (batch, base) = {
            let mut inner = self.topic.lock();
            let batch = self.read_locked(&inner, offset, max);
            let base = inner.base;
            if base > offset {
                inner.stats.lag_signals += 1;
            } else {
                inner.stats.consumed += batch.len() as u64;
            }
            (batch, base)
        };
        if base > offset {
            let skipped = base - offset;
            self.skipped_total += skipped;
            self.pos.store(base, Ordering::Release);
            self.topic.note_progress();
            return Err(Lagged { skipped });
        }
        if !batch.is_empty() {
            self.pos.store(offset + batch.len() as u64, Ordering::Release);
            self.topic.note_progress();
        }
        Ok(batch)
    }

    /// Polls up to `max` messages, **waiting** up to `timeout` for data to
    /// arrive when the topic is currently drained. Returns an empty batch
    /// on timeout. Lag is reported exactly as in [`poll`](Self::poll).
    ///
    /// This is the blocking consume primitive of the sharded executor:
    /// worker threads park here instead of spinning, and every publish
    /// wakes them.
    pub fn poll_wait(&mut self, max: usize, timeout: Duration) -> Result<Vec<T>, Lagged> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let offset = self.pos.load(Ordering::Acquire);
            let mut inner = self.topic.lock();
            let base = inner.base;
            if base > offset {
                inner.stats.lag_signals += 1;
                drop(inner);
                let skipped = base - offset;
                self.skipped_total += skipped;
                self.pos.store(base, Ordering::Release);
                self.topic.note_progress();
                return Err(Lagged { skipped });
            }
            let batch = self.read_locked(&inner, offset, max);
            if !batch.is_empty() {
                inner.stats.consumed += batch.len() as u64;
                drop(inner);
                self.pos.store(offset + batch.len() as u64, Ordering::Release);
                self.topic.note_progress();
                return Ok(batch);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Ok(Vec::new());
            }
            let (guard, _timeout) = self
                .topic
                .progress
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            drop(inner);
        }
    }

    fn read_locked(&self, inner: &Inner<T>, from: u64, max: usize) -> Vec<T> {
        if from < inner.base || from >= inner.end() {
            return Vec::new();
        }
        let start = (from - inner.base) as usize;
        // Saturate: `poll(usize::MAX)` (drain) from a mid-window offset
        // must not overflow.
        let stop = inner.log.len().min(start.saturating_add(max));
        inner.log.range(start..stop).cloned().collect()
    }

    /// Polls one message if available.
    pub fn poll_one(&mut self) -> Result<Option<T>, Lagged> {
        Ok(self.poll(1)?.into_iter().next())
    }

    /// Drains everything currently available.
    pub fn drain(&mut self) -> Result<Vec<T>, Lagged> {
        self.poll(usize::MAX)
    }

    /// Messages published but not yet consumed (including any the consumer
    /// can no longer read because they were truncated).
    pub fn lag(&self) -> u64 {
        self.topic.len().saturating_sub(self.offset())
    }

    /// Rewinds to the oldest *retained* message (offset 0 on an untruncated
    /// topic).
    pub fn rewind(&mut self) {
        let base = self.topic.lock().base;
        self.pos.store(base, Ordering::Release);
    }

    /// Jumps past every currently published message: the next poll starts
    /// at the topic's end offset, and nothing skipped counts as lag. For
    /// consumers whose owner already processed the topic's contents out of
    /// band — e.g. re-attaching to a restored topic whose retained messages
    /// were all drained before the checkpoint was cut.
    pub fn fast_forward(&mut self) {
        let end = self.topic.lock().end();
        self.pos.store(end, Ordering::Release);
    }
}

impl<T> Drop for Consumer<T> {
    /// Deregisters eagerly and wakes parked producers: a producer blocked
    /// in `wait_for_space` / a `Block` publish must re-evaluate whether
    /// any consumer can still free space, or it would sleep out its full
    /// timeout against a topic nobody will ever drain.
    fn drop(&mut self) {
        let mut inner = self.topic.lock();
        let mine = Arc::as_ptr(&self.pos);
        inner
            .consumers
            .retain(|w| w.strong_count() > 0 && !std::ptr::eq(w.as_ptr(), mine));
        drop(inner);
        self.topic.progress.notify_all();
    }
}

/// A registry of named topics, each carrying one message type `T`.
///
/// The integrated pipeline uses one bus per message type (raw reports,
/// critical points, RDF fragments, events); the registry keeps topic
/// creation race-free.
#[derive(Debug)]
pub struct MessageBus<T> {
    topics: RwLock<HashMap<String, Arc<Topic<T>>>>,
    default_config: TopicConfig,
}

impl<T: Clone> MessageBus<T> {
    /// Creates an empty bus creating unbounded topics.
    pub fn new() -> Self {
        Self::with_default_config(TopicConfig::default())
    }

    /// Creates an empty bus whose topics are created with `config`.
    pub fn with_default_config(config: TopicConfig) -> Self {
        Self {
            topics: RwLock::new(HashMap::new()),
            default_config: config,
        }
    }

    fn topics_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Topic<T>>>> {
        self.topics.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the topic with this name, creating it on first use with the
    /// bus default configuration.
    pub fn topic(&self, name: &str) -> Arc<Topic<T>> {
        if let Some(t) = self.topics_read().get(name) {
            return Arc::clone(t);
        }
        let mut topics = self.topics.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            topics
                .entry(name.to_string())
                .or_insert_with(|| Topic::with_config(name, self.default_config.clone())),
        )
    }

    /// Names of all topics created so far, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics_read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Health snapshots of all topics, sorted by name.
    pub fn health(&self) -> Vec<TopicHealth> {
        let mut all: Vec<TopicHealth> = self.topics_read().values().map(|t| t.health()).collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

impl<T: Clone> Default for MessageBus<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_and_poll_in_order() {
        let topic = Topic::new("raw");
        let mut c = topic.consumer();
        topic.publish(1);
        topic.publish(2);
        topic.publish(3);
        assert_eq!(c.poll(2).expect("no lag"), vec![1, 2]);
        assert_eq!(c.poll(10).expect("no lag"), vec![3]);
        assert!(c.poll(10).expect("no lag").is_empty());
    }

    #[test]
    fn independent_consumers() {
        let topic = Topic::new("raw");
        topic.publish_batch(0..5);
        let mut a = topic.consumer();
        let mut b = topic.consumer();
        assert_eq!(a.drain().expect("no lag"), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.poll(2).expect("no lag"), vec![0, 1]);
        assert_eq!(b.lag(), 3);
    }

    #[test]
    fn consumer_at_end_sees_only_future() {
        let topic = Topic::new("raw");
        topic.publish(1);
        let mut c = topic.consumer_at_end();
        assert!(c.poll(10).expect("no lag").is_empty());
        topic.publish(2);
        assert_eq!(c.poll(10).expect("no lag"), vec![2]);
    }

    #[test]
    fn rewind_replays() {
        let topic = Topic::new("raw");
        topic.publish_batch([10, 20]);
        let mut c = topic.consumer();
        assert_eq!(c.drain().expect("no lag"), vec![10, 20]);
        c.rewind();
        assert_eq!(c.drain().expect("no lag"), vec![10, 20]);
    }

    #[test]
    fn bus_creates_and_reuses_topics() {
        let bus: MessageBus<u32> = MessageBus::new();
        let t1 = bus.topic("alpha");
        let t2 = bus.topic("alpha");
        t1.publish(7);
        assert_eq!(t2.len(), 1);
        bus.topic("beta");
        assert_eq!(bus.topic_names(), vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(bus.health().len(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumer() {
        let topic: Arc<Topic<u64>> = Topic::new("raw");
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let t = Arc::clone(&topic);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        t.publish(p * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer thread");
        }
        let mut c = topic.consumer();
        let all = c.drain().expect("no lag");
        assert_eq!(all.len(), 4000);
        // Per-producer order is preserved.
        for p in 0..4u64 {
            let seq: Vec<u64> = all.iter().copied().filter(|v| v / 1000 == p).collect();
            assert!(seq.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn publish_batch_returns_first_offset() {
        let topic = Topic::new("raw");
        topic.publish(0);
        let first = topic.publish_batch([1, 2, 3]);
        assert_eq!(first, Some(1));
        assert_eq!(topic.len(), 4);
    }

    #[test]
    fn publish_batch_of_nothing_returns_none() {
        let topic: Arc<Topic<u8>> = Topic::new("raw");
        assert_eq!(topic.publish_batch(std::iter::empty()), None);
        assert_eq!(topic.len(), 0);
        topic.publish(9);
        assert_eq!(topic.publish_batch(std::iter::empty()), None, "offset is never fabricated");
    }

    #[test]
    fn drop_oldest_bounds_memory_and_reports_lag() {
        let topic = Topic::bounded("raw", 4, OverflowPolicy::DropOldest);
        let mut c = topic.consumer();
        for i in 0..10u32 {
            topic.publish(i);
            assert!(topic.retained() <= 4, "capacity respected");
        }
        let lagged = c.poll(100).expect_err("prefix was truncated");
        assert_eq!(lagged.skipped, 6);
        assert_eq!(c.skipped_total(), 6);
        // After the explicit signal, the survivors read normally.
        assert_eq!(c.poll(100).expect("resynced"), vec![6, 7, 8, 9]);
        assert_eq!(topic.stats().dropped, 6);
        assert_eq!(topic.len(), 10, "offsets keep counting");
        assert!(!topic.health().is_lossless());
    }

    #[test]
    fn reject_new_hands_the_message_back() {
        let topic = Topic::bounded("raw", 2, OverflowPolicy::RejectNew);
        assert_eq!(topic.publish(1), Some(0));
        assert_eq!(topic.publish(2), Some(1));
        let err = topic.try_publish(3).expect_err("full");
        assert_eq!(err.into_inner(), 3);
        assert_eq!(topic.publish(4), None);
        assert_eq!(topic.stats().rejected, 2);
        // Consuming does not free space under RejectNew (log retention is
        // capacity-based), but the retained window never grows.
        assert_eq!(topic.retained(), 2);
        let mut c = topic.consumer();
        assert_eq!(c.drain().expect("no lag"), vec![1, 2]);
    }

    #[test]
    fn block_applies_backpressure_until_consumer_catches_up() {
        let topic = Topic::with_config(
            "raw",
            TopicConfig {
                capacity: Some(8),
                policy: OverflowPolicy::Block,
                block_timeout: Duration::from_secs(10),
            },
        );
        let mut c = topic.consumer();
        let producer = {
            let t = Arc::clone(&topic);
            thread::spawn(move || {
                for i in 0..100u64 {
                    t.try_publish(i).expect("blocked publish eventually succeeds");
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < 100 {
            match c.poll(3) {
                Ok(batch) => seen.extend(batch),
                Err(lagged) => panic!("Block policy never truncates unread data: {lagged:?}"),
            }
            assert!(topic.retained() <= 8, "capacity respected under sustained overload");
            thread::yield_now();
        }
        producer.join().expect("producer");
        assert_eq!(seen, (0..100).collect::<Vec<_>>(), "lossless delivery");
        assert!(topic.stats().reclaimed > 0, "consumed prefix was reclaimed");
        assert_eq!(topic.stats().dropped, 0);
    }

    #[test]
    fn block_without_consumers_times_out_instead_of_deadlocking() {
        let topic = Topic::with_config(
            "raw",
            TopicConfig {
                capacity: Some(1),
                policy: OverflowPolicy::Block,
                block_timeout: Duration::from_millis(20),
            },
        );
        assert_eq!(topic.publish(1), Some(0));
        let err = topic.try_publish(2).expect_err("no consumer will ever free space");
        assert!(matches!(err, PublishError::Timeout(2)));
    }

    #[test]
    fn wait_for_space_is_immediate_when_room_exists() {
        let unbounded: Arc<Topic<u8>> = Topic::new("raw");
        assert!(unbounded.wait_for_space(Duration::ZERO).is_ok());
        let dropping = Topic::bounded("raw", 1, OverflowPolicy::DropOldest);
        dropping.publish(1);
        assert!(dropping.wait_for_space(Duration::ZERO).is_ok(), "DropOldest always has room");
        let bounded = Topic::bounded("raw", 2, OverflowPolicy::Block);
        bounded.publish(1);
        assert!(bounded.wait_for_space(Duration::ZERO).is_ok(), "below capacity");
    }

    #[test]
    fn wait_for_space_times_out_on_a_stuck_topic() {
        let topic = Topic::bounded("raw", 1, OverflowPolicy::Block);
        let _pin = topic.consumer(); // registered but never advances
        topic.publish(1);
        let started = std::time::Instant::now();
        assert_eq!(
            topic.wait_for_space(Duration::from_millis(20)),
            Err(SpaceWaitError::Timeout)
        );
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn wait_for_space_wakes_on_consumer_progress() {
        let topic = Topic::bounded("raw", 1, OverflowPolicy::Block);
        let mut c = topic.consumer();
        topic.publish(7);
        let waiter = {
            let t = Arc::clone(&topic);
            thread::spawn(move || t.wait_for_space(Duration::from_secs(10)))
        };
        // The consumer reading the retained message makes the prefix
        // reclaimable; the waiter must observe that without timing out.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(c.poll(10).expect("no lag"), vec![7]);
        assert!(waiter.join().expect("waiter thread").is_ok(), "woken by consumer progress");
        assert_eq!(topic.try_publish(8).expect("space reclaimed"), 1);
    }

    #[test]
    fn wait_for_space_reclaims_consumed_prefix_under_block() {
        let topic = Topic::bounded("raw", 2, OverflowPolicy::Block);
        let mut c = topic.consumer();
        topic.publish(1);
        topic.publish(2);
        assert_eq!(c.drain().expect("no lag"), vec![1, 2]);
        // Full by log length, but the whole window is consumed: waiting
        // must reclaim it rather than park.
        assert!(topic.wait_for_space(Duration::ZERO).is_ok());
        assert!(topic.stats().reclaimed >= 1);
    }

    #[test]
    fn reject_new_reclaims_consumed_prefix_before_refusing() {
        let topic = Topic::bounded("t", 2, OverflowPolicy::RejectNew);
        let mut c = topic.consumer();
        topic.try_publish(1).unwrap();
        topic.try_publish(2).unwrap();
        assert!(matches!(topic.try_publish(3), Err(PublishError::Rejected(3))));
        // Once the consumer has read the window, a new publish must
        // reclaim the consumed prefix instead of rejecting forever.
        assert_eq!(c.drain().expect("no lag"), vec![1, 2]);
        assert_eq!(topic.try_publish(3), Ok(2));
        assert_eq!(c.drain().expect("no lag"), vec![3]);
    }

    #[test]
    fn wait_for_space_fails_fast_when_no_consumer_exists() {
        let topic = Topic::bounded("raw", 1, OverflowPolicy::Block);
        topic.publish(1);
        let started = std::time::Instant::now();
        // Nobody can ever free space: typed error, no pointless 10 s park.
        assert_eq!(
            topic.wait_for_space(Duration::from_secs(10)),
            Err(SpaceWaitError::NoConsumers)
        );
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    /// Regression test for the consumer-drop-while-parked path: a producer
    /// already parked in `wait_for_space` must be woken promptly when the
    /// last consumer drops, with the typed `NoConsumers` error — not left
    /// to sleep out its full timeout.
    #[test]
    fn wait_for_space_errs_promptly_when_last_consumer_drops_mid_wait() {
        let topic = Topic::bounded("raw", 1, OverflowPolicy::Block);
        let c = topic.consumer(); // pins the retained message
        topic.publish(1);
        let started = std::time::Instant::now();
        let waiter = {
            let t = Arc::clone(&topic);
            thread::spawn(move || t.wait_for_space(Duration::from_secs(30)))
        };
        thread::sleep(Duration::from_millis(30)); // let the waiter park
        drop(c);
        let result = waiter.join().expect("waiter thread");
        assert_eq!(result, Err(SpaceWaitError::NoConsumers));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "waiter slept {:?} despite the last consumer dropping",
            started.elapsed()
        );
    }

    /// The same path through a blocked publish: `try_publish` on a full
    /// `Block` topic gives up with a typed timeout error when its last
    /// consumer drops mid-wait instead of blocking out the full timeout.
    #[test]
    fn blocked_publish_gives_up_when_last_consumer_drops_mid_wait() {
        let topic = Topic::with_config(
            "raw",
            TopicConfig {
                capacity: Some(1),
                policy: OverflowPolicy::Block,
                block_timeout: Duration::from_secs(30),
            },
        );
        let c = topic.consumer();
        topic.publish(1);
        let started = std::time::Instant::now();
        let publisher = {
            let t = Arc::clone(&topic);
            thread::spawn(move || t.try_publish(2))
        };
        thread::sleep(Duration::from_millis(30)); // let the publisher park
        drop(c);
        let result = publisher.join().expect("publisher thread");
        assert!(matches!(result, Err(PublishError::Timeout(2))), "got {result:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "publisher blocked {:?} despite the last consumer dropping",
            started.elapsed()
        );
    }

    #[test]
    fn read_clamps_to_retained_window() {
        let topic = Topic::bounded("raw", 2, OverflowPolicy::DropOldest);
        for i in 0..5u32 {
            topic.publish(i);
        }
        assert_eq!(topic.read(0, 10), vec![3, 4], "truncated prefix skipped");
        assert_eq!(topic.base_offset(), 3);
    }
}

//! Deterministic fault injection for chaos-testing the real-time layer.
//!
//! Surveillance streams fail in structured ways — AIS transponders drop
//! messages, satellite feeds replay them, multi-path reception reorders
//! them, sensors emit garbage fields, and coverage gaps and burst storms
//! follow vessel density (§3 "Quality of the various surveillance data
//! sources varies"). This module reproduces those failure modes *on
//! purpose*, deterministically, so tests can drive the full pipeline
//! through every fault mode and assert that it degrades predictably.
//!
//! The entry point is a [`FaultPlan`]: a seed plus per-mode rates. Wrap any
//! iterator of records with [`ChaosSource`] (or publish through
//! [`ChaosTopic`]) and the plan is applied reproducibly — the same seed
//! always yields the same injected stream, so a failing chaos run is
//! replayable from one `u64`.
//!
//! ```
//! use datacron_stream::faults::{FaultPlan, ChaosSource};
//!
//! let plan = FaultPlan::drops(0.1).with_seed(42);
//! let survivors: Vec<u32> = ChaosSource::new(0u32..100, plan.clone()).collect();
//! let again: Vec<u32> = ChaosSource::new(0u32..100, plan).collect();
//! assert_eq!(survivors, again, "same seed, same chaos");
//! assert!(survivors.len() < 100);
//! ```

use crate::bus::Topic;
use std::collections::VecDeque;
use std::sync::Arc;

/// A deterministic fault schedule: seed + per-mode rates.
///
/// All probabilities are per-record in `[0, 1]`. Modes compose: a plan may
/// simultaneously drop, duplicate, reorder, corrupt, open gaps and fire
/// bursts; the per-record decision order is fixed (gap → drop → corrupt →
/// duplicate → burst → reorder) so a plan replays identically.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the fault RNG; same seed ⇒ same injected stream.
    pub seed: u64,
    /// Probability of silently dropping a record.
    pub drop: f64,
    /// Probability of emitting a record twice.
    pub duplicate: f64,
    /// Probability of delaying a record behind up to `reorder_depth`
    /// later ones.
    pub reorder: f64,
    /// How many records a reordered record may be delayed by.
    pub reorder_depth: usize,
    /// Probability of corrupting a record's fields (see [`Corrupt`]).
    pub corrupt: f64,
    /// Probability of opening a communication gap (dropping the next
    /// `gap_len` records).
    pub gap: f64,
    /// Length of a communication gap, in records.
    pub gap_len: usize,
    /// Probability of a burst storm: re-emitting the recent tail of the
    /// stream (up to `burst_len` records) as stale repeats.
    pub burst: f64,
    /// Maximum records replayed by one burst.
    pub burst_len: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_depth: 4,
            corrupt: 0.0,
            gap: 0.0,
            gap_len: 20,
            burst: 0.0,
            burst_len: 8,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as the control arm of a chaos
    /// experiment).
    pub fn none() -> Self {
        Self::default()
    }

    /// Only message drops at the given rate.
    pub fn drops(rate: f64) -> Self {
        Self { drop: rate, ..Self::default() }
    }

    /// Only duplicates at the given rate.
    pub fn duplicates(rate: f64) -> Self {
        Self { duplicate: rate, ..Self::default() }
    }

    /// Only reordering at the given rate.
    pub fn reorders(rate: f64) -> Self {
        Self { reorder: rate, ..Self::default() }
    }

    /// Only field corruption at the given rate.
    pub fn corruption(rate: f64) -> Self {
        Self { corrupt: rate, ..Self::default() }
    }

    /// Only communication gaps at the given rate.
    pub fn gaps(rate: f64) -> Self {
        Self { gap: rate, ..Self::default() }
    }

    /// Only burst storms at the given rate.
    pub fn bursts(rate: f64) -> Self {
        Self { burst: rate, ..Self::default() }
    }

    /// Everything at once, at rates aggressive enough to stress every code
    /// path while leaving most of the stream intact.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            drop: 0.05,
            duplicate: 0.05,
            reorder: 0.05,
            reorder_depth: 4,
            corrupt: 0.05,
            gap: 0.005,
            gap_len: 10,
            burst: 0.01,
            burst_len: 5,
        }
    }

    /// Returns the plan with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The fault injector's private RNG (splitmix64): tiny, seedable, and
/// independent from the data generators so fault schedules do not perturb
/// the data stream itself.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without special-casing callers.
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Types that know how to corrupt themselves the way a broken sensor would.
///
/// Implementations must produce values that are *detectably* wrong — the
/// corrupted record should be one the downstream plausibility filters
/// reject, mirroring real field corruption (NMEA checksum survivors carry
/// out-of-range values, not subtly shifted ones). This keeps chaos tests
/// deterministic: every corrupted record is rejected, every surviving
/// record is bit-identical to the fault-free run.
pub trait Corrupt {
    /// Returns a corrupted copy of `self`; `variant` selects which field is
    /// mangled.
    fn corrupted(&self, variant: u64) -> Self;
}

impl Corrupt for datacron_geo::PositionReport {
    fn corrupted(&self, variant: u64) -> Self {
        let mut r = *self;
        match variant % 4 {
            // Off-the-planet longitude (invalid coordinate).
            0 => r.point.lon = 400.0,
            // Impossible reported speed.
            1 => r.speed_mps = 1.0e6,
            // Non-finite heading.
            2 => r.heading_deg = f64::NAN,
            // Non-finite altitude.
            _ => r.altitude_m = f64::INFINITY,
        }
        r
    }
}

macro_rules! corrupt_int {
    ($($t:ty),*) => {$(
        impl Corrupt for $t {
            fn corrupted(&self, variant: u64) -> Self {
                // Flip one bit — detectably different, still a valid value
                // of the type.
                self ^ (1 as $t) << (variant as u32 % <$t>::BITS)
            }
        }
    )*};
}
corrupt_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Counters of injected faults, by mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Records passed through unmodified.
    pub delivered: u64,
    /// Records silently dropped (including those inside gaps).
    pub dropped: u64,
    /// Extra copies emitted.
    pub duplicated: u64,
    /// Records emitted out of their original order.
    pub reordered: u64,
    /// Records replaced by a corrupted copy.
    pub corrupted: u64,
    /// Communication gaps opened.
    pub gaps: u64,
    /// Burst storms fired.
    pub bursts: u64,
}

impl FaultStats {
    /// Total records the injector emitted (any mode). Reordered records
    /// are already counted under `delivered`/`corrupted`; `reordered` only
    /// says how many of those were displaced.
    pub fn emitted(&self) -> u64 {
        self.delivered + self.duplicated + self.corrupted
    }
}

/// The stateful core: feed records in, collect the faulted stream out.
///
/// Deterministic for a given [`FaultPlan`] and input sequence. Use
/// [`ChaosSource`] for iterator streams or [`ChaosTopic`] for bus
/// publishing; use the injector directly when driving a pipeline by hand.
#[derive(Debug, Clone)]
pub struct FaultInjector<T> {
    plan: FaultPlan,
    rng: FaultRng,
    /// Records delayed by reordering, waiting to be re-emitted.
    delayed: VecDeque<(T, usize)>,
    /// Recently emitted records, the material of a burst storm.
    recent: VecDeque<T>,
    /// Records still to swallow in the current communication gap.
    gap_remaining: usize,
    stats: FaultStats,
}

impl<T: Clone + Corrupt> FaultInjector<T> {
    /// Creates an injector executing the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = FaultRng::new(plan.seed);
        Self {
            plan,
            rng,
            delayed: VecDeque::new(),
            recent: VecDeque::new(),
            gap_remaining: 0,
            stats: FaultStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Feeds one record; returns what the faulted stream emits at this
    /// point (possibly nothing, possibly several records).
    pub fn push(&mut self, record: T) -> Vec<T> {
        let mut out = Vec::new();

        // Communication gap in progress: the record vanishes.
        if self.gap_remaining > 0 {
            self.gap_remaining -= 1;
            self.stats.dropped += 1;
            self.release_due(&mut out);
            return out;
        }
        if self.rng.chance(self.plan.gap) {
            self.stats.gaps += 1;
            self.stats.dropped += 1;
            self.gap_remaining = self.plan.gap_len.saturating_sub(1);
            self.release_due(&mut out);
            return out;
        }

        if self.rng.chance(self.plan.drop) {
            self.stats.dropped += 1;
            self.release_due(&mut out);
            return out;
        }

        let emitted = if self.rng.chance(self.plan.corrupt) {
            self.stats.corrupted += 1;
            record.corrupted(self.rng.next_u64())
        } else {
            self.stats.delivered += 1;
            record
        };

        if self.rng.chance(self.plan.reorder) && self.plan.reorder_depth > 0 {
            // Hold the record back for 1..=depth slots.
            let delay = 1 + self.rng.index(self.plan.reorder_depth);
            self.stats.reordered += 1;
            // Re-classify: it will be emitted later, not now.
            self.delayed.push_back((emitted, delay));
        } else {
            out.push(emitted.clone());
            self.remember(emitted);
        }

        if self.rng.chance(self.plan.duplicate) {
            if let Some(last) = out.last().cloned() {
                self.stats.duplicated += 1;
                out.push(last);
            }
        }

        if self.rng.chance(self.plan.burst) && !self.recent.is_empty() {
            self.stats.bursts += 1;
            let n = 1 + self.rng.index(self.plan.burst_len.max(1).min(self.recent.len()));
            let tail: Vec<T> = self.recent.iter().rev().take(n).rev().cloned().collect();
            self.stats.duplicated += tail.len() as u64;
            out.extend(tail);
        }

        self.release_due(&mut out);
        out
    }

    /// Flushes any records still held back by reordering. Call at end of
    /// stream so delayed records are not lost.
    pub fn finish(&mut self) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(self.delayed.len());
        for (r, _) in std::mem::take(&mut self.delayed) {
            out.push(r);
        }
        out
    }

    /// Decrements delay counters and emits records whose delay expired.
    fn release_due(&mut self, out: &mut Vec<T>) {
        let mut still_delayed = VecDeque::with_capacity(self.delayed.len());
        for (r, d) in std::mem::take(&mut self.delayed) {
            if d <= 1 {
                out.push(r.clone());
                self.remember(r);
            } else {
                still_delayed.push_back((r, d - 1));
            }
        }
        self.delayed = still_delayed;
    }

    fn remember(&mut self, r: T) {
        self.recent.push_back(r);
        while self.recent.len() > self.plan.burst_len.max(1) {
            self.recent.pop_front();
        }
    }
}

/// An iterator adaptor applying a [`FaultPlan`] to any record stream.
#[derive(Debug)]
pub struct ChaosSource<I: Iterator> {
    inner: I,
    injector: FaultInjector<I::Item>,
    buffered: VecDeque<I::Item>,
    finished: bool,
}

impl<I> ChaosSource<I>
where
    I: Iterator,
    I::Item: Clone + Corrupt,
{
    /// Wraps `inner` with the given plan.
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        Self {
            inner,
            injector: FaultInjector::new(plan),
            buffered: VecDeque::new(),
            finished: false,
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.injector.stats()
    }
}

impl<I> Iterator for ChaosSource<I>
where
    I: Iterator,
    I::Item: Clone + Corrupt,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        loop {
            if let Some(r) = self.buffered.pop_front() {
                return Some(r);
            }
            if self.finished {
                return None;
            }
            match self.inner.next() {
                Some(record) => self.buffered.extend(self.injector.push(record)),
                None => {
                    self.finished = true;
                    self.buffered.extend(self.injector.finish());
                }
            }
        }
    }
}

/// A publisher that routes records through a [`FaultInjector`] before they
/// reach a [`Topic`] — chaos at the bus boundary rather than the source.
#[derive(Debug)]
pub struct ChaosTopic<T> {
    topic: Arc<Topic<T>>,
    injector: FaultInjector<T>,
}

impl<T: Clone + Corrupt> ChaosTopic<T> {
    /// Wraps the topic with the given plan.
    pub fn new(topic: Arc<Topic<T>>, plan: FaultPlan) -> Self {
        Self {
            topic,
            injector: FaultInjector::new(plan),
        }
    }

    /// Publishes through the fault injector. Returns how many records
    /// actually reached the topic (0 when dropped, >1 on duplication or
    /// bursts).
    pub fn publish(&mut self, record: T) -> usize {
        let out = self.injector.push(record);
        let mut reached = 0;
        for r in out {
            if self.topic.publish(r).is_some() {
                reached += 1;
            }
        }
        reached
    }

    /// Flushes delayed records into the topic and returns how many reached
    /// it.
    pub fn finish(&mut self) -> usize {
        let mut reached = 0;
        for r in self.injector.finish() {
            if self.topic.publish(r).is_some() {
                reached += 1;
            }
        }
        reached
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The wrapped topic.
    pub fn topic(&self) -> &Arc<Topic<T>> {
        &self.topic
    }
}

// --- Network faults ------------------------------------------------------

/// The fate of one client→server frame crossing the fault proxy
/// (`datacron-net`'s shim between a client and a server).
///
/// Each variant simulates a concrete wire pathology: `Reset` a mid-stream
/// connection kill, `Truncate` a partial write torn by a dying link,
/// `BitFlip` silent corruption the CRC must catch, `Stall` a congested or
/// half-dead path that read timeouts and heartbeats must survive, and
/// `Duplicate` at-least-once delivery the session-sequence dedup must
/// absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Forward the frame untouched.
    Pass,
    /// Forward the frame twice (duplicated delivery).
    Duplicate,
    /// Flip one bit inside the frame before forwarding; `salt` seeds which
    /// one (the applier reduces it modulo the flippable region).
    BitFlip {
        /// Seeds the flipped bit position.
        salt: u64,
    },
    /// Forward only a prefix of the frame, then kill the connection (a
    /// torn partial write); `salt` seeds the prefix length.
    Truncate {
        /// Seeds how many bytes survive.
        salt: u64,
    },
    /// Kill the connection before the frame is forwarded (connection
    /// reset; the frame is lost and must be replayed after resume).
    Reset,
    /// Hold the frame back for `ms` milliseconds before forwarding.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// A deterministic network-fault schedule: seed + per-frame rates, the
/// wire-level sibling of [`FaultPlan`]. Decisions come from the same
/// splitmix64 RNG family, so every network failure scenario replays from
/// one `u64`.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Seed for the fault RNG; same seed ⇒ same fault sequence.
    pub seed: u64,
    /// Probability of killing the connection before a frame.
    pub reset: f64,
    /// Probability of truncating a frame and killing the connection.
    pub truncate: f64,
    /// Probability of flipping one bit in a frame.
    pub bit_flip: f64,
    /// Probability of delivering a frame twice.
    pub duplicate: f64,
    /// Probability of stalling a frame.
    pub stall: f64,
    /// How long a stalled frame is held back, in milliseconds.
    pub stall_ms: u64,
    /// `Some(n)`: additionally kill the connection after every `n`-th
    /// frame, guaranteeing mid-stream connection kills regardless of the
    /// probabilistic rates (the equivalence drill relies on this).
    pub kill_every: Option<u64>,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            reset: 0.0,
            truncate: 0.0,
            bit_flip: 0.0,
            duplicate: 0.0,
            stall: 0.0,
            stall_ms: 2,
            kill_every: None,
        }
    }
}

impl NetFaultPlan {
    /// A plan that forwards everything untouched (the control arm).
    pub fn none() -> Self {
        Self::default()
    }

    /// Every wire pathology at once, at rates that exercise reconnect,
    /// replay and CRC paths while letting the stream make progress.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            reset: 0.004,
            truncate: 0.003,
            bit_flip: 0.006,
            duplicate: 0.02,
            stall: 0.002,
            stall_ms: 2,
            kill_every: None,
        }
    }

    /// Returns the plan with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the plan with a deterministic kill every `n` frames
    /// (builder-style).
    pub fn with_kill_every(mut self, n: u64) -> Self {
        self.kill_every = Some(n.max(1));
        self
    }
}

/// Counters of applied network faults, by mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Frames scheduled (any fate).
    pub frames: u64,
    /// Frames forwarded untouched.
    pub passed: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames with a flipped bit.
    pub bit_flips: u64,
    /// Frames truncated (connection killed after the partial write).
    pub truncated: u64,
    /// Connections killed before a frame (probabilistic + `kill_every`).
    pub resets: u64,
    /// Frames stalled.
    pub stalls: u64,
}

/// The seeded per-frame decision stream: ask [`next_fault`] what to do
/// with each client→server frame, in order. One schedule spans the whole
/// drill — reconnections do not restart it, so a fault sequence is a pure
/// function of (seed, global frame index).
///
/// [`next_fault`]: NetFaultSchedule::next_fault
#[derive(Debug, Clone)]
pub struct NetFaultSchedule {
    plan: NetFaultPlan,
    rng: FaultRng,
    /// Frames since the last deterministic kill (drives `kill_every`).
    since_kill: u64,
    stats: NetFaultStats,
}

impl NetFaultSchedule {
    /// Creates a schedule executing the given plan.
    pub fn new(plan: NetFaultPlan) -> Self {
        let rng = FaultRng::new(plan.seed);
        Self { plan, rng, since_kill: 0, stats: NetFaultStats::default() }
    }

    /// The plan this schedule executes.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> NetFaultStats {
        self.stats
    }

    /// Decides the fate of the next frame. The decision order is fixed
    /// (`kill_every` → reset → truncate → bit-flip → duplicate → stall →
    /// pass) so a schedule replays identically for a given seed.
    pub fn next_fault(&mut self) -> NetFault {
        self.stats.frames += 1;
        self.since_kill += 1;
        if let Some(n) = self.plan.kill_every {
            if self.since_kill >= n.max(1) {
                self.since_kill = 0;
                self.stats.resets += 1;
                return NetFault::Reset;
            }
        }
        if self.rng.chance(self.plan.reset) {
            self.since_kill = 0;
            self.stats.resets += 1;
            return NetFault::Reset;
        }
        if self.rng.chance(self.plan.truncate) {
            self.since_kill = 0;
            self.stats.truncated += 1;
            return NetFault::Truncate { salt: self.rng.next_u64() };
        }
        if self.rng.chance(self.plan.bit_flip) {
            self.stats.bit_flips += 1;
            return NetFault::BitFlip { salt: self.rng.next_u64() };
        }
        if self.rng.chance(self.plan.duplicate) {
            self.stats.duplicated += 1;
            return NetFault::Duplicate;
        }
        if self.rng.chance(self.plan.stall) {
            self.stats.stalls += 1;
            return NetFault::Stall { ms: self.plan.stall_ms };
        }
        self.stats.passed += 1;
        NetFault::Pass
    }
}

// --- Disk faults ---------------------------------------------------------

/// A fault injected into durable on-disk state (write-ahead-log segments,
/// checkpoint files) to exercise crash-recovery paths.
///
/// Deterministic: the same directory contents, `suffix`, fault and seed
/// always damage the same file at the same position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiskFault {
    /// A torn write: the last matching file loses its final `bytes` bytes
    /// (clamped so the file keeps at least its header), as if the process
    /// died mid-`write`.
    ShortWrite {
        /// Bytes chopped off the tail.
        bytes: u64,
    },
    /// Silent media corruption: one seeded bit is flipped in the interior
    /// of a sealed (non-last) file when several exist, else of the only one.
    BitFlip,
    /// A whole file vanishes (operator error, lost volume): a middle file
    /// is deleted when three or more exist, else the first of two.
    MissingSegment,
}

/// Injects `fault` into the files of `dir` whose names end with `suffix`
/// (e.g. `".seg"` for WAL segments), deterministically under `seed`.
///
/// Returns the path of the damaged/deleted file, or `None` when the
/// directory holds nothing the fault can apply to (no matching files, or a
/// single file for [`DiskFault::MissingSegment`]... which needs two).
pub fn inject_disk_fault(
    dir: &std::path::Path,
    suffix: &str,
    fault: DiskFault,
    seed: u64,
) -> std::io::Result<Option<std::path::PathBuf>> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(suffix)))
        .collect();
    files.sort();
    if files.is_empty() {
        return Ok(None);
    }
    let mut rng = FaultRng::new(seed);
    match fault {
        DiskFault::ShortWrite { bytes } => {
            let path = files.last().expect("non-empty").clone();
            let len = std::fs::metadata(&path)?.len();
            // Keep at least the 8-byte magic plus one torn byte so the
            // damage lands in the frame region, not the header.
            let chop = bytes.min(len.saturating_sub(9));
            if chop == 0 {
                return Ok(None);
            }
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(len - chop)?;
            f.sync_all()?;
            Ok(Some(path))
        }
        DiskFault::BitFlip => {
            // Prefer a sealed file: damage there is true corruption, not a
            // recoverable torn tail.
            let path = if files.len() >= 2 {
                files[rng.index(files.len() - 1)].clone()
            } else {
                files[0].clone()
            };
            let mut bytes = std::fs::read(&path)?;
            if bytes.len() <= 16 {
                return Ok(None);
            }
            // Seeded interior offset, past the header, away from the tail
            // when the file is big enough.
            let lo = 24usize.min(bytes.len() - 1);
            let hi = bytes.len().saturating_sub(64).max(lo + 1);
            let offset = if hi > lo { lo + rng.index(hi - lo) } else { 16.min(bytes.len() - 1) };
            let bit = rng.index(8) as u8;
            bytes[offset] ^= 1 << bit;
            std::fs::write(&path, &bytes)?;
            Ok(Some(path))
        }
        DiskFault::MissingSegment => {
            if files.len() < 2 {
                return Ok(None);
            }
            let path = if files.len() >= 3 {
                // A middle file: recovery must detect the sequence gap.
                files[1 + rng.index(files.len() - 2)].clone()
            } else {
                files[0].clone()
            };
            std::fs::remove_file(&path)?;
            Ok(Some(path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp};

    fn run(plan: FaultPlan, n: u64) -> (Vec<u64>, FaultStats) {
        let mut src = ChaosSource::new(0..n, plan);
        let out: Vec<u64> = src.by_ref().collect();
        (out, src.stats())
    }

    #[test]
    fn no_faults_is_identity() {
        let (out, stats) = run(FaultPlan::none(), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.dropped + stats.duplicated + stats.corrupted + stats.reordered, 0);
    }

    #[test]
    fn same_seed_same_stream() {
        let a = run(FaultPlan::chaos(7), 500);
        let b = run(FaultPlan::chaos(7), 500);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = run(FaultPlan::chaos(8), 500);
        assert_ne!(a.0, c.0, "different seed, different chaos");
    }

    #[test]
    fn drops_thin_the_stream() {
        let (out, stats) = run(FaultPlan::drops(0.3).with_seed(1), 1000);
        assert!(out.len() < 1000);
        assert_eq!(out.len() as u64, stats.delivered);
        assert_eq!(stats.delivered + stats.dropped, 1000);
        // Survivors keep their order and values.
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicates_add_copies() {
        let (out, stats) = run(FaultPlan::duplicates(0.2).with_seed(2), 1000);
        assert_eq!(out.len() as u64, 1000 + stats.duplicated);
        assert!(stats.duplicated > 0);
        // Every duplicate is adjacent to its original.
        let mut seen = std::collections::HashMap::new();
        for v in &out {
            *seen.entry(*v).or_insert(0u32) += 1;
        }
        assert!(seen.values().all(|&c| c <= 2));
    }

    #[test]
    fn reorder_permutes_but_preserves_multiset() {
        let (out, stats) = run(FaultPlan::reorders(0.3).with_seed(3), 1000);
        assert!(stats.reordered > 0);
        assert_eq!(out.len(), 1000, "reorder loses nothing");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert!(out.windows(2).any(|w| w[0] > w[1]), "order was perturbed");
        // Displacement is bounded by reorder_depth per release round.
        for (i, v) in out.iter().enumerate() {
            assert!((i as i64 - *v as i64).unsigned_abs() as usize <= 2 * FaultPlan::default().reorder_depth + 2);
        }
    }

    #[test]
    fn gaps_swallow_runs() {
        let (out, stats) = run(FaultPlan::gaps(0.01).with_seed(4), 2000);
        assert!(stats.gaps > 0);
        assert!(stats.dropped >= stats.gaps * 2, "gaps swallow multiple records");
        assert_eq!(out.len() as u64 + stats.dropped, 2000);
        // A gap shows as a jump in consecutive values.
        let max_jump = out.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_jump as usize >= FaultPlan::default().gap_len);
    }

    #[test]
    fn bursts_replay_recent_tail() {
        let (out, stats) = run(FaultPlan::bursts(0.02).with_seed(5), 1000);
        assert!(stats.bursts > 0);
        assert_eq!(out.len() as u64, 1000 + stats.duplicated);
        // Replayed records are stale: some value appears after a larger one.
        assert!(out.windows(2).any(|w| w[0] >= w[1]));
    }

    #[test]
    fn corrupted_position_reports_are_always_implausible() {
        let base = PositionReport {
            speed_mps: 8.0,
            heading_deg: 90.0,
            ..PositionReport::basic(EntityId::vessel(9), Timestamp::from_secs(10), GeoPoint::new(1.0, 40.0))
        };
        assert!(base.is_plausible(35.0));
        for variant in 0..64 {
            let bad = base.corrupted(variant);
            assert!(
                !bad.is_plausible(35.0),
                "variant {variant} produced a plausible corruption: {bad:?}"
            );
        }
    }

    #[test]
    fn chaos_composes_all_modes() {
        let (out, stats) = run(FaultPlan::chaos(11), 5000);
        assert!(stats.dropped > 0);
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
        assert!(stats.corrupted > 0);
        assert!(stats.gaps > 0);
        assert!(stats.bursts > 0);
        assert_eq!(out.len() as u64, stats.emitted(), "{stats:?}");
        assert_eq!(out.len() as u64 + stats.dropped, 5000 + stats.duplicated);
    }

    #[test]
    fn chaos_topic_publishes_faulted_stream() {
        let topic = Topic::new("chaos");
        let mut chaos = ChaosTopic::new(Arc::clone(&topic), FaultPlan::drops(0.5).with_seed(6));
        let mut reached = 0;
        for i in 0..100u64 {
            reached += chaos.publish(i);
        }
        reached += chaos.finish();
        assert_eq!(topic.len(), reached as u64);
        assert!(reached < 100);
        assert_eq!(chaos.stats().delivered as usize, reached);
    }

    #[test]
    fn net_fault_schedule_is_deterministic_per_seed() {
        let decisions = |seed: u64| -> Vec<NetFault> {
            let mut s = NetFaultSchedule::new(NetFaultPlan::chaos(seed));
            (0..2000).map(|_| s.next_fault()).collect()
        };
        assert_eq!(decisions(42), decisions(42), "same seed, same fault sequence");
        assert_ne!(decisions(42), decisions(43), "different seed, different sequence");
    }

    #[test]
    fn net_fault_chaos_exercises_every_mode() {
        let mut s = NetFaultSchedule::new(NetFaultPlan::chaos(7));
        for _ in 0..20_000 {
            s.next_fault();
        }
        let stats = s.stats();
        assert_eq!(stats.frames, 20_000);
        assert!(stats.resets > 0, "{stats:?}");
        assert!(stats.truncated > 0, "{stats:?}");
        assert!(stats.bit_flips > 0, "{stats:?}");
        assert!(stats.duplicated > 0, "{stats:?}");
        assert!(stats.stalls > 0, "{stats:?}");
        assert!(stats.passed > stats.frames / 2, "most frames pass untouched");
    }

    #[test]
    fn net_fault_none_is_transparent_and_kill_every_fires_exactly() {
        let mut s = NetFaultSchedule::new(NetFaultPlan::none());
        assert!((0..500).all(|_| s.next_fault() == NetFault::Pass));

        let mut s = NetFaultSchedule::new(NetFaultPlan::none().with_kill_every(10));
        let fates: Vec<NetFault> = (0..30).map(|_| s.next_fault()).collect();
        let kills: Vec<usize> =
            fates.iter().enumerate().filter(|(_, f)| **f == NetFault::Reset).map(|(i, _)| i).collect();
        assert_eq!(kills, vec![9, 19, 29], "every 10th frame resets the connection");
        assert_eq!(s.stats().resets, 3);
    }

    #[test]
    fn disk_faults_are_deterministic_and_bounded() {
        let dir = std::env::temp_dir().join(format!("datacron-diskfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..4 {
            std::fs::write(dir.join(format!("wal-{i:020}.seg")), vec![0xAA; 200]).unwrap();
        }
        // Same seed, same victim.
        let a = inject_disk_fault(&dir, ".seg", DiskFault::BitFlip, 7).unwrap().unwrap();
        // Re-create pristine files and repeat.
        for i in 0..4 {
            std::fs::write(dir.join(format!("wal-{i:020}.seg")), vec![0xAA; 200]).unwrap();
        }
        let b = inject_disk_fault(&dir, ".seg", DiskFault::BitFlip, 7).unwrap().unwrap();
        assert_eq!(a, b);

        // ShortWrite hits the last file and keeps the 8-byte header.
        let last = inject_disk_fault(&dir, ".seg", DiskFault::ShortWrite { bytes: 500 }, 1)
            .unwrap()
            .unwrap();
        assert!(last.to_string_lossy().contains("00000000000000000003"));
        assert_eq!(std::fs::metadata(&last).unwrap().len(), 9);

        // MissingSegment removes a middle file, never the last.
        let gone = inject_disk_fault(&dir, ".seg", DiskFault::MissingSegment, 3).unwrap().unwrap();
        assert!(!gone.exists());
        assert!(!gone.to_string_lossy().contains("00000000000000000000"));
        assert!(!gone.to_string_lossy().ends_with("00000000000000000003.seg"));

        // Nothing to damage -> None, not an error.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(inject_disk_fault(&empty, ".seg", DiskFault::BitFlip, 1).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

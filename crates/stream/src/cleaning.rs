//! Online data cleaning of surveillance streams.
//!
//! The real-time layer performs "online data cleaning of erroneous data"
//! (§3) before any downstream processing. [`StreamCleaner`] is a per-entity
//! operator that rejects:
//!
//! * implausible records (invalid coordinates, non-finite or impossible
//!   reported kinematics);
//! * duplicates (same entity, same timestamp);
//! * out-of-order records (older than the last accepted one);
//! * teleport outliers — positions implying a speed over the physical bound
//!   given the previous accepted position (this is what catches the gross
//!   AIS position spikes).
//!
//! Every rejection is labelled, so data-quality assessment (the
//! visual-analytics quality workflows of §7) can count error types.

use crate::operator::Operator;
use datacron_geo::{PositionReport, Timestamp};

/// Why a record was rejected, or that it was accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CleaningOutcome {
    /// The record passed all filters.
    Accepted,
    /// Invalid or non-physical fields.
    Implausible,
    /// Same timestamp as an already-accepted record of this entity.
    Duplicate,
    /// Timestamp earlier than the last accepted record.
    OutOfOrder,
    /// Position implies an impossible speed from the previous position.
    Teleport,
}

/// Cleaning thresholds.
#[derive(Debug, Clone)]
pub struct CleaningConfig {
    /// Maximum plausible reported speed, m/s (vessels ~30, aircraft ~350).
    pub max_speed_mps: f64,
    /// Maximum implied speed between consecutive accepted positions, m/s.
    pub max_implied_speed_mps: f64,
}

impl CleaningConfig {
    /// Defaults for the maritime domain.
    pub fn maritime() -> Self {
        Self {
            max_speed_mps: 35.0,
            max_implied_speed_mps: 45.0,
        }
    }

    /// Defaults for the aviation domain.
    pub fn aviation() -> Self {
        Self {
            max_speed_mps: 350.0,
            max_implied_speed_mps: 420.0,
        }
    }
}

/// Running rejection counters, one per outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleaningStats {
    /// Accepted records.
    pub accepted: u64,
    /// Implausible-field rejections.
    pub implausible: u64,
    /// Duplicate rejections.
    pub duplicates: u64,
    /// Out-of-order rejections.
    pub out_of_order: u64,
    /// Teleport rejections.
    pub teleports: u64,
}

impl CleaningStats {
    /// Total records seen.
    pub fn total(&self) -> u64 {
        self.accepted + self.implausible + self.duplicates + self.out_of_order + self.teleports
    }
}

/// Resumable snapshot of a [`StreamCleaner`]'s mutable state (the config is
/// supplied again on restore). Captured by the durability layer's
/// checkpoints so a recovered cleaner resumes with identical decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanerState {
    /// The last accepted report (the duplicate/teleport reference point).
    pub last: Option<PositionReport>,
    /// Outcome counters at snapshot time.
    pub stats: CleaningStats,
}

/// Per-entity cleaning operator. Use one instance per entity (e.g. inside a
/// `KeyedOperator`).
#[derive(Debug, Clone)]
pub struct StreamCleaner {
    config: CleaningConfig,
    last: Option<PositionReport>,
    stats: CleaningStats,
}

impl StreamCleaner {
    /// Creates a cleaner with the given thresholds.
    pub fn new(config: CleaningConfig) -> Self {
        Self {
            config,
            last: None,
            stats: CleaningStats::default(),
        }
    }

    /// Snapshots the mutable state for checkpointing.
    pub fn state(&self) -> CleanerState {
        CleanerState { last: self.last, stats: self.stats }
    }

    /// Rebuilds a cleaner from a checkpointed state and its config.
    pub fn restore(config: CleaningConfig, state: CleanerState) -> Self {
        Self { config, last: state.last, stats: state.stats }
    }

    /// The running counters.
    pub fn stats(&self) -> CleaningStats {
        self.stats
    }

    /// The last accepted record's timestamp, if any.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.last.map(|r| r.ts)
    }

    /// Classifies one record and updates state when accepted.
    pub fn check(&mut self, r: &PositionReport) -> CleaningOutcome {
        if !r.is_plausible(self.config.max_speed_mps) {
            self.stats.implausible += 1;
            return CleaningOutcome::Implausible;
        }
        if let Some(prev) = &self.last {
            if r.ts == prev.ts {
                self.stats.duplicates += 1;
                return CleaningOutcome::Duplicate;
            }
            if r.ts < prev.ts {
                self.stats.out_of_order += 1;
                return CleaningOutcome::OutOfOrder;
            }
            let dt = r.ts.delta_secs(&prev.ts);
            let implied = prev.point.haversine_distance(&r.point) / dt.max(1e-3);
            if implied > self.config.max_implied_speed_mps {
                self.stats.teleports += 1;
                return CleaningOutcome::Teleport;
            }
        }
        self.last = Some(*r);
        self.stats.accepted += 1;
        CleaningOutcome::Accepted
    }
}

impl Operator<PositionReport, PositionReport> for StreamCleaner {
    fn on_record(&mut self, input: PositionReport, out: &mut Vec<PositionReport>) {
        if self.check(&input) == CleaningOutcome::Accepted {
            out.push(input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint};

    fn report(t_s: i64, lon: f64, lat: f64, speed: f64) -> PositionReport {
        PositionReport {
            speed_mps: speed,
            ..PositionReport::basic(EntityId::vessel(1), Timestamp::from_secs(t_s), GeoPoint::new(lon, lat))
        }
    }

    #[test]
    fn accepts_clean_sequence() {
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        for i in 0..10 {
            let r = report(i * 10, 0.001 * i as f64, 40.0, 8.0);
            assert_eq!(c.check(&r), CleaningOutcome::Accepted);
        }
        assert_eq!(c.stats().accepted, 10);
        assert_eq!(c.stats().total(), 10);
    }

    #[test]
    fn rejects_implausible_fields() {
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        assert_eq!(c.check(&report(0, 200.0, 40.0, 8.0)), CleaningOutcome::Implausible);
        assert_eq!(c.check(&report(0, 0.0, 40.0, 100.0)), CleaningOutcome::Implausible);
        let mut nan = report(0, 0.0, 40.0, 8.0);
        nan.heading_deg = f64::NAN;
        assert_eq!(c.check(&nan), CleaningOutcome::Implausible);
    }

    #[test]
    fn rejects_duplicates_and_out_of_order() {
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        assert_eq!(c.check(&report(100, 0.0, 40.0, 8.0)), CleaningOutcome::Accepted);
        assert_eq!(c.check(&report(100, 0.0, 40.0, 8.0)), CleaningOutcome::Duplicate);
        assert_eq!(c.check(&report(50, 0.0, 40.0, 8.0)), CleaningOutcome::OutOfOrder);
        assert_eq!(c.stats().duplicates, 1);
        assert_eq!(c.stats().out_of_order, 1);
    }

    #[test]
    fn rejects_teleports_then_recovers() {
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        assert_eq!(c.check(&report(0, 0.0, 40.0, 8.0)), CleaningOutcome::Accepted);
        // 0.5 degrees (~42 km at lat 40) in 10 s is a teleport.
        assert_eq!(c.check(&report(10, 0.5, 40.0, 8.0)), CleaningOutcome::Teleport);
        // The next plausible record relative to the last *accepted* one passes.
        assert_eq!(c.check(&report(20, 0.002, 40.0, 8.0)), CleaningOutcome::Accepted);
        assert_eq!(c.stats().teleports, 1);
    }

    #[test]
    fn operator_impl_filters_stream() {
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        let inputs = vec![
            report(0, 0.0, 40.0, 8.0),
            report(0, 0.0, 40.0, 8.0),  // duplicate
            report(10, 0.5, 40.0, 8.0), // teleport
            report(20, 0.002, 40.0, 8.0),
        ];
        let out = c.run(inputs);
        assert_eq!(out.len(), 2);
        assert_eq!(c.watermark(), Some(Timestamp::from_secs(20)));
    }

    #[test]
    fn cleans_generated_noisy_voyage() {
        use datacron_data::maritime::{VoyageConfig, VoyageGenerator};
        let cfg = VoyageConfig {
            outlier_probability: 0.02,
            duplicate_probability: 0.02,
            ..VoyageConfig::default()
        };
        let v = VoyageGenerator::new(cfg).voyage(
            1,
            datacron_data::maritime::VesselClass::Cargo,
            GeoPoint::new(0.0, 40.0),
            GeoPoint::new(1.0, 40.5),
            Timestamp(0),
            5,
        );
        let mut c = StreamCleaner::new(CleaningConfig::maritime());
        let kept = c.run(v.reports.clone());
        let stats = c.stats();
        assert!(stats.teleports > 0, "injected outliers should be caught: {stats:?}");
        assert!(stats.duplicates > 0, "injected duplicates should be caught");
        assert!(kept.len() as u64 == stats.accepted);
        // The cleaned stream stays close to the ground truth.
        let cleaned = datacron_geo::Trajectory::from_reports(kept);
        let dev = cleaned.mean_deviation_from(&v.clean).expect("non-empty");
        assert!(dev < 100.0, "cleaned stream deviates {dev} m");
    }
}

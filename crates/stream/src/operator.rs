//! The stream-operator abstraction.
//!
//! datAcron's real-time layer is a chain of record-at-a-time transformations
//! with per-entity state (cleaning → statistics → synopses → …). An
//! [`Operator`] maps one input record to zero or more outputs;
//! [`KeyedOperator`] partitions state by key the way Flink's `keyBy` does;
//! [`Pipeline`] composes two operators; and [`run_partitioned`] executes a
//! keyed operator over pre-partitioned input on multiple threads,
//! reproducing the data-parallel execution model of the original system.

use std::collections::HashMap;
use std::hash::Hash;

/// A stateful record-at-a-time stream transformer.
pub trait Operator<I, O> {
    /// Processes one record, appending any outputs to `out`.
    fn on_record(&mut self, input: I, out: &mut Vec<O>);

    /// Flushes any buffered state at end-of-stream.
    fn on_flush(&mut self, _out: &mut Vec<O>) {}

    /// Convenience: runs the operator over an entire finite stream.
    fn run(&mut self, inputs: impl IntoIterator<Item = I>) -> Vec<O>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        for i in inputs {
            self.on_record(i, &mut out);
        }
        self.on_flush(&mut out);
        out
    }
}

/// Blanket operator for plain closures (stateless map/filter/flat-map).
impl<I, O, F> Operator<I, O> for F
where
    F: FnMut(I, &mut Vec<O>),
{
    fn on_record(&mut self, input: I, out: &mut Vec<O>) {
        self(input, out)
    }
}

/// Partitions state by key: one inner operator instance per key, created on
/// first sight — the `keyBy(entity)` idiom of the original Flink jobs.
pub struct KeyedOperator<K, I, O, Op, KeyFn, NewFn>
where
    K: Eq + Hash,
    Op: Operator<I, O>,
    KeyFn: Fn(&I) -> K,
    NewFn: Fn(&K) -> Op,
{
    states: HashMap<K, Op>,
    key_fn: KeyFn,
    new_fn: NewFn,
    _marker: std::marker::PhantomData<(I, O)>,
}

impl<K, I, O, Op, KeyFn, NewFn> KeyedOperator<K, I, O, Op, KeyFn, NewFn>
where
    K: Eq + Hash + Clone,
    Op: Operator<I, O>,
    KeyFn: Fn(&I) -> K,
    NewFn: Fn(&K) -> Op,
{
    /// Creates a keyed operator with a key extractor and a per-key factory.
    pub fn new(key_fn: KeyFn, new_fn: NewFn) -> Self {
        Self {
            states: HashMap::new(),
            key_fn,
            new_fn,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of keys with live state.
    pub fn key_count(&self) -> usize {
        self.states.len()
    }

    /// Read access to a key's state, if it exists.
    pub fn state_of(&self, key: &K) -> Option<&Op> {
        self.states.get(key)
    }
}

impl<K, I, O, Op, KeyFn, NewFn> Operator<I, O> for KeyedOperator<K, I, O, Op, KeyFn, NewFn>
where
    K: Eq + Hash + Clone,
    Op: Operator<I, O>,
    KeyFn: Fn(&I) -> K,
    NewFn: Fn(&K) -> Op,
{
    fn on_record(&mut self, input: I, out: &mut Vec<O>) {
        let key = (self.key_fn)(&input);
        let op = self
            .states
            .entry(key.clone())
            .or_insert_with(|| (self.new_fn)(&key));
        op.on_record(input, out);
    }

    fn on_flush(&mut self, out: &mut Vec<O>) {
        for op in self.states.values_mut() {
            op.on_flush(out);
        }
    }
}

/// Sequential composition of two operators.
pub struct Pipeline<A, B, M> {
    first: A,
    second: B,
    buffer: Vec<M>,
}

impl<A, B, M> Pipeline<A, B, M> {
    /// Composes `first` then `second`.
    pub fn new(first: A, second: B) -> Self {
        Self {
            first,
            second,
            buffer: Vec::new(),
        }
    }
}

impl<I, M, O, A, B> Operator<I, O> for Pipeline<A, B, M>
where
    A: Operator<I, M>,
    B: Operator<M, O>,
{
    fn on_record(&mut self, input: I, out: &mut Vec<O>) {
        self.buffer.clear();
        self.first.on_record(input, &mut self.buffer);
        for m in self.buffer.drain(..) {
            self.second.on_record(m, out);
        }
    }

    fn on_flush(&mut self, out: &mut Vec<O>) {
        self.buffer.clear();
        self.first.on_flush(&mut self.buffer);
        for m in self.buffer.drain(..) {
            self.second.on_record(m, out);
        }
        self.second.on_flush(out);
    }
}

/// A partition worker died; the payload carries which one and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPanic {
    /// Index of the partition whose worker panicked.
    pub partition: usize,
    /// The panic message, when it was a string.
    pub message: String,
}

impl std::fmt::Display for PartitionPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "partition {} worker panicked: {}", self.partition, self.message)
    }
}

impl std::error::Error for PartitionPanic {}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one operator instance per partition on its own thread and collects
/// the outputs per partition. Records within a partition keep their order;
/// the caller is responsible for partitioning by key (entities are
/// independent, so any per-entity computation parallelises this way).
///
/// A panic inside one partition's operator does not take the others down:
/// every surviving partition still finishes, and the first failure is
/// reported as a typed [`PartitionPanic`].
pub fn run_partitioned<I, O, Op, F>(
    partitions: Vec<Vec<I>>,
    make_op: F,
) -> Result<Vec<Vec<O>>, PartitionPanic>
where
    I: Send,
    O: Send,
    Op: Operator<I, O>,
    F: Fn() -> Op + Sync,
{
    let joined: Vec<std::thread::Result<Vec<O>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|part| {
                let make_op = &make_op;
                scope.spawn(move || {
                    let mut op = make_op();
                    op.run(part)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    joined
        .into_iter()
        .enumerate()
        .map(|(partition, r)| {
            r.map_err(|payload| PartitionPanic {
                partition,
                message: panic_message(payload.as_ref()),
            })
        })
        .collect()
}

/// Splits records into `n` partitions by a key hash, preserving order within
/// each partition.
pub fn partition_by_key<I, K, F>(records: impl IntoIterator<Item = I>, n: usize, key_fn: F) -> Vec<Vec<I>>
where
    K: Hash,
    F: Fn(&I) -> K,
{
    assert!(n > 0, "need at least one partition");
    let mut parts: Vec<Vec<I>> = (0..n).map(|_| Vec::new()).collect();
    for r in records {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key_fn(&r).hash(&mut h);
        let idx = (h.finish() % n as u64) as usize;
        parts[idx].push(r);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: u64,
    }

    impl Operator<u64, (u64, u64)> for Counter {
        fn on_record(&mut self, input: u64, out: &mut Vec<(u64, u64)>) {
            self.seen += 1;
            out.push((input, self.seen));
        }
    }

    #[test]
    fn closure_operator_maps_and_filters() {
        let mut double_evens = |x: u64, out: &mut Vec<u64>| {
            if x.is_multiple_of(2) {
                out.push(x * 2);
            }
        };
        let outputs = double_evens.run(0..6);
        assert_eq!(outputs, vec![0, 4, 8]);
    }

    #[test]
    fn keyed_operator_isolates_state() {
        let mut keyed = KeyedOperator::new(|i: &(u8, u64)| i.0, |_k| Counter { seen: 0 });
        let mut out = Vec::new();
        for rec in [(1u8, 10u64), (2, 20), (1, 11), (1, 12), (2, 21)] {
            keyed.on_record(rec, &mut out);
        }
        assert_eq!(keyed.key_count(), 2);
        // Counter restarts per key.
        let counts: Vec<u64> = out.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![1, 1, 2, 3, 2]);
    }

    impl Operator<(u8, u64), ((u8, u64), u64)> for Counter {
        fn on_record(&mut self, input: (u8, u64), out: &mut Vec<((u8, u64), u64)>) {
            self.seen += 1;
            out.push((input, self.seen));
        }
    }

    #[test]
    fn pipeline_composes_and_flushes() {
        struct Batcher {
            buf: Vec<u64>,
        }
        impl Operator<u64, Vec<u64>> for Batcher {
            fn on_record(&mut self, input: u64, out: &mut Vec<Vec<u64>>) {
                self.buf.push(input);
                if self.buf.len() == 2 {
                    out.push(std::mem::take(&mut self.buf));
                }
            }
            fn on_flush(&mut self, out: &mut Vec<Vec<u64>>) {
                if !self.buf.is_empty() {
                    out.push(std::mem::take(&mut self.buf));
                }
            }
        }
        let sum = |batch: Vec<u64>, out: &mut Vec<u64>| out.push(batch.iter().sum());
        let mut pipe = Pipeline::new(Batcher { buf: Vec::new() }, sum);
        let outputs = pipe.run(1..=5);
        assert_eq!(outputs, vec![3, 7, 5]); // (1+2), (3+4), flush (5)
    }

    #[test]
    fn run_partitioned_reports_worker_panics() {
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3, 13, 4], vec![5]];
        let err = run_partitioned(parts, || {
            |x: u64, out: &mut Vec<u64>| {
                assert!(x != 13, "poison record");
                out.push(x);
            }
        })
        .expect_err("partition 1 panics");
        assert_eq!(err.partition, 1);
        assert!(err.message.contains("poison record"), "{}", err.message);
    }

    #[test]
    fn partition_by_key_is_stable_per_key() {
        let parts = partition_by_key(0..100u64, 4, |x| x % 10);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // Records of one key land in one partition, in order.
        for p in &parts {
            for key in 0..10u64 {
                let seq: Vec<u64> = p.iter().copied().filter(|x| x % 10 == key).collect();
                assert!(seq.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn run_partitioned_matches_sequential() {
        let records: Vec<(u8, u64)> = (0..200).map(|i| ((i % 7) as u8, i)).collect();
        let parts = partition_by_key(records.clone(), 4, |r| r.0);
        let parallel = run_partitioned(parts, || {
            KeyedOperator::new(|i: &(u8, u64)| i.0, |_| Counter { seen: 0 })
        })
        .expect("no worker panics");
        let flat: usize = parallel.iter().map(Vec::len).sum();
        assert_eq!(flat, 200);
        // Per-key counters end at the same totals as a sequential run.
        let mut seq_op = KeyedOperator::new(|i: &(u8, u64)| i.0, |_| Counter { seen: 0 });
        let seq_out = seq_op.run(records);
        let max_per_key = |out: &[((u8, u64), u64)], key: u8| {
            out.iter().filter(|((k, _), _)| *k == key).map(|(_, c)| *c).max().unwrap_or(0)
        };
        let par_flat: Vec<((u8, u64), u64)> = parallel.into_iter().flatten().collect();
        for key in 0..7u8 {
            assert_eq!(max_per_key(&par_flat, key), max_per_key(&seq_out, key));
        }
    }
}

//! Concurrency stress tests for `Topic`/`Consumer`: concurrent publishing,
//! capacity truncation and polling must never deadlock, lose accounting,
//! or let a lagging consumer observe silently wrong data.

use datacron_stream::bus::{OverflowPolicy, Topic, TopicConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Unbounded topic, many producers, many consumers: every consumer sees
/// every message, in per-producer order, with no lag signals.
#[test]
fn unbounded_topic_is_lossless_under_concurrency() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 2_000;
    let topic: Arc<Topic<u64>> = Topic::new("stress");
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut c = topic.consumer();
            thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < (PRODUCERS * PER_PRODUCER) as usize {
                    match c.poll(64) {
                        Ok(batch) if batch.is_empty() => thread::yield_now(),
                        Ok(batch) => seen.extend(batch),
                        Err(lagged) => panic!("unbounded topic lagged: {lagged:?}"),
                    }
                }
                seen
            })
        })
        .collect();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let t = Arc::clone(&topic);
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    t.publish(p * PER_PRODUCER + i);
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer");
    }
    for c in consumers {
        let seen = c.join().expect("consumer");
        assert_eq!(seen.len() as u64, PRODUCERS * PER_PRODUCER);
        for p in 0..PRODUCERS {
            let per: Vec<u64> = seen
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == p)
                .collect();
            assert_eq!(per.len() as u64, PER_PRODUCER);
            assert!(per.windows(2).all(|w| w[0] < w[1]), "per-producer order");
        }
    }
}

/// Bounded `DropOldest` topic under concurrent publish + poll: the consumer
/// either reads valid data or gets an explicit `Lagged` count — and
/// (messages read) + (messages skipped) accounts for exactly the published
/// stream, with values arriving in strictly increasing order.
#[test]
fn drop_oldest_truncation_is_observable_not_silent() {
    const TOTAL: u64 = 50_000;
    const CAPACITY: usize = 64;
    let topic: Arc<Topic<u64>> = Topic::bounded("ring", CAPACITY, OverflowPolicy::DropOldest);
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let mut c = topic.consumer();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut read: u64 = 0;
            let mut skipped: u64 = 0;
            let mut last: Option<u64> = None;
            loop {
                match c.poll(16) {
                    Ok(batch) => {
                        if batch.is_empty() && done.load(Ordering::Acquire) {
                            break;
                        }
                        for v in batch {
                            // Monotonicity: truncation may skip values but
                            // can never rewind or repeat them.
                            if let Some(prev) = last {
                                assert!(v > prev, "went backwards: {prev} then {v}");
                            }
                            last = Some(v);
                            read += 1;
                        }
                    }
                    Err(lagged) => skipped += lagged.skipped,
                }
            }
            // Drain whatever is still retained after the producer stopped.
            loop {
                match c.poll(usize::MAX) {
                    Ok(batch) if batch.is_empty() => break,
                    Ok(batch) => read += batch.len() as u64,
                    Err(lagged) => skipped += lagged.skipped,
                }
            }
            (read, skipped)
        })
    };

    for i in 0..TOTAL {
        topic.publish(i);
    }
    done.store(true, Ordering::Release);
    let (read, skipped) = reader.join().expect("reader");
    assert_eq!(
        read + skipped,
        TOTAL,
        "every published message is either read or explicitly skipped"
    );
    assert!(topic.retained() <= CAPACITY);
    let stats = topic.stats();
    assert_eq!(stats.published, TOTAL);
    assert!(stats.dropped > 0, "the reader cannot keep up with a tight loop");
}

/// Block policy with a slow consumer: publishers stall rather than drop, so
/// delivery is lossless and memory stays bounded, even with several
/// producers contending.
#[test]
fn block_policy_is_lossless_under_contention() {
    const PRODUCERS: u64 = 3;
    const PER_PRODUCER: u64 = 500;
    let topic: Arc<Topic<u64>> = Topic::with_config(
        "backpressure",
        TopicConfig {
            capacity: Some(16),
            policy: OverflowPolicy::Block,
            block_timeout: Duration::from_secs(30),
        },
    );
    let mut consumer = topic.consumer();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let t = Arc::clone(&topic);
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    t.try_publish(p * PER_PRODUCER + i)
                        .expect("blocked publish succeeds once the consumer drains");
                }
            })
        })
        .collect();
    let mut seen = Vec::new();
    while seen.len() < (PRODUCERS * PER_PRODUCER) as usize {
        match consumer.poll(8) {
            Ok(batch) if batch.is_empty() => thread::yield_now(),
            Ok(batch) => seen.extend(batch),
            Err(lagged) => panic!("Block never truncates unread data: {lagged:?}"),
        }
        assert!(topic.retained() <= 16);
    }
    for p in producers {
        p.join().expect("producer");
    }
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    assert_eq!(topic.stats().dropped, 0);
}

/// `poll_wait` parks instead of spinning, and a publish wakes it promptly:
/// the waiter must return the data far sooner than its generous timeout.
#[test]
fn poll_wait_wakes_promptly_on_publish() {
    let topic: Arc<Topic<u64>> = Topic::new("wakeup");
    let waiter = {
        let mut c = topic.consumer();
        thread::spawn(move || {
            let start = std::time::Instant::now();
            let batch = c.poll_wait(8, Duration::from_secs(30)).expect("no lag");
            (batch, start.elapsed())
        })
    };
    // Give the waiter time to park before publishing.
    thread::sleep(Duration::from_millis(50));
    topic.publish(7);
    let (batch, elapsed) = waiter.join().expect("waiter");
    assert_eq!(batch, vec![7]);
    assert!(
        elapsed < Duration::from_secs(5),
        "woken by the publish, not the 30s timeout (took {elapsed:?})"
    );
}

/// A batched publish wakes a parked `poll_wait` just like a single publish,
/// and delivers the whole batch in one poll.
#[test]
fn poll_wait_wakes_promptly_on_publish_batch() {
    let topic: Arc<Topic<u64>> = Topic::new("wakeup-batch");
    let waiter = {
        let mut c = topic.consumer();
        thread::spawn(move || {
            let start = std::time::Instant::now();
            let batch = c.poll_wait(8, Duration::from_secs(30)).expect("no lag");
            (batch, start.elapsed())
        })
    };
    thread::sleep(Duration::from_millis(50));
    topic.publish_batch([1, 2, 3]);
    let (batch, elapsed) = waiter.join().expect("waiter");
    assert_eq!(batch, vec![1, 2, 3]);
    assert!(
        elapsed < Duration::from_secs(5),
        "woken by the batch publish, not the 30s timeout (took {elapsed:?})"
    );
}

/// On a drained topic `poll_wait` honours its timeout: it returns an empty
/// batch (not an error, not a hang) once the deadline passes.
#[test]
fn poll_wait_times_out_with_an_empty_batch() {
    let topic: Arc<Topic<u64>> = Topic::new("timeout");
    let mut c = topic.consumer();
    let start = std::time::Instant::now();
    let batch = c.poll_wait(8, Duration::from_millis(50)).expect("no lag");
    assert!(batch.is_empty());
    assert!(start.elapsed() >= Duration::from_millis(50), "waited out the deadline");
}

/// Shutdown safety: a consumer parked in `poll_wait` while the producer
/// side drops its last handle to the topic must still return (empty, on
/// timeout) instead of deadlocking — the consumer's own handle keeps the
/// topic alive and the wait simply expires.
#[test]
fn poll_wait_returns_when_producer_drops_topic_at_shutdown() {
    let topic: Arc<Topic<u64>> = Topic::new("shutdown");
    let waiter = {
        let mut c = topic.consumer();
        thread::spawn(move || c.poll_wait(8, Duration::from_millis(200)).expect("no lag"))
    };
    thread::sleep(Duration::from_millis(20));
    // Producer-side shutdown: the last external handle goes away while the
    // consumer is parked.
    drop(topic);
    let batch = waiter.join().expect("waiter returned instead of deadlocking");
    assert!(batch.is_empty());
}

/// Regression: a `Block`-policy batch publish larger than the topic
/// capacity, with the only consumer already parked in `poll_wait`. The
/// batch appends its prefix without signalling until the whole batch is
/// done, so the blocked publisher must wake the parked consumer itself —
/// previously both slept on the same condvar until the block timeout
/// expired and the suffix came back refused. The consumer waking
/// mid-retry must observe the batch exactly once, in order: no duplicated
/// and no skipped prefix.
#[test]
fn blocked_batch_publish_wakes_parked_consumer_without_dup_or_skip() {
    const BATCH: u64 = 24;
    const CAPACITY: usize = 4;
    let topic: Arc<Topic<u64>> = Topic::with_config(
        "block-batch",
        TopicConfig {
            capacity: Some(CAPACITY),
            policy: OverflowPolicy::Block,
            block_timeout: Duration::from_secs(30),
        },
    );
    let waiter = {
        let mut c = topic.consumer();
        thread::spawn(move || {
            let mut seen = Vec::new();
            while seen.len() < BATCH as usize {
                let batch = c
                    .poll_wait(3, Duration::from_secs(30))
                    .expect("Block never truncates unread data");
                seen.extend(batch);
            }
            seen
        })
    };
    // Let the consumer park in `poll_wait` before the batch starts.
    thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    let (first, refused) = topic.publish_batch_all(0..BATCH);
    let elapsed = start.elapsed();
    assert_eq!(first, Some(0));
    assert!(
        refused.is_empty(),
        "woken consumer drains the topic, nothing is refused: {refused:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "publisher woke the consumer instead of waiting out the 30s block timeout (took {elapsed:?})"
    );
    let seen = waiter.join().expect("waiter");
    assert_eq!(
        seen,
        (0..BATCH).collect::<Vec<_>>(),
        "batch observed exactly once, in order, with no duplicated or skipped prefix"
    );
    let stats = topic.stats();
    assert_eq!(stats.published, BATCH);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.consumed, BATCH);
    assert!(stats.blocked > 0, "the publisher did hit the Block path");
}

/// Mixed chaos: concurrent publishers on a bounded topic, one fast and one
/// deliberately slow consumer, with consumers joining mid-stream. Nothing
/// deadlocks, all counters reconcile.
#[test]
fn mixed_publish_truncate_poll_stress() {
    const TOTAL: u64 = 20_000;
    let topic: Arc<Topic<u64>> = Topic::bounded("mixed", 128, OverflowPolicy::DropOldest);
    let done = Arc::new(AtomicBool::new(false));

    let spawn_reader = |slow: bool| {
        let mut c = topic.consumer();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut read = 0u64;
            let mut skipped = 0u64;
            loop {
                match c.poll(32) {
                    Ok(batch) => {
                        if batch.is_empty() && done.load(Ordering::Acquire) {
                            break;
                        }
                        read += batch.len() as u64;
                    }
                    Err(lagged) => skipped += lagged.skipped,
                }
                if slow {
                    thread::sleep(Duration::from_micros(50));
                }
            }
            loop {
                match c.poll(usize::MAX) {
                    Ok(batch) if batch.is_empty() => break,
                    Ok(batch) => read += batch.len() as u64,
                    Err(lagged) => skipped += lagged.skipped,
                }
            }
            (read, skipped)
        })
    };

    let fast = spawn_reader(false);
    let slow = spawn_reader(true);
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let t = Arc::clone(&topic);
            thread::spawn(move || {
                for i in 0..TOTAL / 2 {
                    t.publish(p * (TOTAL / 2) + i);
                }
            })
        })
        .collect();
    // A consumer that joins (and leaves) mid-stream must not disturb the
    // others' accounting.
    thread::sleep(Duration::from_millis(1));
    let mut late = topic.consumer();
    let _ = late.poll(8);
    drop(late);

    for p in producers {
        p.join().expect("producer");
    }
    done.store(true, Ordering::Release);
    for (name, reader) in [("fast", fast), ("slow", slow)] {
        let (read, skipped) = reader.join().expect("reader");
        assert_eq!(read + skipped, TOTAL, "{name} reader accounting");
    }
}

//! Property tests for the stream cleaner: whatever order records arrive
//! in — including adversarial permutations and corrupted copies — the
//! accepted stream is always well-formed.

use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp};
use datacron_stream::cleaning::{CleaningConfig, CleaningOutcome, StreamCleaner};
use datacron_stream::faults::Corrupt;
use proptest::prelude::*;

/// A clean straight track at constant speed: every record individually
/// plausible, every consecutive pair consistent.
fn straight_track(n: usize) -> Vec<PositionReport> {
    let mut p = GeoPoint::new(0.5, 40.0);
    let mut out = Vec::new();
    for i in 0..n {
        out.push(PositionReport {
            speed_mps: 8.0,
            heading_deg: 90.0,
            ..PositionReport::basic(EntityId::vessel(1), Timestamp::from_secs(i as i64 * 10), p)
        });
        p = p.destination(90.0, 80.0);
    }
    out
}

/// Applies a permutation given as a vector of priorities: records are
/// reordered by sorting on the priorities (a uniform shuffle driver that
/// proptest can generate without an in-test RNG).
fn permute<T: Clone>(items: &[T], priorities: &[u64]) -> Vec<T> {
    let mut keyed: Vec<(u64, usize)> = priorities
        .iter()
        .copied()
        .zip(0..items.len())
        .take(items.len())
        .collect();
    keyed.sort();
    let mut out: Vec<T> = keyed.iter().map(|&(_, i)| items[i].clone()).collect();
    // If priorities ran short, append the rest in original order.
    for item in items.iter().skip(keyed.len()) {
        out.push(item.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No permutation of a valid track can make the cleaner accept an
    /// out-of-order record: the accepted timestamps are always strictly
    /// increasing, and every accepted record is one of the originals.
    #[test]
    fn accepted_stream_is_strictly_ordered_under_any_permutation(
        priorities in proptest::collection::vec(0u64..1_000_000, 40),
    ) {
        let track = straight_track(40);
        let shuffled = permute(&track, &priorities);
        let mut cleaner = StreamCleaner::new(CleaningConfig::maritime());
        let mut accepted = Vec::new();
        for r in &shuffled {
            if cleaner.check(r) == CleaningOutcome::Accepted {
                accepted.push(*r);
            }
        }
        prop_assert!(!accepted.is_empty(), "something must survive");
        // Strictly increasing timestamps: no duplicate, no out-of-order.
        prop_assert!(accepted.windows(2).all(|w| w[0].ts < w[1].ts));
        // No teleports between consecutive accepted records.
        for w in accepted.windows(2) {
            let dt = (w[1].ts.millis() - w[0].ts.millis()) as f64 / 1000.0;
            let implied = w[0].point.haversine_distance(&w[1].point) / dt.max(1e-3);
            prop_assert!(
                implied <= CleaningConfig::maritime().max_implied_speed_mps,
                "implied speed {implied} m/s between accepted records"
            );
        }
        // Every accepted record is bit-identical to an original.
        for a in &accepted {
            prop_assert!(track.iter().any(|r| r.ts == a.ts && r.point.lon == a.point.lon));
        }
    }

    /// Teleporting records (positions implying impossible speed) are never
    /// accepted, wherever they are spliced into the stream.
    #[test]
    fn teleports_never_survive(
        at in 1usize..39,
        jump_deg in 0.5f64..3.0,
    ) {
        let mut track = straight_track(40);
        // Teleport: same timestamp cadence, position half a degree away.
        track[at].point.lon += jump_deg;
        let mut cleaner = StreamCleaner::new(CleaningConfig::maritime());
        for (i, r) in track.iter().enumerate() {
            let outcome = cleaner.check(r);
            if i == at {
                prop_assert_eq!(outcome, CleaningOutcome::Teleport);
            }
        }
    }

    /// Corrupted records (every `Corrupt` variant) are rejected as
    /// implausible no matter where they appear.
    #[test]
    fn corrupted_records_never_survive(
        at in 0usize..40,
        variant in 0u64..16,
    ) {
        let track = straight_track(40);
        let mut cleaner = StreamCleaner::new(CleaningConfig::maritime());
        for (i, r) in track.iter().enumerate() {
            if i == at {
                let bad = r.corrupted(variant);
                prop_assert_eq!(cleaner.check(&bad), CleaningOutcome::Implausible);
            }
            prop_assert_eq!(cleaner.check(r), CleaningOutcome::Accepted);
        }
    }
}

//! Property tests for link discovery: masks are a pure optimisation, and
//! the grid join equals brute force.

use datacron_geo::{BoundingBox, EntityId, GeoPoint, Polygon, Timestamp};
use datacron_linkdisc::{LinkerConfig, Relation, StaticLinker};
use proptest::prelude::*;

fn arb_regions() -> impl Strategy<Value = Vec<(u64, Polygon)>> {
    proptest::collection::vec(
        (0.5f64..9.5, 0.5f64..9.5, 5_000.0f64..40_000.0, 5usize..12),
        1..8,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lon, lat, r, n))| (i as u64, Polygon::circle(GeoPoint::new(lon, lat), r, n)))
            .collect()
    })
}

fn arb_points() -> impl Strategy<Value = Vec<GeoPoint>> {
    proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..60)
        .prop_map(|ps| ps.into_iter().map(|(lon, lat)| GeoPoint::new(lon, lat)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Masks never change the produced links, for random regions and
    /// probes, across cell sizes and raster resolutions.
    #[test]
    fn masks_are_a_pure_optimisation(
        regions in arb_regions(),
        points in arb_points(),
        cell_deg in 0.2f64..2.0,
        resolution in 4u32..32,
    ) {
        let base = LinkerConfig {
            cell_deg,
            mask_resolution: resolution,
            ..LinkerConfig::default()
        };
        let mut with = StaticLinker::new(regions.clone(), Vec::new(), LinkerConfig { use_masks: true, ..base.clone() });
        let mut without = StaticLinker::new(regions.clone(), Vec::new(), LinkerConfig { use_masks: false, ..base });
        for (i, p) in points.iter().enumerate() {
            let a = with.link_point(EntityId::vessel(i as u64), Timestamp(0), p);
            let b = without.link_point(EntityId::vessel(i as u64), Timestamp(0), p);
            prop_assert_eq!(a, b, "divergence at {}", p);
        }
    }

    /// The grid-blocked linker finds exactly the relations brute force
    /// finds.
    #[test]
    fn grid_join_equals_brute_force(
        regions in arb_regions(),
        points in arb_points(),
    ) {
        let config = LinkerConfig::default();
        let near = config.near_region_m;
        let mut linker = StaticLinker::new(regions.clone(), Vec::new(), config);
        for (i, p) in points.iter().enumerate() {
            let links = linker.link_point(EntityId::vessel(i as u64), Timestamp(0), p);
            for (rid, poly) in &regions {
                let d = poly.distance_to(p);
                let expect_within = d == 0.0;
                let expect_near = d > 0.0 && d <= near;
                let got_within = links.iter().any(|l| {
                    l.relation == Relation::Within
                        && l.target == datacron_linkdisc::links::LinkTarget::Region(*rid)
                });
                let got_near = links.iter().any(|l| {
                    l.relation == Relation::NearTo
                        && l.target == datacron_linkdisc::links::LinkTarget::Region(*rid)
                });
                prop_assert_eq!(got_within, expect_within, "within({}, region {}) d={}", p, rid, d);
                prop_assert_eq!(got_near, expect_near, "nearTo({}, region {}) d={}", p, rid, d);
            }
        }
    }

    /// Every emitted link is anchored at the probe that produced it.
    #[test]
    fn links_carry_their_anchor(
        regions in arb_regions(),
        points in arb_points(),
    ) {
        let mut linker = StaticLinker::new(regions, Vec::new(), LinkerConfig::default());
        for (i, p) in points.iter().enumerate() {
            let e = EntityId::vessel(i as u64);
            let ts = Timestamp::from_secs(i as i64);
            for link in linker.link_point(e, ts, p) {
                prop_assert_eq!(link.entity, e);
                prop_assert_eq!(link.ts, ts);
            }
        }
    }
}

/// `BoundingBox` is only used through the helper below; keep the import
/// honest for future extension.
#[allow(dead_code)]
fn _extent() -> BoundingBox {
    BoundingBox::new(0.0, 0.0, 10.0, 10.0)
}

//! Moving–moving proximity over streams with temporal book-keeping.
//!
//! "The temporal dimension is not partitioned: given a temporal distance
//! threshold, we can safely clean up data that are out of temporal scope,
//! i.e. entities that will never satisfy the temporal constraints of the
//! relations. … the link discovery component uses a book-keeping process
//! for cleaning the grid, towards identifying proximity relations among
//! entities when dealing with streamed data."
//!
//! [`StreamingProximity`] keeps recent observations in per-cell buffers,
//! evaluates each new observation against candidates in the neighbouring
//! cells within the temporal threshold, and evicts expired entries lazily.

use crate::links::{Link, LinkTarget, Relation};
use datacron_geo::{BoundingBox, EntityId, EquiGrid, GeoPoint, Timestamp};
use datacron_geo::hash::FxHashMap;

/// Proximity parameters.
#[derive(Debug, Clone)]
pub struct ProximityConfig {
    /// Spatial radius, metres.
    pub radius_m: f64,
    /// Temporal distance threshold, seconds: two observations relate only
    /// when their timestamps differ by at most this.
    pub temporal_s: f64,
    /// Grid cell size in degrees (should be ≥ the radius in degrees).
    pub cell_deg: f64,
}

impl Default for ProximityConfig {
    fn default() -> Self {
        Self {
            radius_m: 5_000.0,
            temporal_s: 300.0,
            cell_deg: 0.25,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Observation {
    entity: EntityId,
    ts: Timestamp,
    point: GeoPoint,
}

/// Streaming proximity joiner with grid book-keeping.
#[derive(Debug)]
pub struct StreamingProximity {
    config: ProximityConfig,
    grid: EquiGrid,
    cells: FxHashMap<u32, Vec<Observation>>,
    /// Comparisons performed (for pruning-effect reporting).
    comparisons: u64,
    /// Observations evicted by temporal cleanup.
    evicted: u64,
}

impl StreamingProximity {
    /// Creates a joiner over the given area of interest.
    pub fn new(extent: BoundingBox, config: ProximityConfig) -> Self {
        let grid = EquiGrid::with_cell_size(extent, config.cell_deg);
        Self {
            config,
            grid,
            cells: FxHashMap::default(),
            comparisons: 0,
            evicted: 0,
        }
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Observations evicted by the temporal book-keeping so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Observations currently buffered.
    pub fn buffered(&self) -> usize {
        self.cells.values().map(Vec::len).sum()
    }

    /// Processes one observation: emits `nearTo` links to every buffered
    /// observation of a *different* entity within the spatio-temporal
    /// thresholds, then buffers it. Expired entries in the touched cells are
    /// evicted as a side effect (the lazy book-keeping).
    pub fn observe(&mut self, entity: EntityId, ts: Timestamp, point: GeoPoint) -> Vec<Link> {
        let mut out = Vec::new();
        let Some(cell) = self.grid.cell_of(&point) else {
            return out;
        };
        let horizon = ts - (self.config.temporal_s * 1000.0) as i64;

        let mut candidate_cells = self.grid.cells_within_radius(&point, self.config.radius_m);
        if !candidate_cells.contains(&cell) {
            candidate_cells.push(cell);
        }
        for c in candidate_cells {
            let id = self.grid.flat_id(c);
            if let Some(buf) = self.cells.get_mut(&id) {
                // Temporal cleanup: drop everything out of scope.
                let before = buf.len();
                buf.retain(|o| o.ts >= horizon);
                self.evicted += (before - buf.len()) as u64;
                for o in buf.iter() {
                    if o.entity == entity {
                        continue;
                    }
                    self.comparisons += 1;
                    if (ts.delta_secs(&o.ts)).abs() <= self.config.temporal_s
                        && o.point.haversine_distance(&point) <= self.config.radius_m
                    {
                        out.push(Link {
                            entity,
                            ts,
                            relation: Relation::NearTo,
                            target: LinkTarget::Entity(o.entity),
                        });
                    }
                }
                if buf.is_empty() {
                    self.cells.remove(&id);
                }
            }
        }
        self.cells
            .entry(self.grid.flat_id(cell))
            .or_default()
            .push(Observation { entity, ts, point });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joiner() -> StreamingProximity {
        StreamingProximity::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), ProximityConfig::default())
    }

    #[test]
    fn detects_nearby_pair() {
        let mut j = joiner();
        assert!(j.observe(EntityId::vessel(1), Timestamp::from_secs(0), GeoPoint::new(5.0, 5.0)).is_empty());
        let links = j.observe(EntityId::vessel(2), Timestamp::from_secs(60), GeoPoint::new(5.02, 5.0));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].target, LinkTarget::Entity(EntityId::vessel(1)));
        assert_eq!(links[0].relation, Relation::NearTo);
    }

    #[test]
    fn far_apart_pairs_do_not_link() {
        let mut j = joiner();
        j.observe(EntityId::vessel(1), Timestamp::from_secs(0), GeoPoint::new(5.0, 5.0));
        let links = j.observe(EntityId::vessel(2), Timestamp::from_secs(10), GeoPoint::new(5.2, 5.0));
        assert!(links.is_empty(), "~22 km apart");
    }

    #[test]
    fn temporal_threshold_enforced_and_evicts() {
        let mut j = joiner();
        j.observe(EntityId::vessel(1), Timestamp::from_secs(0), GeoPoint::new(5.0, 5.0));
        // 10 minutes later, same place: out of the 5-minute scope.
        let links = j.observe(EntityId::vessel(2), Timestamp::from_secs(600), GeoPoint::new(5.0, 5.0));
        assert!(links.is_empty());
        assert_eq!(j.evicted(), 1, "expired observation evicted");
    }

    #[test]
    fn same_entity_never_links_to_itself() {
        let mut j = joiner();
        j.observe(EntityId::vessel(1), Timestamp::from_secs(0), GeoPoint::new(5.0, 5.0));
        let links = j.observe(EntityId::vessel(1), Timestamp::from_secs(10), GeoPoint::new(5.0, 5.0));
        assert!(links.is_empty());
    }

    #[test]
    fn cross_cell_neighbours_are_found() {
        // Two points straddling a cell boundary (cells are 0.25 deg).
        let mut j = joiner();
        j.observe(EntityId::vessel(1), Timestamp::from_secs(0), GeoPoint::new(4.999, 5.0));
        let links = j.observe(EntityId::vessel(2), Timestamp::from_secs(5), GeoPoint::new(5.001, 5.0));
        assert_eq!(links.len(), 1);
    }

    #[test]
    fn grid_limits_comparisons() {
        let mut j = joiner();
        // Scatter 200 observations far from each other.
        for i in 0..200u64 {
            let p = GeoPoint::new((i % 20) as f64 * 0.5, (i / 20) as f64 * 0.9 + 0.2);
            j.observe(EntityId::vessel(i), Timestamp::from_secs(i as i64), p);
        }
        // Brute force would be ~200*199/2 ≈ 19900 comparisons.
        assert!(j.comparisons() < 2_000, "grid blocking failed: {}", j.comparisons());
    }

    #[test]
    fn brute_force_equivalence() {
        // The grid + cleanup must find exactly the pairs brute force finds.
        let cfg = ProximityConfig::default();
        let mut j = StreamingProximity::new(BoundingBox::new(0.0, 0.0, 2.0, 2.0), cfg.clone());
        let mut obs: Vec<(EntityId, Timestamp, GeoPoint)> = Vec::new();
        // Deterministic pseudo-random walk cluster.
        let mut x = 0.7f64;
        let mut y = 0.9f64;
        for i in 0..120u64 {
            x = (x * 7919.0 + 0.137).fract() * 0.4 + 0.5;
            y = (y * 6271.0 + 0.211).fract() * 0.4 + 0.5;
            obs.push((EntityId::vessel(i % 13), Timestamp::from_secs(i as i64 * 20), GeoPoint::new(x, y)));
        }
        let mut found = 0u64;
        for (e, ts, p) in &obs {
            found += j.observe(*e, *ts, *p).len() as u64;
        }
        let mut brute = 0u64;
        for (i, a) in obs.iter().enumerate() {
            for b in &obs[..i] {
                if a.0 != b.0
                    && (a.1.delta_secs(&b.1)).abs() <= cfg.temporal_s
                    && a.2.haversine_distance(&b.2) <= cfg.radius_m
                {
                    brute += 1;
                }
            }
        }
        assert_eq!(found, brute);
    }
}

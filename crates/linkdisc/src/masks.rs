//! Cell masks: O(1) pruning of refinement work.
//!
//! The mask of a cell is the part of the cell **not** covered by any
//! candidate geometry. A point falling in the mask cannot satisfy any
//! relation with the cell's candidates, so all refinements are skipped.
//!
//! The exact complement-of-union is expensive to build and to test against;
//! this implementation rasterises it conservatively: each cell is divided
//! into an `n × n` sub-grid and a sub-cell is marked *mask* only when no
//! candidate geometry's (buffered) bounding box intersects it and no
//! candidate polygon touches it. Conservative means: a mask hit is always a
//! true "no relation possible"; a mask miss just falls through to the
//! refinement path — correctness never depends on the mask.

use datacron_geo::{BoundingBox, GeoPoint, Polygon};

/// A rasterised mask of one grid cell.
#[derive(Debug, Clone)]
pub struct CellMask {
    bbox: BoundingBox,
    n: u32,
    /// Row-major bitmap, `true` = in the mask (no geometry near).
    bits: Vec<bool>,
}

impl CellMask {
    /// Builds the mask of `cell_bbox` against the candidate polygons, each
    /// buffered by `buffer_m` metres (pass the `nearTo` radius; `0.0` for
    /// pure `within`).
    pub fn build(cell_bbox: BoundingBox, candidates: &[&Polygon], buffer_m: f64, n: u32) -> Self {
        let n = n.max(1);
        let mut bits = vec![true; (n * n) as usize];
        // Metre buffer to degrees at this latitude (conservative: use the
        // larger of the two axes' conversions).
        let lat = cell_bbox.center().lat;
        let coslat = lat.to_radians().cos().max(0.2);
        let buffer_deg = buffer_m / (111_320.0 * coslat.min(1.0));
        let w = cell_bbox.width() / n as f64;
        let h = cell_bbox.height() / n as f64;
        for row in 0..n {
            for col in 0..n {
                let sub = BoundingBox::new(
                    cell_bbox.min_lon + col as f64 * w,
                    cell_bbox.min_lat + row as f64 * h,
                    cell_bbox.min_lon + (col + 1) as f64 * w,
                    cell_bbox.min_lat + (row + 1) as f64 * h,
                );
                let sub_buffered = sub.expanded(buffer_deg);
                let covered = candidates.iter().any(|poly| {
                    poly.bbox().intersects(&sub_buffered) && poly.intersects_bbox(&sub_buffered)
                });
                if covered {
                    bits[(row * n + col) as usize] = false;
                }
            }
        }
        Self {
            bbox: cell_bbox,
            n,
            bits,
        }
    }

    /// A mask that prunes everything — for cells without any candidate.
    pub fn all_mask(cell_bbox: BoundingBox) -> Self {
        Self {
            bbox: cell_bbox,
            n: 1,
            bits: vec![true],
        }
    }

    /// `true` when `p` lies in the mask, i.e. provably unrelated to every
    /// candidate of this cell.
    pub fn in_mask(&self, p: &GeoPoint) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let col = (((p.lon - self.bbox.min_lon) / self.bbox.width().max(1e-12)) * self.n as f64) as u32;
        let row = (((p.lat - self.bbox.min_lat) / self.bbox.height().max(1e-12)) * self.n as f64) as u32;
        let col = col.min(self.n - 1);
        let row = row.min(self.n - 1);
        self.bits[(row * self.n + col) as usize]
    }

    /// Fraction of the cell covered by the mask (pruning power).
    pub fn coverage(&self) -> f64 {
        self.bits.iter().filter(|b| **b).count() as f64 / self.bits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> BoundingBox {
        BoundingBox::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn empty_candidates_mask_everything() {
        let m = CellMask::build(cell(), &[], 0.0, 8);
        assert_eq!(m.coverage(), 1.0);
        assert!(m.in_mask(&GeoPoint::new(0.5, 0.5)));
    }

    #[test]
    fn covered_subcells_are_not_mask() {
        let poly = Polygon::rect(BoundingBox::new(0.0, 0.0, 0.5, 0.5));
        let m = CellMask::build(cell(), &[&poly], 0.0, 8);
        assert!(!m.in_mask(&GeoPoint::new(0.25, 0.25)), "inside the region");
        assert!(m.in_mask(&GeoPoint::new(0.9, 0.9)), "far corner is mask");
        assert!(m.coverage() < 1.0 && m.coverage() > 0.5);
    }

    #[test]
    fn mask_is_conservative_near_boundaries() {
        // Every point inside any candidate must be a mask miss.
        let poly = Polygon::circle(GeoPoint::new(0.5, 0.5), 20_000.0, 16);
        let m = CellMask::build(cell(), &[&poly], 0.0, 8);
        for i in 0..50 {
            for j in 0..50 {
                let p = GeoPoint::new(0.02 * i as f64, 0.02 * j as f64);
                if poly.contains(&p) {
                    assert!(!m.in_mask(&p), "false prune at {p}");
                }
            }
        }
    }

    #[test]
    fn buffer_extends_coverage() {
        let poly = Polygon::rect(BoundingBox::new(0.4, 0.4, 0.6, 0.6));
        let tight = CellMask::build(cell(), &[&poly], 0.0, 16);
        let buffered = CellMask::build(cell(), &[&poly], 20_000.0, 16);
        assert!(buffered.coverage() < tight.coverage());
        // A point just outside the region but within the buffer must be a
        // mask miss under the buffered mask.
        let p = GeoPoint::new(0.65, 0.5); // ~5.5 km east of the region edge
        assert!(!buffered.in_mask(&p));
    }

    #[test]
    fn outside_cell_is_never_mask() {
        let m = CellMask::all_mask(cell());
        assert!(!m.in_mask(&GeoPoint::new(2.0, 2.0)));
    }
}

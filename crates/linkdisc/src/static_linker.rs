//! Linking moving entities against stationary datasets (regions, ports).
//!
//! Blocking: an equi-grid over the area of interest with per-cell candidate
//! lists. Refinement: point-in-polygon for `within`, boundary distance for
//! `nearTo` regions, point distance for `nearTo` ports. Optional cell masks
//! prune the refinement work; [`LinkStats`] counts refinements so the mask
//! effect is directly observable.

use crate::links::{Link, LinkTarget, Relation};
use crate::masks::CellMask;
use datacron_geo::{BoundingBox, EntityId, EquiGrid, GeoPoint, Polygon, Timestamp};
use datacron_geo::hash::FxHashMap;

/// Linker parameters.
#[derive(Debug, Clone)]
pub struct LinkerConfig {
    /// Grid cell size in degrees.
    pub cell_deg: f64,
    /// `nearTo` radius for regions, metres.
    pub near_region_m: f64,
    /// `nearTo` radius for ports, metres.
    pub near_port_m: f64,
    /// Use cell masks?
    pub use_masks: bool,
    /// Mask raster resolution per cell axis.
    pub mask_resolution: u32,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        Self {
            cell_deg: 0.25,
            near_region_m: 5_000.0,
            near_port_m: 5_000.0,
            use_masks: true,
            mask_resolution: 16,
        }
    }
}

/// Refinement/pruning counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Points processed.
    pub points: u64,
    /// Points pruned entirely by a mask hit.
    pub mask_hits: u64,
    /// Polygon/point refinement tests performed.
    pub refinements: u64,
    /// Links produced.
    pub links: u64,
}

/// Links points against stationary regions and ports.
#[derive(Debug)]
pub struct StaticLinker {
    config: LinkerConfig,
    grid: EquiGrid,
    regions: Vec<(u64, Polygon)>,
    ports: Vec<(u64, GeoPoint)>,
    /// Region candidate indices per flat cell id.
    region_candidates: FxHashMap<u32, Vec<u32>>,
    /// Port candidate indices per flat cell id (buffered by near radius).
    port_candidates: FxHashMap<u32, Vec<u32>>,
    /// Masks per flat cell id (buffered by the region near radius so one
    /// mask serves both `within` and `nearTo`).
    masks: FxHashMap<u32, CellMask>,
    stats: LinkStats,
}

impl StaticLinker {
    /// Builds the linker over the given stationary datasets. The grid
    /// extent is derived from the data plus a margin.
    pub fn new(
        regions: Vec<(u64, Polygon)>,
        ports: Vec<(u64, GeoPoint)>,
        config: LinkerConfig,
    ) -> Self {
        let mut extent = BoundingBox::empty();
        for (_, poly) in &regions {
            extent = extent.union(poly.bbox());
        }
        for (_, p) in &ports {
            extent.extend(p);
        }
        if extent.is_empty() {
            extent = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        }
        let grid = EquiGrid::with_cell_size(extent.expanded(2.0 * config.cell_deg), config.cell_deg);

        let mut region_candidates: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, (_, poly)) in regions.iter().enumerate() {
            // Candidate cells include the nearTo buffer.
            let lat = poly.bbox().center().lat;
            let buffer_deg = config.near_region_m / (111_320.0 * lat.to_radians().cos().max(0.2));
            for cell in grid.cells_intersecting(&poly.bbox().expanded(buffer_deg)) {
                region_candidates.entry(grid.flat_id(cell)).or_default().push(i as u32);
            }
        }
        let mut port_candidates: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, (_, p)) in ports.iter().enumerate() {
            for cell in grid.cells_within_radius(p, config.near_port_m) {
                port_candidates.entry(grid.flat_id(cell)).or_default().push(i as u32);
            }
        }

        let mut masks = FxHashMap::default();
        if config.use_masks {
            // Only cells with candidates need a real raster; others prune by
            // the candidate lists simply being empty.
            for (&cell_id, cand) in &region_candidates {
                let cell = grid
                    .from_flat_id(cell_id)
                    .expect("candidate cell ids come from the grid");
                let polys: Vec<&Polygon> = cand.iter().map(|&i| &regions[i as usize].1).collect();
                masks.insert(
                    cell_id,
                    CellMask::build(grid.cell_bbox(cell), &polys, config.near_region_m, config.mask_resolution),
                );
            }
        }

        Self {
            config,
            grid,
            regions,
            ports,
            region_candidates,
            port_candidates,
            masks,
            stats: LinkStats::default(),
        }
    }

    /// Refinement/pruning counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }

    /// Restores the counters from a checkpoint.
    pub fn restore_stats(&mut self, stats: LinkStats) {
        self.stats = stats;
    }

    /// The underlying grid (for experiment reporting).
    pub fn grid(&self) -> &EquiGrid {
        &self.grid
    }

    /// Links one observation of a moving entity, returning all `within`
    /// and `nearTo` relations it satisfies.
    pub fn link_point(&mut self, entity: EntityId, ts: Timestamp, p: &GeoPoint) -> Vec<Link> {
        self.stats.points += 1;
        let mut out = Vec::new();
        let Some(cell) = self.grid.cell_of(p) else {
            return out;
        };
        let cell_id = self.grid.flat_id(cell);

        // --- Regions: within + nearTo ---
        if let Some(cand) = self.region_candidates.get(&cell_id) {
            let masked = if self.config.use_masks {
                self.masks.get(&cell_id).is_some_and(|m| m.in_mask(p))
            } else {
                false
            };
            if masked {
                self.stats.mask_hits += 1;
            } else {
                for &i in cand {
                    let (rid, poly) = &self.regions[i as usize];
                    self.stats.refinements += 1;
                    let d = poly.distance_to(p);
                    if d == 0.0 {
                        out.push(Link {
                            entity,
                            ts,
                            relation: Relation::Within,
                            target: LinkTarget::Region(*rid),
                        });
                    } else if d <= self.config.near_region_m {
                        out.push(Link {
                            entity,
                            ts,
                            relation: Relation::NearTo,
                            target: LinkTarget::Region(*rid),
                        });
                    }
                }
            }
        }

        // --- Ports: nearTo ---
        if let Some(cand) = self.port_candidates.get(&cell_id) {
            for &i in cand {
                let (pid, pp) = &self.ports[i as usize];
                self.stats.refinements += 1;
                if pp.haversine_distance(p) <= self.config.near_port_m {
                    out.push(Link {
                        entity,
                        ts,
                        relation: Relation::NearTo,
                        target: LinkTarget::Port(*pid),
                    });
                }
            }
        }
        self.stats.links += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions() -> Vec<(u64, Polygon)> {
        vec![
            (1, Polygon::rect(BoundingBox::new(1.0, 1.0, 2.0, 2.0))),
            (2, Polygon::circle(GeoPoint::new(4.0, 4.0), 30_000.0, 24)),
        ]
    }

    fn ports() -> Vec<(u64, GeoPoint)> {
        vec![(10, GeoPoint::new(0.5, 0.5)), (11, GeoPoint::new(3.0, 3.0))]
    }

    fn linker(use_masks: bool) -> StaticLinker {
        StaticLinker::new(
            regions(),
            ports(),
            LinkerConfig {
                use_masks,
                ..LinkerConfig::default()
            },
        )
    }

    fn rels(links: &[Link]) -> Vec<(Relation, LinkTarget)> {
        links.iter().map(|l| (l.relation, l.target)).collect()
    }

    #[test]
    fn within_region_detected() {
        let mut l = linker(true);
        let links = l.link_point(EntityId::vessel(1), Timestamp(0), &GeoPoint::new(1.5, 1.5));
        assert!(rels(&links).contains(&(Relation::Within, LinkTarget::Region(1))));
    }

    #[test]
    fn near_region_detected() {
        let mut l = linker(true);
        // ~3 km east of region 1's edge at lat 1.5.
        let p = GeoPoint::new(2.027, 1.5);
        let links = l.link_point(EntityId::vessel(1), Timestamp(0), &p);
        assert!(
            rels(&links).contains(&(Relation::NearTo, LinkTarget::Region(1))),
            "got {links:?}"
        );
    }

    #[test]
    fn near_port_detected() {
        let mut l = linker(true);
        let p = GeoPoint::new(0.52, 0.5); // ~2.2 km from port 10
        let links = l.link_point(EntityId::vessel(1), Timestamp(0), &p);
        assert!(rels(&links).contains(&(Relation::NearTo, LinkTarget::Port(10))));
    }

    #[test]
    fn far_point_produces_nothing() {
        let mut l = linker(true);
        let links = l.link_point(EntityId::vessel(1), Timestamp(0), &GeoPoint::new(0.0, 4.5));
        assert!(links.is_empty());
    }

    #[test]
    fn masks_do_not_change_results() {
        let mut with = linker(true);
        let mut without = linker(false);
        // Probe a lattice over the whole extent.
        for i in 0..40 {
            for j in 0..40 {
                let p = GeoPoint::new(0.1 * i as f64, 0.1 * j as f64 + 0.3);
                let a = with.link_point(EntityId::vessel(1), Timestamp(0), &p);
                let b = without.link_point(EntityId::vessel(1), Timestamp(0), &p);
                assert_eq!(a, b, "mask changed result at {p}");
            }
        }
    }

    #[test]
    fn masks_reduce_refinements() {
        let mut with = linker(true);
        let mut without = linker(false);
        for i in 0..60 {
            for j in 0..60 {
                let p = GeoPoint::new(0.08 * i as f64, 0.08 * j as f64);
                with.link_point(EntityId::vessel(1), Timestamp(0), &p);
                without.link_point(EntityId::vessel(1), Timestamp(0), &p);
            }
        }
        let (sw, swo) = (with.stats(), without.stats());
        assert!(sw.mask_hits > 0, "mask should prune some points");
        assert!(
            sw.refinements < swo.refinements,
            "with masks {} >= without {}",
            sw.refinements,
            swo.refinements
        );
        assert_eq!(sw.links, swo.links, "same links either way");
    }

    #[test]
    fn empty_datasets_are_harmless() {
        let mut l = StaticLinker::new(Vec::new(), Vec::new(), LinkerConfig::default());
        assert!(l.link_point(EntityId::vessel(1), Timestamp(0), &GeoPoint::new(0.5, 0.5)).is_empty());
    }
}

#![warn(missing_docs)]

//! # datacron-linkdisc
//!
//! Spatio-temporal link discovery (§4.2.4 of the paper).
//!
//! The component "mostly detects spatio-temporal and proximity relations
//! such as `within` and `nearby` relations between stationary and/or moving
//! entities", on streaming as well as archival data. It organises entities
//! with an equi-grid **blocking** method and evaluates candidate pairs with
//! a **refinement** function — and it prunes candidates with **cell masks**:
//!
//! > "the proposed method computes the complement of the union of those
//! > spatial areas that correspond to entities in a cell and intersect with
//! > the cell's area: This cell area is called the mask of cell. … for each
//! > new entity we identify the enclosing cell, and then we evaluate that
//! > entity against the spatial mask of the cell. If it is found to be in
//! > the mask, we do not need to further evaluate any candidate pair with
//! > entities in that cell."
//!
//! [`masks`] realises the mask as a conservative sub-grid rasterisation (a
//! bitmap per cell: a sub-cell is *mask* iff no candidate geometry touches
//! it), so the membership test is O(1) instead of one polygon test per
//! candidate. The paper reports the mask lifting throughput from 23.09 to
//! 123.51 entities/second on the within+nearTo workload; the `exp_linkdiscovery`
//! binary regenerates that comparison, and [`StaticLinker`] counts
//! refinements so tests can verify the pruning deterministically.
//!
//! [`streaming`] adds the moving–moving proximity case with the temporal
//! book-keeping the paper describes (entities out of temporal scope are
//! evicted from the grid).

pub mod masks;
pub mod links;
pub mod static_linker;
pub mod streaming;

pub use links::{Link, Relation};
pub use masks::CellMask;
pub use static_linker::{LinkStats, LinkerConfig, StaticLinker};
pub use streaming::{ProximityConfig, StreamingProximity};

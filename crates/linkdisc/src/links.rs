//! Discovered links and their lifting to RDF.

use datacron_geo::{EntityId, Timestamp};
use datacron_rdf::term::Triple;
use datacron_rdf::vocab;

/// The spatio-temporal relations link discovery materialises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `dul:within` — the moving entity's position lies inside the region.
    Within,
    /// `geosparql:nearTo` — within the proximity radius of the target.
    NearTo,
}

/// What a link's object refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTarget {
    /// A stationary region.
    Region(u64),
    /// A port.
    Port(u64),
    /// Another moving entity (moving–moving proximity).
    Entity(EntityId),
}

/// One discovered link, anchored at the observation that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// The moving entity (subject).
    pub entity: EntityId,
    /// Observation time.
    pub ts: Timestamp,
    /// The relation.
    pub relation: Relation,
    /// The target (object).
    pub target: LinkTarget,
}

impl Link {
    /// Lifts the link to an RDF triple between the subject's semantic node
    /// and the target, using the datAcron vocabulary.
    pub fn to_triple(&self) -> Triple {
        let s = vocab::node_iri(self.entity, self.ts.millis());
        let p = match self.relation {
            Relation::Within => vocab::within(),
            Relation::NearTo => vocab::near_to(),
        };
        let o = match self.target {
            LinkTarget::Region(id) => vocab::region_iri(id),
            LinkTarget::Port(id) => vocab::port_iri(id),
            LinkTarget::Entity(e) => vocab::node_iri(e, self.ts.millis()),
        };
        Triple::new(s, p, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifting_uses_vocabulary() {
        let link = Link {
            entity: EntityId::vessel(3),
            ts: Timestamp::from_secs(10),
            relation: Relation::Within,
            target: LinkTarget::Region(8),
        };
        let t = link.to_triple();
        assert_eq!(t.p, vocab::within());
        assert!(t.s.as_iri().unwrap().contains("node/vessel/3/10000"));
        assert!(t.o.as_iri().unwrap().contains("region/8"));
    }

    #[test]
    fn near_to_port_lifting() {
        let link = Link {
            entity: EntityId::vessel(3),
            ts: Timestamp::from_secs(10),
            relation: Relation::NearTo,
            target: LinkTarget::Port(5),
        };
        let t = link.to_triple();
        assert_eq!(t.p, vocab::near_to());
        assert!(t.o.as_iri().unwrap().contains("port/5"));
    }
}

//! Synthetic contextual sources: protected areas, ports, and entity
//! registries.
//!
//! Substitutes for the static sources of Table 1 — the ESRI shapefiles of
//! geographical features (the paper's link-discovery experiment uses 8,599
//! Natura-2000/fishing regions), the 5,754-port register, and the
//! 166,683-ship vessel register. Scaled-down equivalents with the same roles.

use crate::rng::SeededRng;
use datacron_geo::{BoundingBox, GeoPoint, Polygon};

/// A named stationary region (protected area, fishing zone, airspace sector).
#[derive(Debug, Clone)]
pub struct Region {
    /// Stable identifier, unique within a generated set.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// The region geometry.
    pub polygon: Polygon,
    /// Region class (e.g. `"natura"`, `"fishing"`, `"sector"`).
    pub class: &'static str,
}

/// Generates irregular convex-ish polygon regions scattered over an extent.
#[derive(Debug, Clone)]
pub struct AreaGenerator {
    extent: BoundingBox,
    /// Radius range of generated regions, metres.
    pub radius_m: (f64, f64),
    /// Vertex count range.
    pub vertices: (usize, usize),
}

impl AreaGenerator {
    /// Creates a generator over `extent` with default region sizes
    /// (5–60 km radius) and realistically complex boundaries (48–144
    /// vertices — real Natura-2000 coastal geometries run to hundreds of
    /// vertices, and that refinement cost is what cell masks save).
    pub fn new(extent: BoundingBox) -> Self {
        Self {
            extent,
            radius_m: (5_000.0, 60_000.0),
            vertices: (48, 144),
        }
    }

    /// Generates `n` regions of the given `class`.
    pub fn generate(&self, n: usize, class: &'static str, seed: u64) -> Vec<Region> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let center = GeoPoint::new(
                    rng.uniform(self.extent.min_lon, self.extent.max_lon),
                    rng.uniform(self.extent.min_lat, self.extent.max_lat),
                );
                let radius = rng.uniform(self.radius_m.0, self.radius_m.1);
                let nv = rng.index(self.vertices.1 - self.vertices.0) + self.vertices.0;
                // Irregular star-convex ring: jitter each vertex radius.
                let vertices: Vec<GeoPoint> = (0..nv)
                    .map(|k| {
                        let bearing = 360.0 * k as f64 / nv as f64;
                        let r = radius * rng.uniform(0.6, 1.0);
                        center.destination(bearing, r)
                    })
                    .collect();
                let polygon = Polygon::new(vertices).expect("generated ring has >= 3 finite vertices");
                Region {
                    id: i as u64,
                    name: format!("{class}-{i}"),
                    polygon,
                    class,
                }
            })
            .collect()
    }
}

/// A port (or airport when used by the aviation generator as an anchor).
#[derive(Debug, Clone)]
pub struct Port {
    /// Stable identifier.
    pub id: u64,
    /// Name, e.g. `"port-17"`.
    pub name: String,
    /// Port location.
    pub point: GeoPoint,
    /// Approach-zone radius in metres.
    pub zone_radius_m: f64,
}

/// Generates ports scattered over an extent.
#[derive(Debug, Clone)]
pub struct PortGenerator {
    extent: BoundingBox,
}

impl PortGenerator {
    /// Creates a generator over `extent`.
    pub fn new(extent: BoundingBox) -> Self {
        Self { extent }
    }

    /// Generates `n` ports.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Port> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| Port {
                id: i as u64,
                name: format!("port-{i}"),
                point: GeoPoint::new(
                    rng.uniform(self.extent.min_lon, self.extent.max_lon),
                    rng.uniform(self.extent.min_lat, self.extent.max_lat),
                ),
                zone_radius_m: rng.uniform(1_000.0, 5_000.0),
            })
            .collect()
    }
}

/// Static registry entry for a vessel (vessel register of Table 1).
#[derive(Debug, Clone)]
pub struct VesselRecord {
    /// MMSI-like identifier.
    pub id: u64,
    /// Vessel class name.
    pub class: &'static str,
    /// Length overall, metres.
    pub length_m: f64,
    /// Service speed, m/s.
    pub service_speed_mps: f64,
    /// Flag-state code, `0..=30`.
    pub flag: u8,
}

/// Static registry entry for an aircraft.
#[derive(Debug, Clone)]
pub struct AircraftRecord {
    /// ICAO-24-like identifier.
    pub id: u64,
    /// Aircraft type designator, e.g. `"A320"`.
    pub type_code: &'static str,
    /// Wake/size category: 0 light, 1 medium, 2 heavy.
    pub size_class: u8,
    /// Typical cruise speed, m/s.
    pub cruise_speed_mps: f64,
    /// Typical cruise altitude, metres.
    pub cruise_altitude_m: f64,
}

/// Vessel classes with their typical kinematics (class, length, speed m/s).
const VESSEL_CLASSES: &[(&str, f64, f64)] = &[
    ("cargo", 180.0, 7.5),
    ("tanker", 240.0, 6.5),
    ("ferry", 120.0, 10.0),
    ("fishing", 25.0, 4.0),
    ("passenger", 90.0, 9.0),
];

/// Aircraft types (designator, size class, cruise speed m/s, cruise alt m).
const AIRCRAFT_TYPES: &[(&str, u8, f64, f64)] = &[
    ("A320", 1, 230.0, 11_000.0),
    ("B738", 1, 235.0, 11_300.0),
    ("A332", 2, 245.0, 11_900.0),
    ("B77W", 2, 250.0, 12_000.0),
    ("AT76", 0, 140.0, 7_000.0),
];

/// Generates entity registries.
#[derive(Debug, Clone, Default)]
pub struct RegistryGenerator;

impl RegistryGenerator {
    /// Generates `n` vessel records.
    pub fn vessels(&self, n: usize, seed: u64) -> Vec<VesselRecord> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let &(class, len, speed) = rng.pick(VESSEL_CLASSES);
                VesselRecord {
                    id: i as u64,
                    class,
                    length_m: len * rng.uniform(0.8, 1.2),
                    service_speed_mps: speed * rng.uniform(0.85, 1.15),
                    flag: rng.index(31) as u8,
                }
            })
            .collect()
    }

    /// Generates `n` aircraft records.
    pub fn aircraft(&self, n: usize, seed: u64) -> Vec<AircraftRecord> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let &(type_code, size_class, speed, alt) = rng.pick(AIRCRAFT_TYPES);
                AircraftRecord {
                    id: i as u64,
                    type_code,
                    size_class,
                    cruise_speed_mps: speed * rng.uniform(0.95, 1.05),
                    cruise_altitude_m: alt * rng.uniform(0.95, 1.05),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BoundingBox {
        BoundingBox::new(-10.0, 30.0, 30.0, 60.0)
    }

    #[test]
    fn regions_are_deterministic_and_in_extent() {
        let g = AreaGenerator::new(extent());
        let a = g.generate(20, "natura", 1);
        let b = g.generate(20, "natura", 1);
        assert_eq!(a.len(), 20);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.polygon, rb.polygon);
            // Centroid near the extent (regions may bleed over the edge).
            assert!(extent().expanded(1.0).contains(&ra.polygon.centroid()));
        }
    }

    #[test]
    fn region_ids_and_names_are_stable() {
        let g = AreaGenerator::new(extent());
        let regions = g.generate(3, "fishing", 9);
        assert_eq!(regions[2].id, 2);
        assert_eq!(regions[2].name, "fishing-2");
        assert_eq!(regions[0].class, "fishing");
    }

    #[test]
    fn regions_contain_their_centroid_mostly() {
        let g = AreaGenerator::new(extent());
        let regions = g.generate(50, "natura", 5);
        let hits = regions
            .iter()
            .filter(|r| r.polygon.contains(&r.polygon.centroid()))
            .count();
        assert!(hits >= 45, "star-convex rings should contain centroids: {hits}/50");
    }

    #[test]
    fn ports_deterministic_and_in_extent() {
        let g = PortGenerator::new(extent());
        let a = g.generate(30, 2);
        let b = g.generate(30, 2);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.point, pb.point);
            assert!(extent().contains(&pa.point));
            assert!(pa.zone_radius_m >= 1_000.0 && pa.zone_radius_m <= 5_000.0);
        }
    }

    #[test]
    fn vessel_registry_covers_classes() {
        let recs = RegistryGenerator.vessels(500, 3);
        assert_eq!(recs.len(), 500);
        for class in ["cargo", "tanker", "ferry", "fishing", "passenger"] {
            assert!(recs.iter().any(|r| r.class == class), "missing {class}");
        }
        assert!(recs.iter().all(|r| r.length_m > 0.0 && r.service_speed_mps > 0.0));
    }

    #[test]
    fn aircraft_registry_covers_types() {
        let recs = RegistryGenerator.aircraft(200, 4);
        for t in ["A320", "B738", "A332", "B77W", "AT76"] {
            assert!(recs.iter().any(|r| r.type_code == t), "missing {t}");
        }
        assert!(recs.iter().all(|r| r.size_class <= 2));
    }
}

//! Deterministic randomness for the generators.
//!
//! Every generator takes a seed and produces identical output across runs,
//! so that experiment tables are reproducible and test assertions can be
//! exact. The core generator is xoshiro256++ seeded through splitmix64 —
//! implemented locally so the workspace builds with no crates.io
//! dependencies — and Gaussian sampling is Box–Muller on top of it.

/// A seeded random source with the distribution helpers the generators need.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    cached_gauss: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
            cached_gauss: None,
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Derives an independent child generator; used to decorrelate
    /// sub-streams (e.g. one per vessel) while keeping global determinism.
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "int range must be non-empty");
        let width = (hi as i128 - lo as i128) as u128;
        let offset = (self.next_u64() as u128) % width;
        (lo as i128 + offset as i128) as i64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via Box–Muller (pairs cached).
    pub fn gaussian_std(&mut self) -> f64 {
        if let Some(z) = self.cached_gauss.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian_std()
    }

    /// Picks an element uniformly.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Samples an index from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
        let mut c = SeededRng::new(43);
        assert_ne!(a.unit(), c.unit());
    }

    #[test]
    fn fork_decorrelates() {
        let mut root = SeededRng::new(7);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let s1: f64 = (0..10).map(|_| f1.unit()).sum();
        let s2: f64 = (0..10).map(|_| f2.unit()).sum();
        assert_ne!(s1, s2);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SeededRng::new(1);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SeededRng::new(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SeededRng::new(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0), "clamped above 1");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_empty_panics() {
        SeededRng::new(0).index(0);
    }
}

//! Declarative mixed-fleet scenarios for the `datacron-cli` runner.
//!
//! A scenario describes a reproducible, deterministic surveillance
//! workload at fleet scale: a mixed maritime + aviation population moving
//! through a shared weather field, emitted in **waves** (contiguous
//! entity cohorts that take turns being active) so that the working set
//! at any instant is a fraction of the fleet — the access pattern the
//! cold-state spill tier of `datacron-core` is built for. On top of the
//! wave structure a scenario can schedule:
//!
//! * a **rush-hour burst** — a window of the timeline where every active
//!   entity reports several times more often;
//! * a **regime shift** — a point after which every entity jumps to a new
//!   heading/speed regime (the "everything changed at once" stressor for
//!   synopses and CEP state);
//! * a **mass communication gap** — a window where a fraction of the
//!   fleet goes silent, producing the long-gap records the cleaning and
//!   gap-event machinery must absorb.
//!
//! Scenarios are authored as plain-text `.scenario` files (`key = value`
//! lines, `#` comments) parsed by [`ScenarioSpec::parse`] with typed,
//! line-addressed errors, and executed by [`ScenarioGenerator`], which
//! streams [`PositionReport`]s in deterministic order for a given seed.

use crate::rng::SeededRng;
use crate::weather::WeatherField;
use datacron_geo::{BoundingBox, EntityId, GeoPoint, MovingKind, PositionReport, Timestamp};
use std::fmt;

/// A rush-hour window: between `start` and `end` (fractions of the
/// timeline) every active entity reports `multiplier`× more often, at a
/// proportionally shorter reporting interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Window start, as a fraction of the timeline in `[0, 1]`.
    pub start: f64,
    /// Window end, as a fraction of the timeline in `(start, 1]`.
    pub end: f64,
    /// Report-rate multiplier inside the window (`>= 2`).
    pub multiplier: u32,
}

/// A mass communication gap: between `start` and `end` (fractions of the
/// timeline) a `silent` fraction of the fleet stops reporting entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSpec {
    /// Window start, as a fraction of the timeline in `[0, 1]`.
    pub start: f64,
    /// Window end, as a fraction of the timeline in `(start, 1]`.
    pub end: f64,
    /// Fraction of entities that go silent, in `(0, 1]`.
    pub silent: f64,
}

/// A parsed, validated scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reported in bench output).
    pub name: String,
    /// Master seed; every generated quantity derives from it.
    pub seed: u64,
    /// Area of interest. Tracks bounce off its edges.
    pub extent: BoundingBox,
    /// Number of vessels in the fleet.
    pub vessels: u64,
    /// Number of aircraft in the fleet.
    pub aircraft: u64,
    /// Number of wave cohorts the fleet is partitioned into. The resident
    /// working set of the run is roughly `ceil(fleet / waves)` entities.
    pub waves: usize,
    /// How many times each wave cohort becomes active over the run. With
    /// `rounds >= 2` every entity is cold-started at least once after
    /// being idle — the rehydration path.
    pub rounds: usize,
    /// Reports each active entity emits per wave visit (before burst
    /// multiplication).
    pub reports_per_visit: usize,
    /// Reporting interval within a visit, seconds.
    pub step_seconds: i64,
    /// Optional rush-hour burst window.
    pub burst: Option<BurstSpec>,
    /// Optional regime shift, as a fraction of the timeline: past this
    /// point every entity jumps to a new heading/speed regime once.
    pub regime_shift: Option<f64>,
    /// Optional mass communication gap window.
    pub gap: Option<GapSpec>,
    /// Resident-entity budget the runner should apply
    /// (`DatacronConfig::max_resident_entities`). `None` = unbounded.
    pub budget: Option<usize>,
}

/// A typed, line-addressed `.scenario` parse/validation error.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A line that is not blank, a comment, or `key = value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        text: String,
    },
    /// A `key = value` line whose key is not part of the format.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognised key.
        key: String,
    },
    /// A value that does not parse as the key's type.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key being assigned.
        key: String,
        /// The offending value text.
        value: String,
        /// What the key expects, e.g. `"u64"` or `"min_lon min_lat max_lon max_lat"`.
        expected: &'static str,
    },
    /// A key the format requires was never assigned.
    MissingKey {
        /// The missing key.
        key: &'static str,
    },
    /// The file parsed but describes an impossible scenario.
    Invalid {
        /// Human-readable explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed { line, text } => {
                write!(f, "line {line}: not `key = value`: {text:?}")
            }
            Self::UnknownKey { line, key } => write!(f, "line {line}: unknown key {key:?}"),
            Self::BadValue { line, key, value, expected } => {
                write!(f, "line {line}: key {key:?}: expected {expected}, got {value:?}")
            }
            Self::MissingKey { key } => write!(f, "missing required key {key:?}"),
            Self::Invalid { reason } => write!(f, "invalid scenario: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioSpec {
    /// Parses and validates `.scenario` text.
    ///
    /// Format: one `key = value` per line; blank lines and `#` comments
    /// ignored. Required keys: `name`, `extent`, and at least one of
    /// `vessels` / `aircraft` non-zero. Everything else has a default.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut name: Option<String> = None;
        let mut extent: Option<BoundingBox> = None;
        let mut spec = Self {
            name: String::new(),
            seed: 42,
            extent: BoundingBox::new(0.0, 0.0, 1.0, 1.0),
            vessels: 0,
            aircraft: 0,
            waves: 4,
            rounds: 2,
            reports_per_visit: 12,
            step_seconds: 10,
            burst: None,
            regime_shift: None,
            gap: None,
            budget: None,
        };

        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(ScenarioError::Malformed { line, text: trimmed.to_string() });
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |expected: &'static str| ScenarioError::BadValue {
                line,
                key: key.to_string(),
                value: value.to_string(),
                expected,
            };
            match key {
                "name" => name = Some(value.to_string()),
                "seed" => spec.seed = value.parse().map_err(|_| bad("u64"))?,
                "extent" => {
                    let nums = parse_floats(value, 4).ok_or_else(|| {
                        bad("four floats: min_lon min_lat max_lon max_lat")
                    })?;
                    extent = Some(BoundingBox::new(nums[0], nums[1], nums[2], nums[3]));
                }
                "vessels" => spec.vessels = value.parse().map_err(|_| bad("u64"))?,
                "aircraft" => spec.aircraft = value.parse().map_err(|_| bad("u64"))?,
                "waves" => spec.waves = value.parse().map_err(|_| bad("usize >= 1"))?,
                "rounds" => spec.rounds = value.parse().map_err(|_| bad("usize >= 1"))?,
                "reports_per_visit" => {
                    spec.reports_per_visit = value.parse().map_err(|_| bad("usize >= 1"))?
                }
                "step_seconds" => spec.step_seconds = value.parse().map_err(|_| bad("i64 >= 1"))?,
                "burst" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let expected = "start_frac end_frac multiplier";
                    if parts.len() != 3 {
                        return Err(bad(expected));
                    }
                    spec.burst = Some(BurstSpec {
                        start: parts[0].parse().map_err(|_| bad(expected))?,
                        end: parts[1].parse().map_err(|_| bad(expected))?,
                        multiplier: parts[2].parse().map_err(|_| bad(expected))?,
                    });
                }
                "regime_shift" => {
                    spec.regime_shift = Some(value.parse().map_err(|_| bad("fraction in [0, 1]"))?)
                }
                "gap" => {
                    let nums = parse_floats(value, 3)
                        .ok_or_else(|| bad("start_frac end_frac silent_frac"))?;
                    spec.gap = Some(GapSpec { start: nums[0], end: nums[1], silent: nums[2] });
                }
                "budget" => {
                    let n: usize = value.parse().map_err(|_| bad("usize (0 = unbounded)"))?;
                    spec.budget = if n == 0 { None } else { Some(n) };
                }
                _ => return Err(ScenarioError::UnknownKey { line, key: key.to_string() }),
            }
        }

        spec.name = name.ok_or(ScenarioError::MissingKey { key: "name" })?;
        spec.extent = extent.ok_or(ScenarioError::MissingKey { key: "extent" })?;
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |reason: String| Err(ScenarioError::Invalid { reason });
        if self.vessels + self.aircraft == 0 {
            return invalid("fleet is empty: set vessels and/or aircraft".into());
        }
        if self.waves == 0 || self.rounds == 0 || self.reports_per_visit == 0 {
            return invalid("waves, rounds and reports_per_visit must all be >= 1".into());
        }
        if self.step_seconds < 1 {
            return invalid(format!("step_seconds must be >= 1, got {}", self.step_seconds));
        }
        if self.waves as u64 > self.vessels + self.aircraft {
            return invalid(format!(
                "{} waves over a fleet of {} would leave empty waves",
                self.waves,
                self.vessels + self.aircraft
            ));
        }
        if let Some(b) = &self.burst {
            if !(0.0..=1.0).contains(&b.start) || !(0.0..=1.0).contains(&b.end) || b.start >= b.end
            {
                return invalid(format!("burst window [{}, {}] is not ordered in [0, 1]", b.start, b.end));
            }
            if b.multiplier < 2 {
                return invalid(format!("burst multiplier {} is not a burst", b.multiplier));
            }
        }
        if let Some(s) = self.regime_shift {
            if !(0.0..=1.0).contains(&s) {
                return invalid(format!("regime_shift {s} outside [0, 1]"));
            }
        }
        if let Some(g) = &self.gap {
            if !(0.0..=1.0).contains(&g.start) || !(0.0..=1.0).contains(&g.end) || g.start >= g.end
            {
                return invalid(format!("gap window [{}, {}] is not ordered in [0, 1]", g.start, g.end));
            }
            if !(0.0..=1.0).contains(&g.silent) || g.silent == 0.0 {
                return invalid(format!("gap silent fraction {} outside (0, 1]", g.silent));
            }
        }
        Ok(())
    }

    /// Total fleet size.
    pub fn entities(&self) -> u64 {
        self.vessels + self.aircraft
    }

    /// Upper bound on emitted reports (gaps only remove reports).
    pub fn max_reports(&self) -> u64 {
        let visits = (self.rounds * self.waves) as u64;
        let per_visit = self.reports_per_visit as u64;
        let base = self.entities().div_ceil(self.waves as u64) * per_visit;
        let burst_extra = match &self.burst {
            Some(b) => {
                let burst_visits =
                    ((b.end - b.start) * visits as f64).ceil() as u64 + 1;
                base * (b.multiplier as u64 - 1) * burst_visits.min(visits)
            }
            None => 0,
        };
        base * visits + burst_extra
    }
}

fn parse_floats(value: &str, n: usize) -> Option<Vec<f64>> {
    let nums: Vec<f64> = value
        .split_whitespace()
        .map(|t| t.parse().ok())
        .collect::<Option<Vec<f64>>>()?;
    (nums.len() == n).then_some(nums)
}

/// Per-entity kinematic state, evolved deterministically per emission.
struct Track {
    entity: EntityId,
    pos: GeoPoint,
    heading: f64,
    speed: f64,
    cruise_speed: f64,
    altitude_m: f64,
    /// Per-entity phase offset decorrelating the heading drift.
    phase: f64,
    /// Uniform hash in `[0, 1)` deciding gap membership.
    gap_draw: f64,
    /// Regime-shift applied already?
    shifted: bool,
}

/// Executes a [`ScenarioSpec`]: evolves every track and streams the
/// reports in deterministic wave order.
pub struct ScenarioGenerator {
    spec: ScenarioSpec,
    tracks: Vec<Track>,
    weather: WeatherField,
}

impl ScenarioGenerator {
    /// Builds the fleet (positions, regimes, wave membership) from the
    /// spec's seed. Vessels and aircraft are interleaved proportionally,
    /// so every wave cohort is mixed-domain.
    pub fn new(spec: ScenarioSpec) -> Self {
        let mut rng = SeededRng::new(spec.seed);
        let weather = WeatherField::new(spec.extent, spec.seed ^ 0x5EA5_0A1E, 3, 12.0);
        let total = spec.entities();
        let mut tracks = Vec::with_capacity(total as usize);
        let (mut vessel_id, mut aircraft_id, mut acc) = (0u64, 0u64, 0u64);
        let e = &spec.extent;
        for _ in 0..total {
            // Bresenham-style proportional interleave: exactly
            // `spec.vessels` vessels, mixed through the index space.
            acc += spec.vessels;
            let is_vessel = acc >= total;
            let entity = if is_vessel {
                acc -= total;
                vessel_id += 1;
                EntityId::vessel(vessel_id - 1)
            } else {
                aircraft_id += 1;
                EntityId::aircraft(aircraft_id - 1)
            };
            let cruise_speed =
                if is_vessel { rng.uniform(3.0, 11.0) } else { rng.uniform(150.0, 250.0) };
            tracks.push(Track {
                entity,
                pos: GeoPoint::new(
                    rng.uniform(e.min_lon, e.max_lon),
                    rng.uniform(e.min_lat, e.max_lat),
                ),
                heading: rng.uniform(0.0, 360.0),
                speed: cruise_speed,
                cruise_speed,
                altitude_m: if is_vessel { 0.0 } else { rng.uniform(4_000.0, 10_000.0) },
                phase: rng.uniform(0.0, std::f64::consts::TAU),
                gap_draw: rng.unit(),
                shifted: false,
            });
        }
        Self { spec, tracks, weather }
    }

    /// The spec this generator executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Streams the whole scenario through `emit`, in deterministic order:
    /// rounds → waves → time steps → entities of the wave. Each entity's
    /// reports are strictly time-ordered; entities of the active wave
    /// interleave (the resident working set is one wave cohort).
    pub fn run(&mut self, mut emit: impl FnMut(PositionReport)) {
        let spec = self.spec.clone();
        let total_visits = (spec.rounds * spec.waves) as f64;
        let cohort = self.tracks.len().div_ceil(spec.waves);
        let mut clock_ms: i64 = 0;
        for round in 0..spec.rounds {
            for wave in 0..spec.waves {
                let frac = (round * spec.waves + wave) as f64 / total_visits;
                let in_burst = spec.burst.as_ref().is_some_and(|b| frac >= b.start && frac < b.end);
                let in_gap = spec.gap.as_ref().is_some_and(|g| frac >= g.start && frac < g.end);
                let silent = spec.gap.as_ref().map_or(0.0, |g| g.silent);
                let shift_now = spec.regime_shift.is_some_and(|s| frac >= s);
                let mult = if in_burst {
                    spec.burst.as_ref().map_or(1, |b| b.multiplier as i64)
                } else {
                    1
                };
                let step_ms = (spec.step_seconds * 1000 / mult).max(1);
                let steps = spec.reports_per_visit as i64 * mult;
                let lo = wave * cohort;
                let hi = ((wave + 1) * cohort).min(self.tracks.len());
                for _ in 0..steps {
                    clock_ms += step_ms;
                    let ts = Timestamp::from_millis(clock_ms);
                    let dt = step_ms as f64 / 1000.0;
                    for track in &mut self.tracks[lo..hi] {
                        if shift_now && !track.shifted {
                            // The one-time regime jump: new bearing, new
                            // cruise regime, derived from the entity alone
                            // so emission order cannot perturb it.
                            track.heading = (track.heading + 120.0 + 50.0 * track.phase.sin())
                                .rem_euclid(360.0);
                            track.cruise_speed *= 1.5;
                            track.shifted = true;
                        }
                        step_track(track, &self.weather, &spec.extent, ts, dt);
                        if in_gap && track.gap_draw < silent {
                            continue;
                        }
                        let is_vessel = track.entity.kind == MovingKind::Vessel;
                        emit(PositionReport {
                            entity: track.entity,
                            ts,
                            point: track.pos,
                            altitude_m: track.altitude_m,
                            speed_mps: track.speed,
                            heading_deg: track.heading,
                            vertical_rate_mps: if is_vessel {
                                0.0
                            } else {
                                8.0 * (ts.secs_f64() * 0.01 + track.phase).sin()
                            },
                        });
                    }
                }
            }
        }
    }

    /// Materialises the whole scenario (small scenarios / tests).
    pub fn collect_reports(&mut self) -> Vec<PositionReport> {
        let mut out = Vec::new();
        self.run(|r| out.push(r));
        out
    }
}

/// One kinematic step: smooth heading drift, weather-coupled speed, edge
/// bounce. Pure in `(track, ts)` — no RNG — so regeneration with the same
/// seed is byte-identical.
fn step_track(track: &mut Track, weather: &WeatherField, extent: &BoundingBox, ts: Timestamp, dt: f64) {
    let t = ts.secs_f64();
    track.heading = (track.heading + 2.5 * (t * 0.05 + track.phase).sin()).rem_euclid(360.0);
    let is_vessel = track.entity.kind == MovingKind::Vessel;
    if is_vessel {
        // Heavy sea state slows vessels down.
        let severity = weather.severity_at(&track.pos, ts);
        track.speed = (track.cruise_speed * (1.0 - 0.35 * severity)).max(0.5);
    } else {
        // Head/tail wind component shifts ground speed.
        let (wu, wv) = weather.wind_at(&track.pos, ts);
        let rad = track.heading.to_radians();
        let along = wu * rad.sin() + wv * rad.cos();
        track.speed = (track.cruise_speed + 0.8 * along).max(60.0);
        track.altitude_m =
            (track.altitude_m + 8.0 * (t * 0.01 + track.phase).sin() * dt).clamp(1_500.0, 12_000.0);
    }
    let next = track.pos.destination(track.heading, track.speed * dt);
    if extent.contains(&next) {
        track.pos = next;
    } else {
        // Bounce: reverse and take the step inward; if even that exits
        // (degenerate extents), stay put rather than drift off-grid.
        track.heading = (track.heading + 180.0).rem_euclid(360.0);
        let back = track.pos.destination(track.heading, track.speed * dt);
        if extent.contains(&back) {
            track.pos = back;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::MovingKind;

    const SMOKE: &str = "\
# comment
name = unit
seed = 7
extent = -6 36 6 44
vessels = 30
aircraft = 18
waves = 4
rounds = 2
reports_per_visit = 5
step_seconds = 10
burst = 0.4 0.6 3
regime_shift = 0.5
gap = 0.7 0.9 0.5
budget = 16
";

    #[test]
    fn parses_the_full_format() {
        let spec = ScenarioSpec::parse(SMOKE).expect("parses");
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.seed, 7);
        assert_eq!((spec.vessels, spec.aircraft), (30, 18));
        assert_eq!(spec.burst, Some(BurstSpec { start: 0.4, end: 0.6, multiplier: 3 }));
        assert_eq!(spec.regime_shift, Some(0.5));
        assert_eq!(spec.gap, Some(GapSpec { start: 0.7, end: 0.9, silent: 0.5 }));
        assert_eq!(spec.budget, Some(16));
        assert_eq!(spec.entities(), 48);
    }

    #[test]
    fn errors_are_typed_and_line_addressed() {
        match ScenarioSpec::parse("name = x\nbogus_key = 1\n") {
            Err(ScenarioError::UnknownKey { line: 2, key }) => assert_eq!(key, "bogus_key"),
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        match ScenarioSpec::parse("name = x\nvessels = many\n") {
            Err(ScenarioError::BadValue { line: 2, key, .. }) => assert_eq!(key, "vessels"),
            other => panic!("expected BadValue, got {other:?}"),
        }
        match ScenarioSpec::parse("name = x\nnot a kv line\n") {
            Err(ScenarioError::Malformed { line: 2, .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        match ScenarioSpec::parse("vessels = 5\nextent = 0 0 1 1\n") {
            Err(ScenarioError::MissingKey { key: "name" }) => {}
            other => panic!("expected MissingKey(name), got {other:?}"),
        }
        match ScenarioSpec::parse("name = x\nextent = 0 0 1 1\n") {
            Err(ScenarioError::Invalid { .. }) => {} // empty fleet
            other => panic!("expected Invalid, got {other:?}"),
        }
        match ScenarioSpec::parse("name = x\nextent = 0 0 1 1\nvessels = 4\nburst = 0.9 0.1 3\n") {
            Err(ScenarioError::Invalid { .. }) => {} // inverted window
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn generation_is_deterministic_and_mixed() {
        let spec = ScenarioSpec::parse(SMOKE).expect("parses");
        let a = ScenarioGenerator::new(spec.clone()).collect_reports();
        let b = ScenarioGenerator::new(spec.clone()).collect_reports();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same stream");
        assert!(!a.is_empty());
        let vessels = a.iter().filter(|r| r.entity.kind == MovingKind::Vessel).count();
        let aircraft = a.iter().filter(|r| r.entity.kind == MovingKind::Aircraft).count();
        assert!(vessels > 0 && aircraft > 0, "mixed-domain stream");
        // Everyone stays inside the area of interest.
        assert!(a.iter().all(|r| spec.extent.contains(&r.point)));
        // Per-entity timestamps are strictly ordered (the cleaner's
        // contract for a sane feed).
        let mut last = std::collections::HashMap::new();
        for r in &a {
            if let Some(prev) = last.insert(r.entity, r.ts) {
                assert!(r.ts > prev, "{:?} went back in time", r.entity);
            }
        }
    }

    #[test]
    fn burst_gap_and_shift_actually_happen() {
        let spec = ScenarioSpec::parse(SMOKE).expect("parses");
        let reports = ScenarioGenerator::new(spec.clone()).collect_reports();
        // Burst: some visit emitted more reports per entity than base.
        let mut per_entity = std::collections::HashMap::new();
        for r in &reports {
            *per_entity.entry(r.entity).or_insert(0usize) += 1;
        }
        let base = spec.reports_per_visit * spec.rounds;
        assert!(
            per_entity.values().any(|&n| n > base),
            "burst never multiplied anyone's report count"
        );
        // Gap: some entity emitted fewer reports than the gap-free total.
        assert!(
            per_entity.values().any(|&n| n < base),
            "gap never silenced anyone"
        );
        // Shift: late-run speeds exceed every early-run speed for some
        // entity (cruise regime was multiplied).
        let early_max = reports[..reports.len() / 4]
            .iter()
            .filter(|r| r.entity.kind == MovingKind::Vessel)
            .map(|r| r.speed_mps)
            .fold(0.0f64, f64::max);
        let late_max = reports[3 * reports.len() / 4..]
            .iter()
            .filter(|r| r.entity.kind == MovingKind::Vessel)
            .map(|r| r.speed_mps)
            .fold(0.0f64, f64::max);
        assert!(late_max > early_max, "regime shift had no kinematic effect");
        assert!(reports.len() as u64 <= spec.max_reports());
    }
}

//! Regenerating the shape of Table 1: the data-source inventory.
//!
//! Table 1 of the paper lists every datAcron source with its type, format,
//! volume and velocity. This module materialises scaled-down synthetic
//! equivalents of each source class and *measures* the same columns
//! (message counts, byte volumes, rates), so the experiment binary can print
//! a table with the same structure.

use crate::aviation::{FlightGenerator, FlightPlan, FlightProfile};
use crate::context::{AreaGenerator, PortGenerator, RegistryGenerator};
use crate::maritime::{VoyageConfig, VoyageGenerator};
use crate::weather::WeatherField;
use datacron_geo::{BoundingBox, GeoPoint, Timestamp};

/// The source type column of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceType {
    /// Moving-entity position feeds.
    Surveillance,
    /// Weather and sea-state forecasts.
    Weather,
    /// Static/contextual datasets.
    Contextual,
}

impl std::fmt::Display for SourceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceType::Surveillance => write!(f, "Surveillance"),
            SourceType::Weather => write!(f, "Weather"),
            SourceType::Contextual => write!(f, "Contextual"),
        }
    }
}

/// One measured row of the regenerated table.
#[derive(Debug, Clone)]
pub struct SourceRow {
    /// Source type column.
    pub source_type: SourceType,
    /// Source name column.
    pub source: String,
    /// Format column.
    pub format: &'static str,
    /// Number of messages/records generated.
    pub messages: u64,
    /// Total serialised bytes.
    pub bytes: u64,
    /// Messages per minute over the covered span (0 for static sources).
    pub msgs_per_min: f64,
}

/// A JSON AIS-like message, mirroring the streaming format of Table 1.
/// Serialised by hand (field order fixed) so the byte-volume column does
/// not need a JSON dependency.
struct AisJson<'a> {
    mmsi: u64,
    kind: &'a str,
    lon: f64,
    lat: f64,
    sog: f64,
    cog: f64,
    ts: i64,
}

impl AisJson<'_> {
    fn to_json(&self) -> String {
        format!(
            r#"{{"mmsi":{},"type":"{}","lon":{},"lat":{},"sog":{},"cog":{},"ts":{}}}"#,
            self.mmsi, self.kind, self.lon, self.lat, self.sog, self.cog, self.ts
        )
    }
}

/// Scale parameters for the regeneration (the paper's corpus is hundreds of
/// millions of messages; the defaults here run in seconds on a laptop while
/// preserving the *relative* volumes and velocities).
#[derive(Debug, Clone)]
pub struct Table1Scale {
    /// Vessels in the terrestrial AIS feed.
    pub ais_vessels: usize,
    /// Vessels in the satellite AIS feed (sparser reporting).
    pub sat_ais_vessels: usize,
    /// Flights in the ADS-B feed.
    pub flights: usize,
    /// Weather forecast grid dimension (rows = cols).
    pub weather_grid: usize,
    /// Number of forecast cycles.
    pub weather_cycles: usize,
    /// Contextual region count.
    pub regions: usize,
    /// Port count.
    pub ports: usize,
    /// Vessel-registry size.
    pub vessel_registry: usize,
}

impl Default for Table1Scale {
    fn default() -> Self {
        Self {
            ais_vessels: 50,
            sat_ais_vessels: 20,
            flights: 20,
            weather_grid: 24,
            weather_cycles: 8,
            regions: 200,
            ports: 120,
            vessel_registry: 2_000,
        }
    }
}

/// Generates every source class at the given scale and measures the rows.
pub fn regenerate(scale: &Table1Scale, seed: u64) -> Vec<SourceRow> {
    let extent = BoundingBox::new(-10.0, 35.0, 30.0, 60.0);
    let start = Timestamp(0);
    let mut rows = Vec::new();

    // --- Surveillance: terrestrial AIS (dense reporting). ---
    let ports = PortGenerator::new(extent).generate(scale.ports.max(2), seed ^ 1);
    let terr = VoyageGenerator::new(VoyageConfig::default()).fleet(scale.ais_vessels, &ports, start, seed ^ 2);
    rows.push(measure_ais("AIS (terrestrial)", "Flat files", &terr));

    // --- Surveillance: satellite AIS (sparse reporting). ---
    let sat_cfg = VoyageConfig {
        report_interval_s: 60.0,
        ..VoyageConfig::default()
    };
    let sat = VoyageGenerator::new(sat_cfg).fleet(scale.sat_ais_vessels, &ports, start, seed ^ 3);
    rows.push(measure_ais("AIS (satellite)", "JSON stream", &sat));

    // --- Surveillance: ADS-B flights. ---
    let weather = WeatherField::new(extent, seed ^ 4, 4, 10.0);
    let fg = FlightGenerator::new(FlightProfile::default(), weather.clone());
    let plan = FlightPlan::between(
        1,
        GeoPoint::new(2.08, 41.30),
        GeoPoint::new(-3.56, 40.47),
        5,
        10_500.0,
        220.0,
        seed ^ 5,
    );
    let flights = fg.fleet_on_route(scale.flights, &plan, start, 900.0, seed ^ 6);
    let mut msgs = 0u64;
    let mut bytes = 0u64;
    let mut span_ms: i64 = 1;
    for f in &flights {
        for r in &f.reports {
            msgs += 1;
            // CSV-like ADS-B line.
            bytes += format!(
                "{},{:.5},{:.5},{:.0},{:.1},{:.1},{}\n",
                f.aircraft.id, r.point.lon, r.point.lat, r.altitude_m, r.speed_mps, r.heading_deg, r.ts.millis()
            )
            .len() as u64;
            span_ms = span_ms.max(r.ts.millis());
        }
    }
    rows.push(SourceRow {
        source_type: SourceType::Surveillance,
        source: "ADS-B (FlightAware-like)".to_string(),
        format: "JSON stream",
        messages: msgs,
        bytes,
        msgs_per_min: msgs as f64 / (span_ms as f64 / 60_000.0),
    });

    // --- Weather forecasts. ---
    let mut wmsgs = 0u64;
    let mut wbytes = 0u64;
    for cycle in 0..scale.weather_cycles {
        let t = start + (cycle as i64) * 3 * 3_600_000; // one file per 3 h
        for (p, u, v, s) in weather.forecast_grid(t, scale.weather_grid, scale.weather_grid) {
            wmsgs += 1;
            wbytes += format!("{:.3},{:.3},{:.2},{:.2},{:.3}\n", p.lon, p.lat, u, v, s).len() as u64;
        }
    }
    rows.push(SourceRow {
        source_type: SourceType::Weather,
        source: "Weather/sea-state forecasts".to_string(),
        format: "Flat files",
        messages: wmsgs,
        bytes: wbytes,
        msgs_per_min: wmsgs as f64 / ((scale.weather_cycles as f64 * 3.0 * 60.0).max(1.0)),
    });

    // --- Contextual: regions, ports, registry (static). ---
    let regions = AreaGenerator::new(extent).generate(scale.regions, "natura", seed ^ 7);
    let rbytes: u64 = regions.iter().map(|r| r.polygon.to_wkt().len() as u64 + 16).sum();
    rows.push(static_row("Geographical regions", "WKT (shapefile-like)", regions.len() as u64, rbytes));

    let pbytes: u64 = ports.iter().map(|p| p.point.to_wkt().len() as u64 + p.name.len() as u64).sum();
    rows.push(static_row("Port registers", "WKT (shapefile-like)", ports.len() as u64, pbytes));

    let registry = RegistryGenerator.vessels(scale.vessel_registry, seed ^ 8);
    let regbytes: u64 = registry
        .iter()
        .map(|v| format!("{},{},{:.1},{:.2},{}\n", v.id, v.class, v.length_m, v.service_speed_mps, v.flag).len() as u64)
        .sum();
    rows.push(static_row("Vessel registers", "Flat files", registry.len() as u64, regbytes));

    rows
}

fn measure_ais(name: &str, format: &'static str, fleet: &[crate::maritime::GeneratedVoyage]) -> SourceRow {
    let mut msgs = 0u64;
    let mut bytes = 0u64;
    let mut span_ms: i64 = 1;
    for v in fleet {
        for r in &v.reports {
            msgs += 1;
            let m = AisJson {
                mmsi: v.vessel.id,
                kind: "position",
                lon: r.point.lon,
                lat: r.point.lat,
                sog: r.speed_mps,
                cog: r.heading_deg,
                ts: r.ts.millis(),
            };
            bytes += m.to_json().len() as u64 + 1;
            span_ms = span_ms.max(r.ts.millis());
        }
    }
    SourceRow {
        source_type: SourceType::Surveillance,
        source: name.to_string(),
        format,
        messages: msgs,
        bytes,
        msgs_per_min: msgs as f64 / (span_ms as f64 / 60_000.0),
    }
}

fn static_row(name: &str, format: &'static str, messages: u64, bytes: u64) -> SourceRow {
    SourceRow {
        source_type: SourceType::Contextual,
        source: name.to_string(),
        format,
        messages,
        bytes,
        msgs_per_min: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerates_all_source_classes() {
        let scale = Table1Scale {
            ais_vessels: 4,
            sat_ais_vessels: 2,
            flights: 2,
            weather_grid: 6,
            weather_cycles: 2,
            regions: 10,
            ports: 8,
            vessel_registry: 50,
            };
        let rows = regenerate(&scale, 1);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.source_type == SourceType::Surveillance));
        assert!(rows.iter().any(|r| r.source_type == SourceType::Weather));
        assert!(rows.iter().any(|r| r.source_type == SourceType::Contextual));
        for row in &rows {
            assert!(row.messages > 0, "{} produced nothing", row.source);
            assert!(row.bytes > 0);
        }
    }

    #[test]
    fn terrestrial_ais_is_denser_than_satellite() {
        let scale = Table1Scale {
            ais_vessels: 4,
            sat_ais_vessels: 4,
            flights: 1,
            weather_grid: 4,
            weather_cycles: 1,
            regions: 5,
            ports: 6,
            vessel_registry: 10,
        };
        let rows = regenerate(&scale, 2);
        let terr = rows.iter().find(|r| r.source.contains("terrestrial")).unwrap();
        let sat = rows.iter().find(|r| r.source.contains("satellite")).unwrap();
        assert!(
            terr.msgs_per_min > sat.msgs_per_min,
            "terrestrial {} vs satellite {}",
            terr.msgs_per_min,
            sat.msgs_per_min
        );
    }

    #[test]
    fn static_sources_have_zero_velocity() {
        let rows = regenerate(&Table1Scale {
            ais_vessels: 2,
            sat_ais_vessels: 2,
            flights: 1,
            weather_grid: 4,
            weather_cycles: 1,
            regions: 5,
            ports: 6,
            vessel_registry: 10,
        }, 3);
        for r in rows.iter().filter(|r| r.source_type == SourceType::Contextual) {
            assert_eq!(r.msgs_per_min, 0.0);
        }
    }
}

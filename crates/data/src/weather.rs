//! Synthetic weather: smooth space-time fields.
//!
//! Substitutes for the sea-state and weather-forecast sources of Table 1.
//! The field is a small sum of random sinusoidal modes, which gives the two
//! properties the experiments need: *smoothness* (nearby points and times
//! see similar weather, so flights on the same route share conditions) and
//! *determinism* (a seed fully fixes the field, so enrichment features are
//! reproducible).

use crate::rng::SeededRng;
use datacron_geo::{BoundingBox, GeoPoint, Timestamp};

/// One sinusoidal mode of the field.
#[derive(Debug, Clone, Copy)]
struct Mode {
    k_lon: f64,
    k_lat: f64,
    k_t: f64,
    phase: f64,
    amplitude: f64,
}

impl Mode {
    fn eval(&self, p: &GeoPoint, t_hours: f64) -> f64 {
        self.amplitude * (self.k_lon * p.lon + self.k_lat * p.lat + self.k_t * t_hours + self.phase).sin()
    }
}

/// A deterministic space-time weather field over an area of interest.
#[derive(Debug, Clone)]
pub struct WeatherField {
    extent: BoundingBox,
    wind_u: Vec<Mode>,
    wind_v: Vec<Mode>,
    severity: Vec<Mode>,
    base_wind_mps: f64,
}

impl WeatherField {
    /// Creates a field over `extent` with `modes` sinusoidal components per
    /// channel and typical wind magnitude `base_wind_mps`.
    pub fn new(extent: BoundingBox, seed: u64, modes: usize, base_wind_mps: f64) -> Self {
        let mut rng = SeededRng::new(seed);
        let gen_modes = |rng: &mut SeededRng, amp: f64| -> Vec<Mode> {
            (0..modes.max(1))
                .map(|_| Mode {
                    // Wavelengths of a few degrees and a few hours.
                    k_lon: rng.uniform(0.2, 2.0),
                    k_lat: rng.uniform(0.2, 2.0),
                    k_t: rng.uniform(0.05, 0.5),
                    phase: rng.uniform(0.0, std::f64::consts::TAU),
                    amplitude: amp * rng.uniform(0.3, 1.0),
                })
                .collect()
        };
        let wind_u = gen_modes(&mut rng, base_wind_mps);
        let wind_v = gen_modes(&mut rng, base_wind_mps);
        let severity = gen_modes(&mut rng, 1.0);
        Self {
            extent,
            wind_u,
            wind_v,
            severity,
            base_wind_mps,
        }
    }

    /// The covered extent.
    pub fn extent(&self) -> &BoundingBox {
        &self.extent
    }

    fn hours(t: Timestamp) -> f64 {
        t.secs_f64() / 3600.0
    }

    /// Wind vector `(east_mps, north_mps)` at a point and time.
    pub fn wind_at(&self, p: &GeoPoint, t: Timestamp) -> (f64, f64) {
        let h = Self::hours(t);
        let u: f64 = self.wind_u.iter().map(|m| m.eval(p, h)).sum();
        let v: f64 = self.wind_v.iter().map(|m| m.eval(p, h)).sum();
        (u, v)
    }

    /// Wind speed magnitude in m/s.
    pub fn wind_speed_at(&self, p: &GeoPoint, t: Timestamp) -> f64 {
        let (u, v) = self.wind_at(p, t);
        (u * u + v * v).sqrt()
    }

    /// A normalised "weather severity" in `[0, 1]` (storminess / sea state).
    /// Enrichment features and deviation models key off this scalar.
    pub fn severity_at(&self, p: &GeoPoint, t: Timestamp) -> f64 {
        let h = Self::hours(t);
        let raw: f64 = self.severity.iter().map(|m| m.eval(p, h)).sum();
        let norm = raw / self.severity.len() as f64;
        (norm + 1.0) / 2.0
    }

    /// Samples the field on a `rows × cols` grid at time `t` — one "forecast
    /// file" in Table-1 terms. Returns `(point, wind_u, wind_v, severity)`
    /// per grid node, row-major from the south-west.
    pub fn forecast_grid(&self, t: Timestamp, rows: usize, cols: usize) -> Vec<(GeoPoint, f64, f64, f64)> {
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let lon = self.extent.min_lon
                    + self.extent.width() * (c as f64 + 0.5) / cols as f64;
                let lat = self.extent.min_lat
                    + self.extent.height() * (r as f64 + 0.5) / rows as f64;
                let p = GeoPoint::new(lon, lat);
                let (u, v) = self.wind_at(&p, t);
                out.push((p, u, v, self.severity_at(&p, t)));
            }
        }
        out
    }

    /// The field's characteristic wind magnitude.
    pub fn base_wind_mps(&self) -> f64 {
        self.base_wind_mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> WeatherField {
        WeatherField::new(BoundingBox::new(-10.0, 30.0, 30.0, 60.0), 42, 4, 10.0)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = field();
        let b = field();
        let p = GeoPoint::new(5.0, 45.0);
        let t = Timestamp::from_secs(3600);
        assert_eq!(a.wind_at(&p, t), b.wind_at(&p, t));
        assert_eq!(a.severity_at(&p, t), b.severity_at(&p, t));
    }

    #[test]
    fn different_seeds_differ() {
        let a = field();
        let b = WeatherField::new(*a.extent(), 43, 4, 10.0);
        let p = GeoPoint::new(5.0, 45.0);
        let t = Timestamp::from_secs(3600);
        assert_ne!(a.wind_at(&p, t), b.wind_at(&p, t));
    }

    #[test]
    fn severity_in_unit_interval() {
        let f = field();
        for i in 0..200 {
            let p = GeoPoint::new(-10.0 + (i % 20) as f64 * 2.0, 30.0 + (i / 20) as f64 * 3.0);
            let s = f.severity_at(&p, Timestamp::from_secs(i * 97));
            assert!((0.0..=1.0).contains(&s), "severity {s}");
        }
    }

    #[test]
    fn field_is_smooth_in_space() {
        let f = field();
        let t = Timestamp::from_secs(7200);
        let p = GeoPoint::new(10.0, 45.0);
        let q = GeoPoint::new(10.01, 45.0); // ~1 km away
        let (u1, v1) = f.wind_at(&p, t);
        let (u2, v2) = f.wind_at(&q, t);
        assert!((u1 - u2).abs() < 1.0, "du {}", (u1 - u2).abs());
        assert!((v1 - v2).abs() < 1.0);
    }

    #[test]
    fn field_is_smooth_in_time() {
        let f = field();
        let p = GeoPoint::new(10.0, 45.0);
        let s1 = f.severity_at(&p, Timestamp::from_secs(3600));
        let s2 = f.severity_at(&p, Timestamp::from_secs(3660));
        assert!((s1 - s2).abs() < 0.05);
    }

    #[test]
    fn forecast_grid_shape_and_extent() {
        let f = field();
        let grid = f.forecast_grid(Timestamp::from_secs(0), 3, 5);
        assert_eq!(grid.len(), 15);
        for (p, _, _, s) in &grid {
            assert!(f.extent().contains(p));
            assert!((0.0..=1.0).contains(s));
        }
        // Row-major: first node is south-west-most.
        assert!(grid[0].0.lat < grid[14].0.lat);
        assert!(grid[0].0.lon < grid[4].0.lon);
    }

    #[test]
    fn wind_magnitude_is_plausible() {
        let f = field();
        let mut max = 0.0f64;
        for i in 0..100 {
            let p = GeoPoint::new(-10.0 + (i % 10) as f64 * 4.0, 30.0 + (i / 10) as f64 * 3.0);
            max = max.max(f.wind_speed_at(&p, Timestamp::from_secs(i * 661)));
        }
        assert!(max > 1.0, "field should have some wind, max {max}");
        assert!(max < 100.0, "wind should stay physical, max {max}");
    }
}

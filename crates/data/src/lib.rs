#![warn(missing_docs)]

//! # datacron-data
//!
//! Synthetic data generation for every data-source class of the datAcron
//! evaluation (Table 1 of the paper).
//!
//! The paper's experiments run on proprietary feeds — terrestrial and
//! satellite AIS, FlightAware ADS-B, IFS radar tracks, ECMWF sea-state
//! forecasts, EUROCONTROL flight plans. None of those are redistributable,
//! so this crate fabricates statistically faithful substitutes *with ground
//! truth attached*:
//!
//! * [`maritime`] — vessel traffic: port-to-port voyages, fishing patterns
//!   (the slow zig-zag manoeuvres the CEP experiments detect), stops,
//!   communication gaps, and configurable sensor noise.
//! * [`aviation`] — flights: flight plans, takeoff/climb/cruise/descent/
//!   landing profiles, per-waypoint deviations that *systematically depend on
//!   enrichment features* (weather, aircraft size, season) so the hybrid
//!   clustering/HMM predictor has real structure to learn, plus holding
//!   patterns and runway changes for the visual-analytics scenarios.
//! * [`weather`] — smooth space-time wind/sea-state fields sampled on a grid.
//! * [`context`] — static sources: protected areas, ports, vessel and
//!   aircraft registries.
//! * [`events`] — symbol streams drawn from configurable m-order Markov
//!   processes, the input of the Pattern-Markov-Chain forecasting
//!   experiments.
//! * [`table1`] — an inventory harness that regenerates the shape of
//!   Table 1 from these generators.
//! * [`scenario`] — declarative mixed-fleet scenarios (`.scenario` files):
//!   wave-structured maritime+aviation populations in a shared weather
//!   field, with rush-hour bursts, regime shifts and mass communication
//!   gaps, executed deterministically by the `datacron-cli` runner.
//!
//! All generators are deterministic given a seed.

pub mod aviation;
pub mod context;
pub mod events;
pub mod maritime;
pub mod rng;
pub mod scenario;
pub mod table1;
pub mod weather;

pub use aviation::{FlightGenerator, FlightPlan, FlightProfile, GeneratedFlight, Waypoint};
pub use context::{AreaGenerator, PortGenerator, Region, RegistryGenerator};
pub use events::{MarkovSymbolSource, SymbolStream};
pub use maritime::{GeneratedVoyage, VesselClass, VoyageGenerator};
pub use rng::SeededRng;
pub use scenario::{BurstSpec, GapSpec, ScenarioError, ScenarioGenerator, ScenarioSpec};
pub use weather::WeatherField;

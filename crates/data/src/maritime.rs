//! Synthetic maritime surveillance: AIS-like voyage generation.
//!
//! Substitutes for the terrestrial/satellite AIS sources of Table 1. The
//! simulator produces, per vessel, a *clean* ground-truth trajectory plus an
//! *observed* report stream degraded exactly the way real AIS is: position
//! jitter, occasional gross outliers, duplicated messages, and communication
//! gaps. The degradations are recorded as ground truth so the cleaning,
//! synopses, and event-detection experiments can score themselves.
//!
//! Motion model: waypoint following with a bounded turn rate. Straight,
//! predictable legs dominate (as the paper notes for open-sea traffic),
//! punctuated by turns at waypoints — precisely the structure the Synopses
//! Generator exploits. Fishing trips add the slow zig-zag manoeuvres with
//! heading reversals that the CEP patterns (`HeadingReversal`,
//! `NorthToSouthReversal`) look for.

use crate::context::Port;
use crate::rng::SeededRng;
use datacron_geo::point::normalize_heading;
use datacron_geo::{EntityId, GeoPoint, PositionReport, TimeInterval, Timestamp, Trajectory};

/// Vessel behaviour classes with distinct kinematics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VesselClass {
    /// Slow, very straight long-haul traffic.
    Cargo,
    /// Slowest large traffic.
    Tanker,
    /// Fast, schedule-keeping traffic.
    Ferry,
    /// Slow, manoeuvre-heavy traffic with fishing patterns.
    Fishing,
}

impl VesselClass {
    /// Typical service speed, m/s.
    pub fn service_speed_mps(&self) -> f64 {
        match self {
            VesselClass::Cargo => 7.5,
            VesselClass::Tanker => 6.5,
            VesselClass::Ferry => 10.5,
            VesselClass::Fishing => 4.5,
        }
    }

    /// Maximum turn rate, degrees/second.
    pub fn max_turn_rate_dps(&self) -> f64 {
        match self {
            VesselClass::Cargo | VesselClass::Tanker => 0.5,
            VesselClass::Ferry => 1.0,
            VesselClass::Fishing => 3.0,
        }
    }

    /// All classes, for fleet mixing.
    pub const ALL: [VesselClass; 4] = [
        VesselClass::Cargo,
        VesselClass::Tanker,
        VesselClass::Ferry,
        VesselClass::Fishing,
    ];
}

/// Degradation and sampling parameters of the observed stream.
#[derive(Debug, Clone)]
pub struct VoyageConfig {
    /// Seconds between position reports.
    pub report_interval_s: f64,
    /// Standard deviation of per-report position jitter, metres.
    pub noise_sigma_m: f64,
    /// Per-report probability that a communication gap starts.
    pub gap_probability: f64,
    /// Gap duration range, seconds.
    pub gap_duration_s: (f64, f64),
    /// Per-report probability of a gross position outlier (tens of km off).
    pub outlier_probability: f64,
    /// Per-report probability the message is duplicated.
    pub duplicate_probability: f64,
}

impl Default for VoyageConfig {
    fn default() -> Self {
        Self {
            report_interval_s: 10.0,
            noise_sigma_m: 15.0,
            gap_probability: 0.002,
            gap_duration_s: (600.0, 1800.0),
            outlier_probability: 0.001,
            duplicate_probability: 0.002,
        }
    }
}

impl VoyageConfig {
    /// A noise-free configuration: observed stream equals the clean one.
    pub fn clean() -> Self {
        Self {
            noise_sigma_m: 0.0,
            gap_probability: 0.0,
            outlier_probability: 0.0,
            duplicate_probability: 0.0,
            ..Self::default()
        }
    }
}

/// Ground truth attached to a generated voyage.
#[derive(Debug, Clone, Default)]
pub struct VoyageTruth {
    /// The planned route waypoints, origin and destination inclusive.
    pub waypoints: Vec<GeoPoint>,
    /// Communication-gap intervals in the observed stream.
    pub gaps: Vec<TimeInterval>,
    /// Interval spent in fishing manoeuvres, when any.
    pub fishing: Option<TimeInterval>,
    /// Intervals spent stationary.
    pub stops: Vec<TimeInterval>,
    /// Timestamps of injected gross outliers.
    pub outliers: Vec<Timestamp>,
}

/// One generated voyage: clean truth plus the degraded observation stream.
#[derive(Debug, Clone)]
pub struct GeneratedVoyage {
    /// The vessel identity.
    pub vessel: EntityId,
    /// Behaviour class.
    pub class: VesselClass,
    /// Noise-free ground-truth trajectory.
    pub clean: Trajectory,
    /// Observed (noisy, gappy) report stream in time order.
    pub reports: Vec<PositionReport>,
    /// Ground-truth annotations.
    pub truth: VoyageTruth,
}

/// Generates voyages and fleets.
#[derive(Debug, Clone)]
pub struct VoyageGenerator {
    /// Degradation/sampling parameters.
    pub config: VoyageConfig,
}

/// Internal simulation state.
struct Sim {
    pos: GeoPoint,
    heading: f64,
    speed: f64,
    t: Timestamp,
    clean: Vec<PositionReport>,
}

impl Sim {
    fn new(entity: EntityId, start: GeoPoint, heading: f64, t0: Timestamp) -> Self {
        let mut s = Self {
            pos: start,
            heading,
            speed: 0.0,
            t: t0,
            clean: Vec::new(),
        };
        s.record(entity);
        s
    }

    fn record(&mut self, entity: EntityId) {
        self.clean.push(PositionReport {
            entity,
            ts: self.t,
            point: self.pos,
            altitude_m: 0.0,
            speed_mps: self.speed,
            heading_deg: self.heading,
            vertical_rate_mps: 0.0,
        });
    }

    /// Advances one step toward `target` at `cruise` speed, turn-limited.
    fn step_toward(&mut self, entity: EntityId, target: &GeoPoint, cruise: f64, turn_dps: f64, dt: f64) {
        let desired = self.pos.bearing_to(target);
        let diff = shortest_turn(self.heading, desired);
        let max_turn = turn_dps * dt;
        self.heading = normalize_heading(self.heading + diff.clamp(-max_turn, max_turn));
        // Accelerate/decelerate smoothly toward cruise.
        self.speed += (cruise - self.speed).clamp(-0.3 * dt, 0.3 * dt);
        self.pos = self.pos.destination(self.heading, self.speed * dt);
        self.t = self.t + (dt * 1000.0) as i64;
        self.record(entity);
    }

    /// Remains in place for `duration_s`, reporting at the same cadence.
    fn hold(&mut self, entity: EntityId, duration_s: f64, dt: f64) -> TimeInterval {
        let start = self.t;
        let steps = (duration_s / dt).ceil() as usize;
        self.speed = 0.0;
        for _ in 0..steps {
            self.t = self.t + (dt * 1000.0) as i64;
            self.record(entity);
        }
        TimeInterval::new(start, self.t)
    }
}

/// Signed shortest rotation from `from` to `to`, degrees in `(-180, 180]`.
fn shortest_turn(from: f64, to: f64) -> f64 {
    let mut d = (to - from) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    }
    if d <= -180.0 {
        d += 360.0;
    }
    d
}

impl VoyageGenerator {
    /// Creates a generator with the given degradation config.
    pub fn new(config: VoyageConfig) -> Self {
        Self { config }
    }

    /// Simulates a port-to-port voyage through 1–3 intermediate waypoints.
    pub fn voyage(
        &self,
        vessel_id: u64,
        class: VesselClass,
        origin: GeoPoint,
        destination: GeoPoint,
        start: Timestamp,
        seed: u64,
    ) -> GeneratedVoyage {
        let mut rng = SeededRng::new(seed);
        let entity = EntityId::vessel(vessel_id);
        let dt = self.config.report_interval_s;
        let cruise = class.service_speed_mps() * rng.uniform(0.9, 1.1);
        let turn = class.max_turn_rate_dps();

        // Route: origin → 1..=3 jittered intermediate waypoints → destination.
        let n_mid = 1 + rng.index(3);
        let mut waypoints = vec![origin];
        for k in 1..=n_mid {
            let f = k as f64 / (n_mid + 1) as f64;
            let on_line = origin.lerp(&destination, f);
            let off = on_line.destination(rng.uniform(0.0, 360.0), rng.uniform(2_000.0, 20_000.0));
            waypoints.push(off);
        }
        waypoints.push(destination);

        let mut sim = Sim::new(entity, origin, origin.bearing_to(&waypoints[1]), start);
        let mut truth = VoyageTruth {
            waypoints: waypoints.clone(),
            ..VoyageTruth::default()
        };

        for wp in waypoints.iter().skip(1) {
            // Arrival threshold: one step's travel.
            let threshold = (cruise * dt).max(50.0);
            let mut guard = 0u32;
            while sim.pos.haversine_distance(wp) > threshold {
                sim.step_toward(entity, wp, cruise, turn, dt);
                guard += 1;
                if guard > 500_000 {
                    break; // defensive: never loop forever on degenerate geometry
                }
            }
        }
        // Arrive: decelerate and stop briefly at the destination.
        let stop = sim.hold(entity, rng.uniform(300.0, 900.0), dt);
        truth.stops.push(stop);

        self.finish(entity, class, sim.clean, truth, &mut rng)
    }

    /// Simulates a fishing trip: transit to the grounds, slow zig-zag
    /// manoeuvres with heading reversals, a drift stop, then return.
    pub fn fishing_trip(
        &self,
        vessel_id: u64,
        port: GeoPoint,
        grounds: GeoPoint,
        start: Timestamp,
        seed: u64,
    ) -> GeneratedVoyage {
        let mut rng = SeededRng::new(seed);
        let entity = EntityId::vessel(vessel_id);
        let class = VesselClass::Fishing;
        let dt = self.config.report_interval_s;
        let cruise = class.service_speed_mps();
        let turn = class.max_turn_rate_dps();

        let mut sim = Sim::new(entity, port, port.bearing_to(&grounds), start);
        let mut truth = VoyageTruth {
            waypoints: vec![port, grounds],
            ..VoyageTruth::default()
        };

        // Transit out.
        let threshold = (cruise * dt).max(50.0);
        while sim.pos.haversine_distance(&grounds) > threshold {
            sim.step_toward(entity, &grounds, cruise, turn, dt);
        }

        // Fishing: zig-zag legs alternating roughly north/south headings with
        // a slow eastward drift — the archetypal trawling pattern whose turn
        // sequence the NorthToSouthReversal CEP pattern matches.
        let fishing_start = sim.t;
        let n_legs = 4 + rng.index(5);
        let trawl_speed = cruise * 0.4;
        for leg in 0..n_legs {
            let north = leg % 2 == 0;
            let base = if north { 10.0 } else { 170.0 };
            let leg_heading = normalize_heading(base + rng.uniform(-8.0, 8.0));
            let leg_len_m = rng.uniform(1_500.0, 4_000.0);
            let target = sim.pos.destination(leg_heading, leg_len_m);
            let mut guard = 0u32;
            while sim.pos.haversine_distance(&target) > (trawl_speed * dt).max(30.0) {
                sim.step_toward(entity, &target, trawl_speed, turn, dt);
                guard += 1;
                if guard > 100_000 {
                    break;
                }
            }
        }
        // Drift stop on the grounds.
        let stop = sim.hold(entity, rng.uniform(600.0, 1200.0), dt);
        truth.stops.push(stop);
        truth.fishing = Some(TimeInterval::new(fishing_start, sim.t));

        // Return to port.
        while sim.pos.haversine_distance(&port) > threshold {
            sim.step_toward(entity, &port, cruise, turn, dt);
        }
        let final_stop = sim.hold(entity, 300.0, dt);
        truth.stops.push(final_stop);

        self.finish(entity, class, sim.clean, truth, &mut rng)
    }

    /// Generates a mixed fleet of `n` voyages between random port pairs.
    pub fn fleet(&self, n: usize, ports: &[Port], start: Timestamp, seed: u64) -> Vec<GeneratedVoyage> {
        assert!(ports.len() >= 2, "need at least two ports");
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let class = *rng.pick(&VesselClass::ALL);
                let a = rng.pick(ports).point;
                // Realistic voyage legs: prefer a destination 20–400 km away
                // (multi-day ocean crossings would dominate the corpus and
                // say nothing extra about the algorithms).
                let mut b = rng.pick(ports).point;
                let mut guard = 0;
                while !(20_000.0..400_000.0).contains(&a.haversine_distance(&b)) && guard < 40 {
                    b = rng.pick(ports).point;
                    guard += 1;
                }
                if !(20_000.0..400_000.0).contains(&a.haversine_distance(&b)) {
                    b = a.destination(rng.uniform(0.0, 360.0), rng.uniform(50_000.0, 300_000.0));
                }
                let t0 = start + rng.int_range(0, 3_600_000);
                let voyage_seed = rng.fork(i as u64).int_range(0, i64::MAX) as u64;
                if class == VesselClass::Fishing {
                    let grounds = a.destination(rng.uniform(0.0, 360.0), rng.uniform(15_000.0, 40_000.0));
                    self.fishing_trip(i as u64, a, grounds, t0, voyage_seed)
                } else {
                    self.voyage(i as u64, class, a, b, t0, voyage_seed)
                }
            })
            .collect()
    }

    /// Applies the observation-degradation model to a clean trajectory.
    fn finish(
        &self,
        entity: EntityId,
        class: VesselClass,
        clean: Vec<PositionReport>,
        mut truth: VoyageTruth,
        rng: &mut SeededRng,
    ) -> GeneratedVoyage {
        let cfg = &self.config;
        let mut reports = Vec::with_capacity(clean.len());
        let mut gap_until: Option<Timestamp> = None;
        let mut gap_start: Option<Timestamp> = None;
        for r in &clean {
            if let Some(until) = gap_until {
                if r.ts < until {
                    continue;
                }
                truth
                    .gaps
                    .push(TimeInterval::new(gap_start.take().expect("gap start set"), r.ts));
                gap_until = None;
            }
            if cfg.gap_probability > 0.0 && rng.chance(cfg.gap_probability) {
                let dur = rng.uniform(cfg.gap_duration_s.0, cfg.gap_duration_s.1);
                gap_start = Some(r.ts);
                gap_until = Some(r.ts + (dur * 1000.0) as i64);
                continue;
            }
            let mut obs = *r;
            if cfg.noise_sigma_m > 0.0 {
                let d = rng.gaussian(0.0, cfg.noise_sigma_m).abs();
                let b = rng.uniform(0.0, 360.0);
                obs.point = obs.point.destination(b, d);
            }
            if cfg.outlier_probability > 0.0 && rng.chance(cfg.outlier_probability) {
                obs.point = obs.point.destination(rng.uniform(0.0, 360.0), rng.uniform(20_000.0, 80_000.0));
                truth.outliers.push(obs.ts);
            }
            reports.push(obs);
            if cfg.duplicate_probability > 0.0 && rng.chance(cfg.duplicate_probability) {
                reports.push(obs);
            }
        }
        GeneratedVoyage {
            vessel: entity,
            class,
            clean: Trajectory::from_reports(clean),
            reports,
            truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::point::heading_difference;

    fn gen_clean() -> VoyageGenerator {
        VoyageGenerator::new(VoyageConfig::clean())
    }

    #[test]
    fn voyage_reaches_destination() {
        let g = gen_clean();
        let origin = GeoPoint::new(23.6, 37.9);
        let dest = GeoPoint::new(24.5, 37.4);
        let v = g.voyage(1, VesselClass::Cargo, origin, dest, Timestamp(0), 7);
        let last = v.clean.reports().last().unwrap();
        assert!(last.point.haversine_distance(&dest) < 500.0, "ended {} m away", last.point.haversine_distance(&dest));
        assert!(v.clean.len() > 100);
    }

    #[test]
    fn voyage_is_deterministic() {
        let g = gen_clean();
        let origin = GeoPoint::new(23.6, 37.9);
        let dest = GeoPoint::new(24.5, 37.4);
        let a = g.voyage(1, VesselClass::Ferry, origin, dest, Timestamp(0), 7);
        let b = g.voyage(1, VesselClass::Ferry, origin, dest, Timestamp(0), 7);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.reports, b.reports);
    }

    #[test]
    fn clean_config_observes_everything() {
        let g = gen_clean();
        let v = g.voyage(1, VesselClass::Cargo, GeoPoint::new(0.0, 40.0), GeoPoint::new(0.5, 40.2), Timestamp(0), 3);
        assert_eq!(v.reports.len(), v.clean.len());
        assert!(v.truth.gaps.is_empty());
        assert!(v.truth.outliers.is_empty());
    }

    #[test]
    fn degradation_produces_gaps_and_outliers() {
        let cfg = VoyageConfig {
            gap_probability: 0.01,
            outlier_probability: 0.01,
            duplicate_probability: 0.01,
            ..VoyageConfig::default()
        };
        let g = VoyageGenerator::new(cfg);
        let v = g.voyage(1, VesselClass::Cargo, GeoPoint::new(0.0, 40.0), GeoPoint::new(1.5, 40.5), Timestamp(0), 11);
        assert!(!v.truth.gaps.is_empty(), "expected at least one gap");
        assert!(!v.truth.outliers.is_empty(), "expected outliers");
        assert!(v.reports.len() < v.clean.len() + 50, "gaps should drop reports");
        // Reports remain time-ordered.
        assert!(v.reports.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn fishing_trip_has_reversals_and_truth() {
        let g = gen_clean();
        let port = GeoPoint::new(23.0, 38.0);
        let grounds = GeoPoint::new(23.2, 38.1);
        let v = g.fishing_trip(9, port, grounds, Timestamp(0), 21);
        let fishing = v.truth.fishing.expect("fishing interval recorded");
        assert!(fishing.duration_millis() > 0);
        // During fishing there must be both northish and southish headings.
        let (mut north, mut south) = (0, 0);
        for r in v.clean.reports() {
            if fishing.contains(r.ts) && r.speed_mps > 0.5 {
                if heading_difference(r.heading_deg, 0.0) < 45.0 {
                    north += 1;
                }
                if heading_difference(r.heading_deg, 180.0) < 45.0 {
                    south += 1;
                }
            }
        }
        assert!(north > 10 && south > 10, "north {north} south {south}");
        // Returns to port.
        let last = v.clean.reports().last().unwrap();
        assert!(last.point.haversine_distance(&port) < 1_000.0);
        assert!(v.truth.stops.len() >= 2);
    }

    #[test]
    fn stops_have_zero_speed() {
        let g = gen_clean();
        let v = g.voyage(2, VesselClass::Tanker, GeoPoint::new(10.0, 40.0), GeoPoint::new(10.4, 40.3), Timestamp(0), 5);
        let stop = v.truth.stops[0];
        let stopped: Vec<_> = v
            .clean
            .reports()
            .iter()
            .filter(|r| stop.contains(r.ts) && r.ts > stop.start)
            .collect();
        assert!(!stopped.is_empty());
        assert!(stopped.iter().all(|r| r.speed_mps == 0.0));
    }

    #[test]
    fn fleet_mixes_classes() {
        use crate::context::PortGenerator;
        let ports = PortGenerator::new(datacron_geo::BoundingBox::new(0.0, 38.0, 5.0, 42.0)).generate(10, 1);
        let g = gen_clean();
        let fleet = g.fleet(12, &ports, Timestamp(0), 33);
        assert_eq!(fleet.len(), 12);
        let classes: std::collections::HashSet<_> = fleet.iter().map(|v| v.class).collect();
        assert!(classes.len() >= 2, "fleet should mix classes");
        // All voyages non-trivial.
        assert!(fleet.iter().all(|v| v.clean.len() > 50));
    }

    #[test]
    fn shortest_turn_signs() {
        assert!((shortest_turn(10.0, 350.0) - -20.0).abs() < 1e-9);
        assert!((shortest_turn(350.0, 10.0) - 20.0).abs() < 1e-9);
        assert!((shortest_turn(0.0, 180.0) - 180.0).abs() < 1e-9);
    }
}

//! Symbol-stream generation from m-order Markov processes.
//!
//! The Pattern-Markov-Chain forecasting experiment (Figure 8 of the paper)
//! evaluates forecast precision under 1st- and 2nd-order model assumptions
//! against a stream whose true generating process is higher-order. This
//! module provides exactly that: a configurable m-order Markov source over a
//! finite alphabet, with known transition structure, so the experiment can
//! quantify how matching the assumed order to the true order improves
//! precision.
//!
//! Symbols are `u8` indices into a caller-defined alphabet (for the maritime
//! pattern: `ChangeInHeadingNorth`, `ChangeInHeadingEast`,
//! `ChangeInHeadingSouth`, plus background symbols).

use crate::rng::SeededRng;

/// A generated symbol stream with its source parameters.
#[derive(Debug, Clone)]
pub struct SymbolStream {
    /// The symbols in order.
    pub symbols: Vec<u8>,
    /// Alphabet size.
    pub alphabet: usize,
    /// True order of the generating process.
    pub order: usize,
}

/// An m-order Markov process over a finite alphabet.
///
/// The conditional distribution of the next symbol given the last `m`
/// symbols is stored densely: `probs[context_index * alphabet + symbol]`
/// where `context_index` encodes the last `m` symbols base-`alphabet`
/// (most recent symbol in the lowest digit).
#[derive(Debug, Clone)]
pub struct MarkovSymbolSource {
    alphabet: usize,
    order: usize,
    probs: Vec<f64>,
}

impl MarkovSymbolSource {
    /// Creates a source with random (seeded) conditional distributions that
    /// are *sharpened* to be genuinely order-dependent: each context prefers
    /// a couple of symbols strongly, so a lower-order approximation loses
    /// real information.
    pub fn random(alphabet: usize, order: usize, concentration: f64, seed: u64) -> Self {
        assert!(alphabet >= 2, "alphabet must have at least two symbols");
        assert!(order >= 1, "order must be at least 1");
        let contexts = alphabet.pow(order as u32);
        let mut rng = SeededRng::new(seed);
        let mut probs = Vec::with_capacity(contexts * alphabet);
        for _ in 0..contexts {
            // Dirichlet-like: exponential weights raised to a concentration
            // power, then normalised. Higher concentration → sharper rows.
            let mut row: Vec<f64> = (0..alphabet)
                .map(|_| rng.exponential(1.0).powf(concentration))
                .collect();
            let sum: f64 = row.iter().sum();
            for w in &mut row {
                *w /= sum;
            }
            probs.extend(row);
        }
        Self {
            alphabet,
            order,
            probs,
        }
    }

    /// Creates a source from explicit conditional rows.
    ///
    /// # Panics
    /// Panics when dimensions are inconsistent or any row does not sum to ~1.
    pub fn from_probs(alphabet: usize, order: usize, probs: Vec<f64>) -> Self {
        let contexts = alphabet.pow(order as u32);
        assert_eq!(probs.len(), contexts * alphabet, "probability table size mismatch");
        for c in 0..contexts {
            let row_sum: f64 = probs[c * alphabet..(c + 1) * alphabet].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {c} sums to {row_sum}");
        }
        Self {
            alphabet,
            order,
            probs,
        }
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// True process order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The conditional probability `P(next = s | context)`, where `context`
    /// lists the last `m` symbols, oldest first.
    pub fn conditional(&self, context: &[u8], s: u8) -> f64 {
        assert_eq!(context.len(), self.order, "context length must equal order");
        let idx = self.context_index(context);
        self.probs[idx * self.alphabet + s as usize]
    }

    fn context_index(&self, context: &[u8]) -> usize {
        // Oldest symbol in the highest digit.
        context
            .iter()
            .fold(0usize, |acc, &s| acc * self.alphabet + s as usize)
    }

    /// Generates a stream of `n` symbols (after an initial warm-up of
    /// uniform symbols to seed the context).
    pub fn generate(&self, n: usize, seed: u64) -> SymbolStream {
        let mut rng = SeededRng::new(seed);
        let mut context: Vec<u8> = (0..self.order)
            .map(|_| rng.index(self.alphabet) as u8)
            .collect();
        let mut symbols = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = self.context_index(&context);
            let row = &self.probs[idx * self.alphabet..(idx + 1) * self.alphabet];
            let s = rng.weighted_index(row) as u8;
            symbols.push(s);
            context.remove(0);
            context.push(s);
        }
        SymbolStream {
            symbols,
            alphabet: self.alphabet,
            order: self.order,
        }
    }
}

/// Empirical m-order conditional frequencies of a symbol stream — the
/// estimator the PMC training step uses, also handy in tests.
pub fn empirical_conditionals(symbols: &[u8], alphabet: usize, order: usize) -> Vec<f64> {
    let contexts = alphabet.pow(order as u32);
    let mut counts = vec![0.0f64; contexts * alphabet];
    for w in symbols.windows(order + 1) {
        let ctx = w[..order].iter().fold(0usize, |acc, &s| acc * alphabet + s as usize);
        counts[ctx * alphabet + w[order] as usize] += 1.0;
    }
    // Laplace smoothing so unseen contexts stay usable.
    for c in 0..contexts {
        let row = &mut counts[c * alphabet..(c + 1) * alphabet];
        let total: f64 = row.iter().sum::<f64>() + alphabet as f64;
        for v in row.iter_mut() {
            *v = (*v + 1.0) / total;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_range() {
        let src = MarkovSymbolSource::random(4, 2, 2.0, 1);
        let s = src.generate(1000, 2);
        assert_eq!(s.symbols.len(), 1000);
        assert!(s.symbols.iter().all(|&x| (x as usize) < 4));
    }

    #[test]
    fn deterministic_per_seed() {
        let src = MarkovSymbolSource::random(3, 1, 2.0, 5);
        assert_eq!(src.generate(100, 7).symbols, src.generate(100, 7).symbols);
        assert_ne!(src.generate(100, 7).symbols, src.generate(100, 8).symbols);
    }

    #[test]
    fn explicit_probs_are_respected() {
        // Order-1 over {0,1}: after 0 always 1, after 1 always 0.
        let src = MarkovSymbolSource::from_probs(2, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let s = src.generate(50, 3);
        for w in s.symbols.windows(2) {
            assert_ne!(w[0], w[1], "strict alternation expected");
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_rows_rejected() {
        MarkovSymbolSource::from_probs(2, 1, vec![0.5, 0.4, 1.0, 0.0]);
    }

    #[test]
    fn conditional_lookup_matches_table() {
        let src = MarkovSymbolSource::from_probs(2, 2, vec![
            // contexts 00, 01, 10, 11
            0.9, 0.1, //
            0.2, 0.8, //
            0.6, 0.4, //
            0.3, 0.7,
        ]);
        assert_eq!(src.conditional(&[0, 1], 1), 0.8);
        assert_eq!(src.conditional(&[1, 0], 0), 0.6);
    }

    #[test]
    fn empirical_conditionals_recover_structure() {
        let src = MarkovSymbolSource::from_probs(2, 1, vec![0.9, 0.1, 0.1, 0.9]);
        let s = src.generate(50_000, 9);
        let est = empirical_conditionals(&s.symbols, 2, 1);
        assert!((est[0] - 0.9).abs() < 0.02, "P(0|0) {}", est[0]);
        assert!((est[3] - 0.9).abs() < 0.02, "P(1|1) {}", est[3]);
    }

    #[test]
    fn second_order_structure_invisible_to_first_order() {
        // Build an order-2 process where the next symbol depends strongly on
        // the *older* of the two context symbols. A first-order estimate
        // cannot capture it: its rows mix the two contexts.
        let src = MarkovSymbolSource::from_probs(2, 2, vec![
            0.95, 0.05, // after 00 -> 0
            0.95, 0.05, // after 01 -> 0 (depends on old=0)
            0.05, 0.95, // after 10 -> 1
            0.05, 0.95, // after 11 -> 1
        ]);
        let s = src.generate(50_000, 4);
        let est2 = empirical_conditionals(&s.symbols, 2, 2);
        let est1 = empirical_conditionals(&s.symbols, 2, 1);
        // Order-2 estimate is sharp.
        assert!(est2[0] > 0.9);
        // Order-1 estimate is blurred toward 0.5.
        assert!(est1[0] < 0.9 && est1[0] > 0.1, "P1(0|0) {}", est1[0]);
    }
}

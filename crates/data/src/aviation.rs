//! Synthetic aviation surveillance: ADS-B-like flight generation.
//!
//! Substitutes for the FlightAware and IFS sources of Table 1 and for the
//! EUROCONTROL flight plans. Each flight carries:
//!
//! * a **flight plan** (waypoints with target altitudes) — the "intended
//!   trajectory" of the ATM domain;
//! * **enrichment features** (aircraft size class, weekday, hour, weather
//!   severity per waypoint) — the information the Hybrid Clustering/HMM
//!   predictor exploits;
//! * a **clean trajectory** flown through per-waypoint *deviations that are
//!   a deterministic function of the features plus small noise* — exactly
//!   the structure the paper's §5 claims data-driven TP can learn ("predict
//!   these deviations optimally, based on all the information available,
//!   including local weather (per waypoint), aircraft size, seasonal
//!   factors");
//! * an **observed report stream** with sensor jitter.
//!
//! The flight dynamics include the non-linear phases (takeoff roll, climb,
//! turns, descent, landing) that the RMF* future-location-prediction
//! experiment (Figure 5a) focuses on.

use crate::rng::SeededRng;
use crate::weather::WeatherField;
use datacron_geo::point::normalize_heading;
use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp, Trajectory};

/// A named route point with a target altitude.
#[derive(Debug, Clone, PartialEq)]
pub struct Waypoint {
    /// Waypoint designator, e.g. `"WP2"`.
    pub name: String,
    /// Horizontal position.
    pub point: GeoPoint,
    /// Target altitude when passing, metres.
    pub altitude_m: f64,
}

/// An intended trajectory: ordered waypoints from origin to destination.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightPlan {
    /// Plan identifier.
    pub id: u64,
    /// Waypoints, origin (ground) first and destination (ground) last.
    pub waypoints: Vec<Waypoint>,
    /// Planned cruise ground speed, m/s.
    pub cruise_speed_mps: f64,
}

impl FlightPlan {
    /// Builds a plan between two airports with `n_mid` en-route waypoints,
    /// lightly jittered off the direct line (as real airway routings are).
    pub fn between(
        id: u64,
        origin: GeoPoint,
        destination: GeoPoint,
        n_mid: usize,
        cruise_altitude_m: f64,
        cruise_speed_mps: f64,
        seed: u64,
    ) -> FlightPlan {
        let mut rng = SeededRng::new(seed);
        let mut waypoints = Vec::with_capacity(n_mid + 2);
        waypoints.push(Waypoint {
            name: "DEP".to_string(),
            point: origin,
            altitude_m: 0.0,
        });
        for k in 1..=n_mid {
            let f = k as f64 / (n_mid + 1) as f64;
            let on_line = origin.lerp(&destination, f);
            let off = on_line.destination(rng.uniform(0.0, 360.0), rng.uniform(1_000.0, 8_000.0));
            // Altitude profile: climb over the first fifth, descend over the
            // last fifth, cruise in between.
            let alt = if f < 0.2 {
                cruise_altitude_m * (f / 0.2)
            } else if f > 0.8 {
                cruise_altitude_m * ((1.0 - f) / 0.2)
            } else {
                cruise_altitude_m
            };
            waypoints.push(Waypoint {
                name: format!("WP{k}"),
                point: off,
                altitude_m: alt,
            });
        }
        waypoints.push(Waypoint {
            name: "ARR".to_string(),
            point: destination,
            altitude_m: 0.0,
        });
        FlightPlan {
            id,
            waypoints,
            cruise_speed_mps,
        }
    }

    /// Total planned route length in metres.
    pub fn route_length_m(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].point.haversine_distance(&w[1].point))
            .sum()
    }
}

/// Enrichment features attached to a flight — the inputs of the TP models.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightFeatures {
    /// Wake/size category: 0 light, 1 medium, 2 heavy.
    pub size_class: u8,
    /// Day of week, `0..7`.
    pub weekday: u8,
    /// Departure hour, `0..24`.
    pub hour: u8,
    /// Weather severity sampled at each plan waypoint at passage time.
    pub wp_severity: Vec<f64>,
}

impl FlightFeatures {
    /// Mean severity along the route.
    pub fn avg_severity(&self) -> f64 {
        if self.wp_severity.is_empty() {
            return 0.0;
        }
        self.wp_severity.iter().sum::<f64>() / self.wp_severity.len() as f64
    }
}

/// One generated flight with ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedFlight {
    /// The aircraft identity.
    pub aircraft: EntityId,
    /// The filed plan.
    pub plan: FlightPlan,
    /// Enrichment features.
    pub features: FlightFeatures,
    /// Noise-free flown trajectory.
    pub clean: Trajectory,
    /// Observed reports (sensor jitter applied).
    pub reports: Vec<PositionReport>,
    /// Ground-truth deviation at each plan waypoint:
    /// `(signed cross-track metres, signed vertical metres)`.
    pub waypoint_deviations_m: Vec<(f64, f64)>,
}

/// Flight-dynamics and sampling parameters.
#[derive(Debug, Clone)]
pub struct FlightProfile {
    /// Seconds between position reports (the paper's Fig 5a uses 8 s).
    pub report_interval_s: f64,
    /// Climb rate, m/s.
    pub climb_rate_mps: f64,
    /// Descent rate, m/s (positive number).
    pub descent_rate_mps: f64,
    /// Maximum turn rate, degrees/second.
    pub max_turn_rate_dps: f64,
    /// Sensor position jitter sigma, metres.
    pub noise_sigma_m: f64,
    /// Deviation-model weights: cross-track metres per unit
    /// `(severity - 0.5)`, scaled by size factor.
    pub deviation_weather_gain_m: f64,
    /// Residual (unexplained) deviation sigma, metres.
    pub deviation_noise_m: f64,
}

impl Default for FlightProfile {
    fn default() -> Self {
        Self {
            report_interval_s: 8.0,
            climb_rate_mps: 12.0,
            descent_rate_mps: 8.0,
            max_turn_rate_dps: 1.0,
            noise_sigma_m: 20.0,
            deviation_weather_gain_m: 1600.0,
            deviation_noise_m: 60.0,
        }
    }
}

/// Generates flights against a weather field.
#[derive(Debug, Clone)]
pub struct FlightGenerator {
    /// Dynamics and sampling parameters.
    pub profile: FlightProfile,
    /// The weather field supplying enrichment features.
    pub weather: WeatherField,
}

impl FlightGenerator {
    /// Creates a generator.
    pub fn new(profile: FlightProfile, weather: WeatherField) -> Self {
        Self { profile, weather }
    }

    /// Size factor of the deviation model: heavier aircraft hold the route
    /// better.
    fn size_factor(size_class: u8) -> f64 {
        match size_class {
            0 => 1.4,
            1 => 1.0,
            _ => 0.7,
        }
    }

    /// Computes the ground-truth per-waypoint deviations for a plan flown by
    /// an aircraft of `size_class` departing at `departure`.
    ///
    /// The deviation is *systematic*: a smooth function of weather severity
    /// at the waypoint (sampled at estimated passage time), aircraft size,
    /// and a weekday factor — plus small Gaussian noise. A model that learns
    /// the systematic part can predict deviations down to the noise floor.
    fn waypoint_deviations(
        &self,
        plan: &FlightPlan,
        size_class: u8,
        weekday: u8,
        departure: Timestamp,
        rng: &mut SeededRng,
    ) -> (Vec<(f64, f64)>, Vec<f64>) {
        let p = &self.profile;
        let size = Self::size_factor(size_class);
        // Weekday factor: weekend traffic gets wider tolerances.
        let weekday_gain = if weekday >= 5 { 1.2 } else { 1.0 };
        let mut deviations = Vec::with_capacity(plan.waypoints.len());
        let mut severities = Vec::with_capacity(plan.waypoints.len());
        let mut dist_acc = 0.0;
        for (i, wp) in plan.waypoints.iter().enumerate() {
            if i > 0 {
                dist_acc += plan.waypoints[i - 1].point.haversine_distance(&wp.point);
            }
            let eta = departure + ((dist_acc / plan.cruise_speed_mps) * 1000.0) as i64;
            let severity = self.weather.severity_at(&wp.point, eta);
            severities.push(severity);
            if i == 0 || i == plan.waypoints.len() - 1 {
                // Airports are fixed points: no deviation on the ground.
                deviations.push((0.0, 0.0));
                continue;
            }
            let systematic = (severity - 0.5) * p.deviation_weather_gain_m * size * weekday_gain;
            let cross = systematic + rng.gaussian(0.0, p.deviation_noise_m);
            let vertical = (severity - 0.5) * 300.0 * size + rng.gaussian(0.0, 20.0);
            deviations.push((cross, vertical));
        }
        (deviations, severities)
    }

    /// Simulates one flight of `plan` by an aircraft of `size_class`
    /// departing at `departure`.
    pub fn flight(
        &self,
        aircraft_id: u64,
        plan: &FlightPlan,
        size_class: u8,
        weekday: u8,
        departure: Timestamp,
        seed: u64,
    ) -> GeneratedFlight {
        let mut rng = SeededRng::new(seed);
        let p = &self.profile;
        let entity = EntityId::aircraft(aircraft_id);
        let (deviations, severities) = self.waypoint_deviations(plan, size_class, weekday, departure, &mut rng);

        // Actual route: plan waypoints displaced laterally by the deviation,
        // perpendicular to the local route direction.
        let n = plan.waypoints.len();
        let mut actual: Vec<(GeoPoint, f64)> = Vec::with_capacity(n);
        for (i, wp) in plan.waypoints.iter().enumerate() {
            let (cross, vert) = deviations[i];
            let dir = if i + 1 < n {
                wp.point.bearing_to(&plan.waypoints[i + 1].point)
            } else {
                plan.waypoints[i - 1].point.bearing_to(&wp.point)
            };
            // Positive cross-track displaces to the right of the track.
            let displaced = if cross.abs() > 0.0 {
                wp.point.destination(normalize_heading(dir + 90.0), cross)
            } else {
                wp.point
            };
            actual.push((displaced, (wp.altitude_m + vert).max(0.0)));
        }

        // Fly the displaced route.
        let dt = p.report_interval_s;
        let cruise = plan.cruise_speed_mps;
        let mut pos = actual[0].0;
        let mut alt = 0.0f64;
        let mut heading = pos.bearing_to(&actual[1].0);
        let mut speed = 0.0f64;
        let mut t = departure;
        let mut clean: Vec<PositionReport> = Vec::new();
        let record = |pos: GeoPoint, alt: f64, speed: f64, heading: f64, vr: f64, t: Timestamp, clean: &mut Vec<PositionReport>| {
            clean.push(PositionReport {
                entity,
                ts: t,
                point: pos,
                altitude_m: alt,
                speed_mps: speed,
                heading_deg: heading,
                vertical_rate_mps: vr,
            });
        };
        record(pos, alt, speed, heading, 0.0, t, &mut clean);

        // Takeoff roll: accelerate on the runway heading until rotation.
        let rotation_speed = (cruise * 0.35).max(70.0);
        while speed < rotation_speed {
            speed = (speed + 2.5 * dt).min(rotation_speed);
            pos = pos.destination(heading, speed * dt);
            t = t + (dt * 1000.0) as i64;
            record(pos, 0.0, speed, heading, 0.0, t, &mut clean);
        }

        // Remaining route length past each waypoint, for the glideslope.
        let mut remaining_after = vec![0.0f64; n];
        for i in (0..n - 1).rev() {
            remaining_after[i] = remaining_after[i + 1] + actual[i].0.haversine_distance(&actual[i + 1].0);
        }
        // En-route: fly waypoint to waypoint, managing altitude toward each
        // target, accelerating to cruise, then descending to land.
        for (i, (target, target_alt)) in actual.iter().enumerate().skip(1) {
            let is_last = i == n - 1;
            let mut guard = 0u32;
            loop {
                let dist = pos.haversine_distance(target);
                let arrive_threshold = (speed * dt).max(100.0);
                if dist <= arrive_threshold {
                    break;
                }
                // Heading control.
                let desired = pos.bearing_to(target);
                let diff = {
                    let mut d = (desired - heading) % 360.0;
                    if d > 180.0 {
                        d -= 360.0;
                    }
                    if d <= -180.0 {
                        d += 360.0;
                    }
                    d
                };
                let max_turn = p.max_turn_rate_dps * dt;
                heading = normalize_heading(heading + diff.clamp(-max_turn, max_turn));
                // Speed control: approach slowdown on the last leg.
                let target_speed = if is_last && dist < 25_000.0 {
                    (cruise * 0.45).max(75.0)
                } else {
                    cruise
                };
                speed += (target_speed - speed).clamp(-1.5 * dt, 1.5 * dt);
                // Altitude control: never above the continuous-descent
                // glideslope into the destination (≈3 degrees), so arrivals
                // reach the runway at ground level however short the last
                // leg is.
                let remaining = dist + remaining_after[i];
                let glideslope = remaining * 0.0524;
                let desired_alt = if is_last {
                    let total = actual[i - 1].0.haversine_distance(target).max(1.0);
                    (*target_alt + (actual[i - 1].1 - target_alt) * (dist / total)).max(0.0)
                } else {
                    *target_alt
                }
                .min(glideslope);
                let vr = if alt < desired_alt - 1.0 {
                    p.climb_rate_mps
                } else if alt > desired_alt + 1.0 {
                    -p.descent_rate_mps
                } else {
                    0.0
                };
                alt = (alt + vr * dt).max(0.0);
                pos = pos.destination(heading, speed * dt);
                t = t + (dt * 1000.0) as i64;
                record(pos, alt, speed, heading, vr, t, &mut clean);
                guard += 1;
                if guard > 1_000_000 {
                    break;
                }
            }
        }
        // Landing roll-out: decelerate to a stop at the destination.
        while speed > 1.0 {
            speed = (speed - 3.0 * dt).max(0.0);
            pos = pos.destination(heading, speed * dt);
            t = t + (dt * 1000.0) as i64;
            record(pos, 0.0, speed, heading, 0.0, t, &mut clean);
        }

        // Observation noise.
        let reports = clean
            .iter()
            .map(|r| {
                let mut obs = *r;
                if p.noise_sigma_m > 0.0 {
                    let d = rng.gaussian(0.0, p.noise_sigma_m).abs();
                    let b = rng.uniform(0.0, 360.0);
                    obs.point = obs.point.destination(b, d);
                }
                obs
            })
            .collect();

        GeneratedFlight {
            aircraft: entity,
            plan: plan.clone(),
            features: FlightFeatures {
                size_class,
                weekday,
                hour: ((departure.secs() / 3600) % 24) as u8,
                wp_severity: severities,
            },
            clean: Trajectory::from_reports(clean),
            reports,
            waypoint_deviations_m: deviations,
        }
    }

    /// Generates `n` flights on the same plan with staggered departures —
    /// the "Barcelona–Madrid" style corpus of the prediction experiments.
    pub fn fleet_on_route(
        &self,
        n: usize,
        plan: &FlightPlan,
        first_departure: Timestamp,
        headway_s: f64,
        seed: u64,
    ) -> Vec<GeneratedFlight> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let dep = first_departure + ((i as f64 * headway_s) * 1000.0) as i64;
                let weekday = ((dep.secs() / 86_400) % 7) as u8;
                let size_class = rng.index(3) as u8;
                let fseed = rng.fork(i as u64).int_range(0, i64::MAX) as u64;
                self.flight(i as u64, plan, size_class, weekday, dep, fseed)
            })
            .collect()
    }

    /// Generates arrival flights toward one airport where the active runway
    /// direction switches after `change_after` flights — the scenario behind
    /// the relevance-aware-clustering figure (Fig 11) and the point-matching
    /// outlier (Fig 12).
    pub fn arrivals_with_runway_change(
        &self,
        n: usize,
        airport: GeoPoint,
        change_after: usize,
        first_departure: Timestamp,
        headway_s: f64,
        seed: u64,
    ) -> Vec<GeneratedFlight> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                // Approach from a fix ~120 km out; the final approach course
                // flips 180 degrees after the runway change.
                let approach_course = if i < change_after { 90.0 } else { 270.0 };
                let fix_bearing = normalize_heading(approach_course + 180.0);
                let origin = airport
                    .destination(fix_bearing, 120_000.0)
                    .destination(rng.uniform(0.0, 360.0), rng.uniform(0.0, 15_000.0));
                let plan = FlightPlan::between(
                    i as u64,
                    origin,
                    airport,
                    2,
                    6_000.0,
                    180.0,
                    rng.fork(1000 + i as u64).int_range(0, i64::MAX) as u64,
                );
                let dep = first_departure + ((i as f64 * headway_s) * 1000.0) as i64;
                let weekday = ((dep.secs() / 86_400) % 7) as u8;
                let fseed = rng.fork(i as u64).int_range(0, i64::MAX) as u64;
                self.flight(i as u64, &plan, 1, weekday, dep, fseed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::BoundingBox;

    fn generator() -> FlightGenerator {
        let weather = WeatherField::new(BoundingBox::new(-10.0, 35.0, 5.0, 45.0), 7, 4, 10.0);
        FlightGenerator::new(
            FlightProfile {
                noise_sigma_m: 0.0,
                ..FlightProfile::default()
            },
            weather,
        )
    }

    fn bcn_mad_plan() -> FlightPlan {
        // Barcelona → Madrid, the route of the paper's Fig 5a evaluation.
        FlightPlan::between(
            1,
            GeoPoint::new(2.08, 41.30),
            GeoPoint::new(-3.56, 40.47),
            5,
            10_500.0,
            220.0,
            3,
        )
    }

    #[test]
    fn plan_endpoints_are_on_the_ground() {
        let plan = bcn_mad_plan();
        assert_eq!(plan.waypoints.first().unwrap().altitude_m, 0.0);
        assert_eq!(plan.waypoints.last().unwrap().altitude_m, 0.0);
        assert_eq!(plan.waypoints.len(), 7);
        assert!(plan.route_length_m() > 450_000.0);
    }

    #[test]
    fn flight_takes_off_cruises_and_lands() {
        let g = generator();
        let f = g.flight(1, &bcn_mad_plan(), 1, 2, Timestamp(0), 42);
        let reports = f.clean.reports();
        assert!(reports.len() > 100);
        // Starts and ends on the ground, stationary.
        assert_eq!(reports.first().unwrap().altitude_m, 0.0);
        assert!(reports.last().unwrap().speed_mps <= 1.0);
        assert_eq!(reports.last().unwrap().altitude_m, 0.0);
        // Reaches near cruise altitude.
        let max_alt = reports.iter().map(|r| r.altitude_m).fold(0.0f64, f64::max);
        assert!(max_alt > 9_000.0, "max altitude {max_alt}");
        // Lands near Madrid.
        let last = reports.last().unwrap();
        let dist = last.point.haversine_distance(&GeoPoint::new(-3.56, 40.47));
        assert!(dist < 15_000.0, "landed {dist} m from destination");
    }

    #[test]
    fn flight_is_deterministic() {
        let g = generator();
        let a = g.flight(1, &bcn_mad_plan(), 1, 2, Timestamp(0), 42);
        let b = g.flight(1, &bcn_mad_plan(), 1, 2, Timestamp(0), 42);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.waypoint_deviations_m, b.waypoint_deviations_m);
    }

    #[test]
    fn deviations_zero_at_airports_bounded_en_route() {
        let g = generator();
        let f = g.flight(1, &bcn_mad_plan(), 2, 2, Timestamp(0), 9);
        assert_eq!(f.waypoint_deviations_m.first().unwrap(), &(0.0, 0.0));
        assert_eq!(f.waypoint_deviations_m.last().unwrap(), &(0.0, 0.0));
        for &(cross, vert) in &f.waypoint_deviations_m[1..f.waypoint_deviations_m.len() - 1] {
            assert!(cross.abs() < 3_000.0, "cross {cross}");
            assert!(vert.abs() < 600.0, "vert {vert}");
        }
    }

    #[test]
    fn deviations_depend_systematically_on_weather() {
        // Two flights with identical everything but departure time (hence
        // weather) must differ; two with identical departure share the
        // systematic part (differ only by noise).
        let g = generator();
        let plan = bcn_mad_plan();
        let a = g.flight(1, &plan, 1, 2, Timestamp(0), 100);
        let b = g.flight(2, &plan, 1, 2, Timestamp(0), 200);
        let c = g.flight(3, &plan, 1, 2, Timestamp::from_secs(36_000), 300);
        let mid = plan.waypoints.len() / 2;
        let noise_scale = (a.waypoint_deviations_m[mid].0 - b.waypoint_deviations_m[mid].0).abs();
        assert!(noise_scale < 400.0, "same conditions differ only by noise: {noise_scale}");
        // Features record the change in weather.
        assert_ne!(a.features.wp_severity, c.features.wp_severity);
    }

    #[test]
    fn size_class_scales_deviation() {
        // With the noise forced to zero, light aircraft deviate exactly
        // size_factor(0)/size_factor(2) = 2x more than heavies.
        let weather = WeatherField::new(BoundingBox::new(-10.0, 35.0, 5.0, 45.0), 7, 4, 10.0);
        let g = FlightGenerator::new(
            FlightProfile {
                noise_sigma_m: 0.0,
                deviation_noise_m: 0.0,
                ..FlightProfile::default()
            },
            weather,
        );
        let plan = bcn_mad_plan();
        let light = g.flight(1, &plan, 0, 2, Timestamp(0), 5);
        let heavy = g.flight(2, &plan, 2, 2, Timestamp(0), 6);
        let mid = plan.waypoints.len() / 2;
        let ratio = light.waypoint_deviations_m[mid].0 / heavy.waypoint_deviations_m[mid].0;
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn fleet_on_route_varies_sizes_and_departures() {
        let g = generator();
        let plan = bcn_mad_plan();
        let fleet = g.fleet_on_route(6, &plan, Timestamp(0), 1800.0, 77);
        assert_eq!(fleet.len(), 6);
        let sizes: std::collections::HashSet<_> = fleet.iter().map(|f| f.features.size_class).collect();
        assert!(sizes.len() >= 2);
        assert!(fleet[1].clean.reports()[0].ts > fleet[0].clean.reports()[0].ts);
    }

    #[test]
    fn runway_change_flips_final_heading() {
        let g = generator();
        let airport = GeoPoint::new(-3.56, 40.47);
        let arrivals = g.arrivals_with_runway_change(4, airport, 2, Timestamp(0), 600.0, 13);
        let final_heading = |f: &GeneratedFlight| {
            let r = f.clean.reports();
            r[r.len().saturating_sub(10)].heading_deg
        };
        let early = final_heading(&arrivals[0]);
        let late = final_heading(&arrivals[3]);
        let diff = datacron_geo::point::heading_difference(early, late);
        assert!(diff > 120.0, "expected opposite approaches, diff {diff}");
    }
}

#![warn(missing_docs)]

//! An offline stand-in for the subset of the [`proptest`] API this
//! workspace uses.
//!
//! The container that verifies this repository has no access to crates.io,
//! so the real `proptest` cannot be fetched. This crate re-implements the
//! pieces the property tests rely on — `proptest!`, `Strategy::prop_map`,
//! `BoxedStrategy`, `prop_oneof!`, `proptest::collection::vec`, range and
//! tuple strategies, `prop_assert*!` and `prop_assume!` — on top of a
//! deterministic splitmix64/xoshiro-style generator.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its seed and case index so
//!   it can be replayed, but is not minimised;
//! * **deterministic by default** — the RNG is seeded from the test name,
//!   so failures reproduce across runs; set `PROPTEST_SEED=<u64>` to
//!   explore a different stream;
//! * only the strategy combinators listed above exist.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    /// Generates `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// item expands to a `#[test]` that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);) => {};
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while let Some(mut rng) = runner.next_case() {
                let strat = ($($strat,)+);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strat, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(outcome);
            }
        }
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Builds a strategy choosing uniformly between the given strategies
/// (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (does not count as a failure) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

//! Test execution: configuration, the per-test runner, and the RNG.

/// Runner configuration. Only the fields the workspace uses exist.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 128,
            max_global_rejects: 4096,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A deterministic 64-bit generator (splitmix64-seeded xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }
}

/// Drives one property test: hands out per-case RNGs and aggregates
/// outcomes.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
    case: u32,
    passed: u32,
    rejects: u32,
}

impl TestRunner {
    /// Creates a runner for the named test. The base seed derives from the
    /// test name unless `PROPTEST_SEED` overrides it.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            });
        Self {
            config,
            name,
            seed,
            case: 0,
            passed: 0,
            rejects: 0,
        }
    }

    /// The RNG for the next case, or `None` when the run is complete.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.passed >= self.config.cases {
            return None;
        }
        let mut s = self.seed ^ (self.case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        self.case += 1;
        Some(TestRng::new(splitmix64(&mut s)))
    }

    /// Records the outcome of the case handed out by [`next_case`].
    ///
    /// # Panics
    /// Panics (failing the surrounding `#[test]`) when the case failed, or
    /// when too many consecutive cases were rejected.
    ///
    /// [`next_case`]: Self::next_case
    pub fn finish_case(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => {
                self.passed += 1;
                self.rejects = 0;
            }
            Err(TestCaseError::Reject(_)) => {
                self.rejects += 1;
                assert!(
                    self.rejects < self.config.max_global_rejects,
                    "{}: too many prop_assume! rejections ({}); loosen the strategy",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{} failed at case {} (base seed {:#x}; rerun with PROPTEST_SEED={}): {}",
                    self.name,
                    self.case - 1,
                    self.seed,
                    self.seed,
                    msg
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_stays_in_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn runner_counts_passes_not_rejects() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(3), "demo");
        let mut handed = 0;
        while runner.next_case().is_some() {
            handed += 1;
            let outcome = if handed == 1 {
                Err(TestCaseError::reject("first case skipped"))
            } else {
                Ok(())
            };
            runner.finish_case(outcome);
        }
        assert_eq!(handed, 4, "three passes plus one reject");
    }
}

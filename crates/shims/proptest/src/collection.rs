//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact length, a `Range`, or a
/// `RangeInclusive` (mirroring proptest's `SizeRange` conversions).
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { start: n, end: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self { start: r.start, end: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        Self { start: *r.start(), end: *r.end() + 1 }
    }
}

/// Generates `Vec`s whose length is uniform in `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.start + rng.index(self.len.end - self.len.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let strat = vec(0u8..4, 2..6);
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn vec_with_exact_length() {
        let strat = vec(0u8..9, 3);
        let mut rng = TestRng::new(5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 3);
        }
    }
}

//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Generates random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Chooses uniformly between strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Always produces a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let i = (5i64..9).generate(&mut rng);
            assert!((5..9).contains(&i));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (0u8..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn map_and_boxed_compose() {
        let strat = (0u32..10).prop_map(|x| x * 2).boxed();
        let cloned = strat.clone();
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) % 2 == 0);
            assert!(cloned.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn union_uses_every_option() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::new(9);
        let picks: Vec<u8> = (0..64).map(|_| u.generate(&mut rng)).collect();
        assert!(picks.contains(&1) && picks.contains(&2));
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::new(4);
        let (a, b, c) = (0u8..2, 10i64..20, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 2 && (10..20).contains(&b) && (0.0..1.0).contains(&c));
    }
}

//! Point-matching edge cases: degenerate trajectories, boundary
//! tolerances, and the histogram/outlier analytics on pathological report
//! sets.

use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp, Trajectory};
use datacron_va::matching::{match_trajectories, outliers, proportion_histogram, MatchReport};

fn track_at(offset_lat: f64, n: usize) -> Trajectory {
    let reports: Vec<PositionReport> = (0..n)
        .map(|i| {
            PositionReport::basic(
                EntityId::aircraft(1),
                Timestamp::from_secs(i as i64 * 10),
                GeoPoint::new(0.01 * i as f64, 40.0 + offset_lat),
            )
        })
        .collect();
    Trajectory::from_reports(reports)
}

#[test]
fn single_point_trajectories_match() {
    let one = track_at(0.0, 1);
    let r = match_trajectories(&one, &one, 1.0).unwrap();
    assert_eq!(r.actual_points, 1);
    assert_eq!(r.matched_points, 1);
    assert_eq!(r.proportion(), 1.0);
    assert!(r.mean_distance_m < 1e-9);
}

#[test]
fn identical_tracks_match_within_interpolation_noise() {
    // Time-aligned interpolation reconstructs each sample through float
    // arithmetic, so identical trajectories land within nanometres of each
    // other — not bitwise zero. A sub-millimetre tolerance must match all.
    let t = track_at(0.0, 10);
    let r = match_trajectories(&t, &t, 1e-3).unwrap();
    assert_eq!(r.matched_points, r.actual_points);
    assert!(r.max_distance_m < 1e-3, "{}", r.max_distance_m);
}

#[test]
fn tolerance_boundary_is_inclusive() {
    let actual = track_at(0.0, 5);
    let predicted = track_at(0.001, 5); // ~111 m north everywhere
    let r = match_trajectories(&actual, &predicted, 1.0).unwrap();
    assert_eq!(r.matched_points, 0);
    // A tolerance at (just above) the actual offset matches every point.
    let r = match_trajectories(&actual, &predicted, r.max_distance_m).unwrap();
    assert_eq!(r.matched_points, r.actual_points, "le-boundary must include max_distance_m");
}

#[test]
fn prediction_shorter_than_actual_extrapolates_not_panics() {
    // The predicted track ends at t=90 but the actual continues to t=190:
    // position_at clamps/extrapolates, and matching must stay finite.
    let actual = track_at(0.0, 20);
    let predicted = track_at(0.0, 10);
    let r = match_trajectories(&actual, &predicted, 100.0).unwrap();
    assert_eq!(r.actual_points, 20);
    assert!(r.mean_distance_m.is_finite());
    assert!(r.max_distance_m.is_finite());
    assert!(r.matched_points >= 10, "the overlapping prefix matches");
}

#[test]
fn proportion_of_empty_report_is_zero_not_nan() {
    let r = MatchReport {
        actual_points: 0,
        matched_points: 0,
        mean_distance_m: 0.0,
        max_distance_m: 0.0,
    };
    assert_eq!(r.proportion(), 0.0);
}

#[test]
fn histogram_with_zero_bins_is_clamped_to_one() {
    let t = track_at(0.0, 5);
    let r = match_trajectories(&t, &t, 1.0).unwrap();
    let hist = proportion_histogram(&[r, r], 0);
    assert_eq!(hist, vec![2], "0 bins clamps to a single bucket");
}

#[test]
fn histogram_proportion_one_lands_in_top_bucket() {
    // proportion == 1.0 maps to index `bins` before clamping; it must land
    // in the last bucket, not out of range.
    let t = track_at(0.0, 5);
    let perfect = match_trajectories(&t, &t, 1.0).unwrap();
    for bins in [1, 2, 7, 10] {
        let hist = proportion_histogram(&[perfect], bins);
        assert_eq!(hist[bins - 1], 1, "{bins} bins");
        assert_eq!(hist.iter().sum::<usize>(), 1);
    }
}

#[test]
fn outliers_on_empty_and_boundary_thresholds() {
    assert!(outliers(&[], 0.5).is_empty());
    let t = track_at(0.0, 5);
    let perfect = match_trajectories(&t, &t, 1.0).unwrap();
    let awful = match_trajectories(&t, &track_at(0.5, 5), 1.0).unwrap();
    let reports = [perfect, awful, perfect];
    // Strict `<`: a proportion exactly at the threshold is not an outlier.
    assert_eq!(outliers(&reports, 1.0), vec![1]);
    assert_eq!(outliers(&reports, 0.0), Vec::<usize>::new());
    // A threshold above 1.0 flags everything.
    assert_eq!(outliers(&reports, 1.1), vec![0, 1, 2]);
}

#[test]
fn mismatched_timestamps_use_interpolation() {
    // Actual samples fall between predicted samples: the predicted
    // position is linearly interpolated, so a constant-velocity pair still
    // matches tightly.
    let predicted = track_at(0.0, 10);
    let actual_reports: Vec<PositionReport> = (0..9)
        .map(|i| {
            PositionReport::basic(
                EntityId::aircraft(1),
                Timestamp::from_secs(i * 10 + 5),
                GeoPoint::new(0.01 * (i as f64 + 0.5), 40.0),
            )
        })
        .collect();
    let actual = Trajectory::from_reports(actual_reports);
    let r = match_trajectories(&actual, &predicted, 50.0).unwrap();
    assert_eq!(
        r.matched_points, r.actual_points,
        "interpolated positions match within 50 m: {r:?}"
    );
}

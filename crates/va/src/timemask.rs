//! Time masks: temporal filters of disjoint intervals (Figure 10).
//!
//! "The concept of time mask … is a type of temporal filter suitable for
//! selection of multiple disjoint time intervals in which some query
//! conditions on arbitrary attributes hold. Such a filter can be applied to
//! time-referenced objects, such as events and trajectories, for selecting
//! those objects or segments of trajectories that fit in one of the
//! selected time intervals."

use datacron_geo::{PositionReport, TimeInterval, Timestamp, Trajectory};

/// A set of disjoint, ordered time intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeMask {
    intervals: Vec<TimeInterval>,
}

impl TimeMask {
    /// Builds a mask directly from intervals (merged and ordered).
    pub fn from_intervals(mut intervals: Vec<TimeInterval>) -> Self {
        intervals.sort_by_key(|iv| iv.start);
        Self {
            intervals: TimeInterval::merge_sorted(&intervals),
        }
    }

    /// Builds a mask from a binned query: the timeline `[t0, t0 + n·bin)`
    /// is divided into `values.len()` bins of `bin_millis`; bins where
    /// `condition(value)` holds are selected (and adjacent selected bins
    /// merge). This is the "query selects the intervals containing at least
    /// one event" workflow of Figure 10.
    pub fn from_binned_query(
        t0: Timestamp,
        bin_millis: i64,
        values: &[f64],
        condition: impl Fn(f64) -> bool,
    ) -> Self {
        let intervals: Vec<TimeInterval> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| condition(v))
            .map(|(i, _)| {
                TimeInterval::new(t0 + bin_millis * i as i64, t0 + bin_millis * (i as i64 + 1))
            })
            .collect();
        Self::from_intervals(intervals)
    }

    /// The mask's intervals.
    pub fn intervals(&self) -> &[TimeInterval] {
        &self.intervals
    }

    /// Total masked duration, milliseconds.
    pub fn duration_millis(&self) -> i64 {
        self.intervals.iter().map(TimeInterval::duration_millis).sum()
    }

    /// Membership test.
    pub fn contains(&self, t: Timestamp) -> bool {
        // Intervals are sorted: binary search by start.
        let idx = self.intervals.partition_point(|iv| iv.start <= t);
        idx > 0 && self.intervals[idx - 1].contains(t)
    }

    /// The complement mask over a covering interval.
    pub fn complement(&self, over: TimeInterval) -> TimeMask {
        let mut out = Vec::new();
        let mut cursor = over.start;
        for iv in &self.intervals {
            if iv.start > cursor {
                out.push(TimeInterval::new(cursor, iv.start.min(over.end)));
            }
            cursor = cursor.max(iv.end);
            if cursor >= over.end {
                break;
            }
        }
        if cursor < over.end {
            out.push(TimeInterval::new(cursor, over.end));
        }
        TimeMask { intervals: out }
    }

    /// Selects the reports of a trajectory falling inside the mask — the
    /// "segments of trajectories that fit in one of the selected time
    /// intervals".
    pub fn filter_trajectory(&self, t: &Trajectory) -> Vec<PositionReport> {
        t.reports().iter().filter(|r| self.contains(r.ts)).copied().collect()
    }

    /// Selects timestamped items inside the mask.
    pub fn filter_items<'a, T>(&self, items: &'a [(Timestamp, T)]) -> Vec<&'a (Timestamp, T)> {
        items.iter().filter(|(ts, _)| self.contains(*ts)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(Timestamp(a), Timestamp(b))
    }

    #[test]
    fn from_intervals_merges_and_orders() {
        let m = TimeMask::from_intervals(vec![iv(50, 60), iv(0, 10), iv(8, 20)]);
        assert_eq!(m.intervals(), &[iv(0, 20), iv(50, 60)]);
        assert_eq!(m.duration_millis(), 30);
    }

    #[test]
    fn binned_query_selects_and_merges_adjacent() {
        // Bins of 10 ms; counts [0, 2, 3, 0, 1].
        let m = TimeMask::from_binned_query(Timestamp(0), 10, &[0.0, 2.0, 3.0, 0.0, 1.0], |v| v >= 1.0);
        assert_eq!(m.intervals(), &[iv(10, 30), iv(40, 50)]);
    }

    #[test]
    fn contains_respects_half_open_bounds() {
        let m = TimeMask::from_intervals(vec![iv(10, 20)]);
        assert!(m.contains(Timestamp(10)));
        assert!(m.contains(Timestamp(19)));
        assert!(!m.contains(Timestamp(20)));
        assert!(!m.contains(Timestamp(9)));
    }

    #[test]
    fn complement_covers_the_rest() {
        let m = TimeMask::from_intervals(vec![iv(10, 20), iv(40, 50)]);
        let c = m.complement(iv(0, 60));
        assert_eq!(c.intervals(), &[iv(0, 10), iv(20, 40), iv(50, 60)]);
        // Union durations add up.
        assert_eq!(m.duration_millis() + c.duration_millis(), 60);
        // Disjointness.
        for t in 0..60 {
            assert_ne!(m.contains(Timestamp(t)), c.contains(Timestamp(t)), "t={t}");
        }
    }

    #[test]
    fn complement_of_empty_mask_is_everything() {
        let m = TimeMask::from_intervals(vec![]);
        let c = m.complement(iv(5, 15));
        assert_eq!(c.intervals(), &[iv(5, 15)]);
    }

    #[test]
    fn filter_trajectory_selects_segments() {
        let reports: Vec<PositionReport> = (0..10)
            .map(|i| {
                PositionReport::basic(EntityId::vessel(1), Timestamp(i * 10), GeoPoint::new(i as f64, 0.0))
            })
            .collect();
        let t = Trajectory::from_reports(reports);
        let m = TimeMask::from_intervals(vec![iv(20, 50)]);
        let selected = m.filter_trajectory(&t);
        let times: Vec<i64> = selected.iter().map(|r| r.ts.millis()).collect();
        assert_eq!(times, vec![20, 30, 40]);
    }

    #[test]
    fn filter_items_works_on_events() {
        let events: Vec<(Timestamp, &str)> = vec![
            (Timestamp(5), "a"),
            (Timestamp(15), "b"),
            (Timestamp(25), "c"),
        ];
        let m = TimeMask::from_intervals(vec![iv(10, 20)]);
        let selected = m.filter_items(&events);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].1, "b");
    }
}

#![warn(missing_docs)]

//! # datacron-va
//!
//! The computational layer of datAcron's visual analytics (§7 of the
//! paper). Visual analytics is "not a single, specific analysis technique
//! but a methodological approach": interactive filters, summaries and
//! linked views over movement data. This crate implements the analytical
//! engines behind the paper's VA workflows; rendering is text/CSV (the
//! experiment binaries print the same summaries the figures visualise).
//!
//! * [`timemask`] — **time masks** (Andrienko et al., Visual Informatics
//!   2017; Figure 10): temporal filters made of the disjoint intervals in
//!   which a query condition over binned attribute series holds, applied to
//!   select trajectory segments and events, with linked density summaries
//!   inside vs. outside the mask.
//! * [`relevance`] — **relevance-aware trajectory clustering** (Andrienko
//!   et al., IEEE VAST 2017; Figure 11): relevance flags attached to
//!   trajectory elements by filters, a distance that ignores irrelevant
//!   elements, clustering of the relevant parts, and the per-cluster time
//!   histogram that exposes the runway change.
//! * [`matching`] — **point matching** of predicted vs. actual trajectories
//!   (Figure 12): per-point matching within a tolerance, the distribution
//!   of matched proportions, and outlier identification.
//! * [`quality`] — **movement-data quality** (Andrienko et al., J. LBS
//!   2016): a typology of quality problems (gaps, duplicates, out-of-order
//!   records, position outliers, irregular sampling) measured per dataset.
//! * [`render`] — ASCII/CSV rendering of histograms and density maps for
//!   the situation displays.

pub mod matching;
pub mod quality;
pub mod relevance;
pub mod render;
pub mod timemask;

pub use matching::{match_trajectories, MatchReport};
pub use quality::{assess_quality, QualityReport};
pub use relevance::{cluster_relevant_parts, RelevanceClustering};
pub use render::{ascii_histogram, DensityMap};
pub use timemask::TimeMask;

//! Point matching of predicted vs. actual trajectories (Figure 12).
//!
//! "A novel technique is the point matching method … enabling the analyst
//! to view and explore the results of point matching", including "the
//! statistical distribution of the proportions of the matched points" and
//! detail views of significantly mismatched pairs (the runway-change
//! outlier of Figure 12).

use datacron_geo::Trajectory;

/// The matching result of one predicted/actual pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchReport {
    /// Actual points examined.
    pub actual_points: usize,
    /// Actual points whose time-aligned predicted position lies within the
    /// tolerance.
    pub matched_points: usize,
    /// Mean distance between time-aligned pairs, metres.
    pub mean_distance_m: f64,
    /// Maximum distance, metres.
    pub max_distance_m: f64,
}

impl MatchReport {
    /// Proportion of matched points in `[0, 1]`.
    pub fn proportion(&self) -> f64 {
        if self.actual_points == 0 {
            0.0
        } else {
            self.matched_points as f64 / self.actual_points as f64
        }
    }
}

/// Matches an actual trajectory against a prediction: every actual report
/// is compared with the predicted position at the same timestamp
/// (interpolated); a point matches when within `tolerance_m` metres.
/// Returns `None` when either trajectory is empty.
pub fn match_trajectories(actual: &Trajectory, predicted: &Trajectory, tolerance_m: f64) -> Option<MatchReport> {
    if actual.is_empty() || predicted.is_empty() {
        return None;
    }
    let mut matched = 0usize;
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for r in actual.reports() {
        let p = predicted.position_at(r.ts).expect("predicted non-empty");
        let d = p.haversine_distance(&r.point);
        sum += d;
        max = max.max(d);
        if d <= tolerance_m {
            matched += 1;
        }
    }
    Some(MatchReport {
        actual_points: actual.len(),
        matched_points: matched,
        mean_distance_m: sum / actual.len() as f64,
        max_distance_m: max,
    })
}

/// Histogram of matched proportions across many pairs: `bins` equal-width
/// buckets over `[0, 1]`, returning the count per bucket.
pub fn proportion_histogram(reports: &[MatchReport], bins: usize) -> Vec<usize> {
    let bins = bins.max(1);
    let mut hist = vec![0usize; bins];
    for r in reports {
        let b = ((r.proportion() * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    hist
}

/// Indices of pairs whose matched proportion is below `threshold` — the
/// outliers an analyst drills into (Figure 12's mismatched pair).
pub fn outliers(reports: &[MatchReport], threshold: f64) -> Vec<usize> {
    reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.proportion() < threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint, PositionReport, Timestamp};

    fn track(offset_lat: f64) -> Trajectory {
        let reports: Vec<PositionReport> = (0..20)
            .map(|i| {
                PositionReport::basic(
                    EntityId::aircraft(1),
                    Timestamp::from_secs(i * 10),
                    GeoPoint::new(0.01 * i as f64, 40.0 + offset_lat),
                )
            })
            .collect();
        Trajectory::from_reports(reports)
    }

    #[test]
    fn perfect_prediction_matches_fully() {
        let t = track(0.0);
        let r = match_trajectories(&t, &t, 100.0).unwrap();
        assert_eq!(r.proportion(), 1.0);
        assert!(r.mean_distance_m < 1e-6);
    }

    #[test]
    fn offset_prediction_mismatches() {
        let actual = track(0.0);
        let predicted = track(0.05); // ~5.5 km north
        let r = match_trajectories(&actual, &predicted, 1_000.0).unwrap();
        assert_eq!(r.proportion(), 0.0);
        assert!((r.mean_distance_m - 5_560.0).abs() < 100.0, "{}", r.mean_distance_m);
        assert!(r.max_distance_m >= r.mean_distance_m);
    }

    #[test]
    fn partial_match_counts_correctly() {
        // Prediction correct for the first half, then veers off.
        let actual = track(0.0);
        let mut reports = actual.reports().to_vec();
        for (i, r) in reports.iter_mut().enumerate() {
            if i >= 10 {
                r.point = r.point.destination(0.0, 10_000.0);
            }
        }
        let predicted = Trajectory::from_reports(reports);
        let r = match_trajectories(&actual, &predicted, 500.0).unwrap();
        assert_eq!(r.matched_points, 10);
        assert!((r.proportion() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert!(match_trajectories(&Trajectory::new(), &track(0.0), 100.0).is_none());
        assert!(match_trajectories(&track(0.0), &Trajectory::new(), 100.0).is_none());
    }

    #[test]
    fn histogram_and_outliers() {
        let good = match_trajectories(&track(0.0), &track(0.0), 100.0).unwrap();
        let bad = match_trajectories(&track(0.0), &track(0.05), 100.0).unwrap();
        let reports = vec![good, good, bad];
        let hist = proportion_histogram(&reports, 10);
        assert_eq!(hist[9], 2, "two perfect pairs in the top bucket");
        assert_eq!(hist[0], 1, "one total mismatch in the bottom bucket");
        assert_eq!(outliers(&reports, 0.5), vec![2]);
        assert!(outliers(&reports, 0.0).is_empty());
    }
}

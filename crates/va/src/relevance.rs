//! Relevance-aware trajectory clustering (Figure 11).
//!
//! "An analytical workflow that uses interactive filtering tools to attach
//! relevance flags to elements of trajectories; subsequent clustering uses
//! a distance function that ignores irrelevant elements."
//!
//! The programmatic equivalent of the interactive filter is a predicate
//! over position reports. Clustering of the relevant parts reuses the
//! OPTICS machinery of `datacron-predict` with an ERP distance over the
//! relevant points only.

use datacron_geo::{LocalFrame, PositionReport, Trajectory};
use datacron_predict::cluster::{extract_clusters, optics, OpticsParams};
use datacron_predict::distance::{enriched_distance, EnrichedPoint};

/// The result of a relevance-aware clustering run.
#[derive(Debug, Clone)]
pub struct RelevanceClustering {
    /// Clusters as lists of trajectory indices.
    pub clusters: Vec<Vec<usize>>,
    /// Trajectories whose relevant part was empty or that stayed noise.
    pub unclustered: Vec<usize>,
    /// Relevant points per trajectory (after filtering and resampling).
    pub relevant_counts: Vec<usize>,
}

impl RelevanceClustering {
    /// The cluster id of a trajectory, if clustered.
    pub fn cluster_of(&self, idx: usize) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&idx))
    }
}

/// Clusters trajectories by the similarity of their *relevant parts*.
///
/// `relevance` flags each report; flagged sub-sequences are resampled to
/// `samples` points (so long and short relevant parts compare fairly) and
/// clustered with OPTICS under the ERP distance. The local frame is shared
/// across trajectories (anchored at the first relevant point seen), so the
/// distance reflects absolute route geometry, as route-shape clustering
/// requires.
pub fn cluster_relevant_parts(
    trajectories: &[Trajectory],
    relevance: impl Fn(&PositionReport) -> bool,
    samples: usize,
    params: OpticsParams,
    eps_cluster: f64,
) -> RelevanceClustering {
    // Extract relevant parts.
    let parts: Vec<Trajectory> = trajectories
        .iter()
        .map(|t| Trajectory::from_reports(t.reports().iter().filter(|r| relevance(r)).copied().collect()))
        .collect();
    let relevant_counts: Vec<usize> = parts.iter().map(Trajectory::len).collect();

    // Shared frame anchored at the first relevant point of the corpus.
    let Some(anchor) = parts.iter().find_map(|p| p.reports().first().map(|r| r.point)) else {
        return RelevanceClustering {
            clusters: Vec::new(),
            unclustered: (0..trajectories.len()).collect(),
            relevant_counts,
        };
    };
    let frame = LocalFrame::new(anchor);

    // Resample each non-empty part into an enriched sequence.
    let mut usable: Vec<usize> = Vec::new();
    let mut sequences: Vec<Vec<EnrichedPoint>> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        if part.len() < 2 {
            continue;
        }
        let seq: Vec<EnrichedPoint> = part
            .resample(samples)
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                let (x, y) = frame.project(&r.point);
                EnrichedPoint::bare(x, y, k as f64)
            })
            .collect();
        usable.push(i);
        sequences.push(seq);
    }

    if usable.is_empty() {
        return RelevanceClustering {
            clusters: Vec::new(),
            unclustered: (0..trajectories.len()).collect(),
            relevant_counts,
        };
    }

    let dist = |a: usize, b: usize| enriched_distance(&sequences[a], &sequences[b], 0.0);
    let order = optics(usable.len(), dist, params);
    let (raw_clusters, raw_noise) = extract_clusters(&order, eps_cluster);

    let clusters: Vec<Vec<usize>> = raw_clusters
        .into_iter()
        .map(|c| c.into_iter().map(|k| usable[k]).collect())
        .collect();
    let mut unclustered: Vec<usize> = raw_noise.into_iter().map(|k| usable[k]).collect();
    for (i, part) in parts.iter().enumerate() {
        if part.len() < 2 {
            unclustered.push(i);
        }
    }
    unclustered.sort_unstable();

    RelevanceClustering {
        clusters,
        unclustered,
        relevant_counts,
    }
}

/// Builds the Figure-11-style histogram: per time bin (width `bin_millis`
/// from `t0`), the count of trajectories (by their last report) per
/// cluster. Rows are `(bin, cluster) -> count`, indexable as
/// `result[bin][cluster]`; trajectories outside any cluster are ignored.
pub fn arrivals_histogram(
    trajectories: &[Trajectory],
    clustering: &RelevanceClustering,
    t0: datacron_geo::Timestamp,
    bin_millis: i64,
    bins: usize,
) -> Vec<Vec<usize>> {
    let n_clusters = clustering.clusters.len();
    let mut hist = vec![vec![0usize; n_clusters]; bins];
    for (i, t) in trajectories.iter().enumerate() {
        let Some(cluster) = clustering.cluster_of(i) else {
            continue;
        };
        let Some(last) = t.reports().last() else {
            continue;
        };
        let bin = last.ts.delta_millis(&t0) / bin_millis;
        if bin >= 0 && (bin as usize) < bins {
            hist[bin as usize][cluster] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint, Timestamp};

    /// Builds a trajectory approaching (0, 0) from due east or due west,
    /// with an irrelevant wiggly prefix far away.
    fn arrival(id: u64, from_east: bool, t0_s: i64) -> Trajectory {
        let mut reports = Vec::new();
        // Irrelevant prefix: a jittered area ~2 degrees out.
        for i in 0..20i64 {
            let lon = if from_east { 2.0 } else { -2.0 };
            let jitter = if (i + id as i64) % 2 == 0 { 0.3 } else { -0.3 };
            reports.push(PositionReport::basic(
                EntityId::aircraft(id),
                Timestamp::from_secs(t0_s + i),
                GeoPoint::new(lon + jitter, 0.5 + jitter),
            ));
        }
        // Relevant final approach: within 1 degree of the airport.
        for i in 0..20i64 {
            let f = 1.0 - i as f64 / 20.0;
            let lon = if from_east { 0.9 * f } else { -0.9 * f };
            reports.push(PositionReport::basic(
                EntityId::aircraft(id),
                Timestamp::from_secs(t0_s + 20 + i),
                GeoPoint::new(lon, 0.0),
            ));
        }
        Trajectory::from_reports(reports)
    }

    fn near_airport(r: &PositionReport) -> bool {
        r.point.haversine_distance(&GeoPoint::new(0.0, 0.0)) < 120_000.0
    }

    #[test]
    fn clusters_by_approach_direction_ignoring_prefix() {
        let mut trajectories = Vec::new();
        for i in 0..6 {
            trajectories.push(arrival(i, true, i as i64 * 100));
        }
        for i in 6..12 {
            trajectories.push(arrival(i, false, i as i64 * 100));
        }
        let result = cluster_relevant_parts(
            &trajectories,
            near_airport,
            16,
            OpticsParams { eps: 30_000.0, min_pts: 3 },
            25_000.0,
        );
        assert_eq!(result.clusters.len(), 2, "east vs west approaches: {:?}", result.clusters);
        // Same-direction arrivals share a cluster.
        let c0 = result.cluster_of(0).unwrap();
        for i in 1..6 {
            assert_eq!(result.cluster_of(i), Some(c0), "arrival {i}");
        }
        let c6 = result.cluster_of(6).unwrap();
        assert_ne!(c0, c6);
    }

    #[test]
    fn relevance_counts_reflect_filter() {
        let t = arrival(1, true, 0);
        let result = cluster_relevant_parts(
            std::slice::from_ref(&t),
            near_airport,
            16,
            OpticsParams { eps: 30_000.0, min_pts: 2 },
            25_000.0,
        );
        assert_eq!(result.relevant_counts[0], 20, "only the approach is relevant");
    }

    #[test]
    fn nothing_relevant_leaves_all_unclustered() {
        let t = arrival(1, true, 0);
        let result = cluster_relevant_parts(
            &[t],
            |_| false,
            16,
            OpticsParams { eps: 30_000.0, min_pts: 2 },
            25_000.0,
        );
        assert!(result.clusters.is_empty());
        assert_eq!(result.unclustered, vec![0]);
    }

    #[test]
    fn histogram_splits_by_cluster_and_bin() {
        let mut trajectories = Vec::new();
        for i in 0..4 {
            trajectories.push(arrival(i, true, i as i64 * 3600));
        }
        for i in 4..8 {
            trajectories.push(arrival(i, false, i as i64 * 3600));
        }
        let result = cluster_relevant_parts(
            &trajectories,
            near_airport,
            16,
            OpticsParams { eps: 30_000.0, min_pts: 2 },
            25_000.0,
        );
        assert_eq!(result.clusters.len(), 2);
        let hist = arrivals_histogram(&trajectories, &result, Timestamp(0), 3_600_000, 9);
        let total: usize = hist.iter().flatten().sum();
        assert_eq!(total, 8);
        // Early bins are all one cluster, late bins the other.
        let early: Vec<usize> = hist[0].clone();
        let late: Vec<usize> = hist[7].clone();
        assert_eq!(early.iter().sum::<usize>(), 1);
        assert_eq!(late.iter().sum::<usize>(), 1);
        assert_ne!(
            early.iter().position(|&c| c > 0),
            late.iter().position(|&c| c > 0),
            "runway change shows as a cluster switch over time"
        );
    }
}

//! Movement-data quality assessment.
//!
//! "We review the key properties of movement data and, on their basis,
//! create a typology of possible data quality problems and suggest
//! approaches to identifying these types of problems." The typology covers
//! the mover set, spatial, temporal, and collection properties; this module
//! measures the instances of each problem class in a report stream, reusing
//! the cleaning classifiers of `datacron-stream`.

use datacron_stream::cleaning::{CleaningConfig, CleaningOutcome, StreamCleaner};
use datacron_geo::{EntityId, PositionReport};
use std::collections::HashMap;

/// Per-dataset quality measurements, organised by the typology of the
/// movement-data-quality paper.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Total records examined.
    pub records: u64,
    /// Distinct movers.
    pub movers: usize,
    // --- spatial problems ---
    /// Invalid/implausible positions or kinematics.
    pub implausible: u64,
    /// Position outliers (impossible implied speed).
    pub outliers: u64,
    // --- temporal problems ---
    /// Duplicated timestamps per mover.
    pub duplicates: u64,
    /// Out-of-order records per mover.
    pub out_of_order: u64,
    /// Communication gaps (silences over the threshold).
    pub gaps: u64,
    // --- collection properties ---
    /// Mean inter-report interval, seconds.
    pub mean_interval_s: f64,
    /// Maximum inter-report interval, seconds.
    pub max_interval_s: f64,
}

impl QualityReport {
    /// Fraction of records with any problem.
    pub fn problem_ratio(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        (self.implausible + self.outliers + self.duplicates + self.out_of_order) as f64 / self.records as f64
    }
}

/// Assesses a (possibly multi-mover) report stream. `gap_threshold_s`
/// defines what counts as a communication gap.
pub fn assess_quality(
    reports: &[PositionReport],
    config: CleaningConfig,
    gap_threshold_s: f64,
) -> QualityReport {
    let mut cleaners: HashMap<EntityId, StreamCleaner> = HashMap::new();
    let mut last_ts: HashMap<EntityId, datacron_geo::Timestamp> = HashMap::new();
    let mut gaps = 0u64;
    let mut interval_sum = 0.0f64;
    let mut interval_count = 0u64;
    let mut max_interval = 0.0f64;
    for r in reports {
        if let Some(prev) = last_ts.get(&r.entity) {
            let dt = r.ts.delta_secs(prev);
            if dt > 0.0 {
                interval_sum += dt;
                interval_count += 1;
                max_interval = max_interval.max(dt);
                if dt > gap_threshold_s {
                    gaps += 1;
                }
            }
        }
        last_ts.insert(r.entity, r.ts);
        let cleaner = cleaners
            .entry(r.entity)
            .or_insert_with(|| StreamCleaner::new(config.clone()));
        // The outcome feeds the counters via the cleaner's stats.
        let _ = cleaner.check(r);
    }
    let mut report = QualityReport {
        records: reports.len() as u64,
        movers: cleaners.len(),
        implausible: 0,
        outliers: 0,
        duplicates: 0,
        out_of_order: 0,
        gaps,
        mean_interval_s: if interval_count > 0 {
            interval_sum / interval_count as f64
        } else {
            0.0
        },
        max_interval_s: max_interval,
    };
    for c in cleaners.values() {
        let s = c.stats();
        report.implausible += s.implausible;
        report.outliers += s.teleports;
        report.duplicates += s.duplicates;
        report.out_of_order += s.out_of_order;
    }
    report
}

/// Convenience: classify a single record against a fresh cleaner (used by
/// interactive inspection flows).
pub fn classify_single(r: &PositionReport, config: CleaningConfig) -> CleaningOutcome {
    StreamCleaner::new(config).check(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{GeoPoint, Timestamp};

    fn rep(id: u64, t_s: i64, lon: f64) -> PositionReport {
        PositionReport {
            speed_mps: 8.0,
            ..PositionReport::basic(EntityId::vessel(id), Timestamp::from_secs(t_s), GeoPoint::new(lon, 40.0))
        }
    }

    #[test]
    fn clean_stream_reports_no_problems() {
        let reports: Vec<PositionReport> = (0..50).map(|i| rep(1, i * 10, 0.001 * i as f64)).collect();
        let q = assess_quality(&reports, CleaningConfig::maritime(), 600.0);
        assert_eq!(q.records, 50);
        assert_eq!(q.movers, 1);
        assert_eq!(q.problem_ratio(), 0.0);
        assert!((q.mean_interval_s - 10.0).abs() < 1e-9);
        assert_eq!(q.gaps, 0);
    }

    #[test]
    fn problems_are_counted_by_class() {
        let mut reports: Vec<PositionReport> = (0..20).map(|i| rep(1, i * 10, 0.001 * i as f64)).collect();
        reports.push(rep(1, 190, 0.019)); // duplicate ts
        reports.push(rep(1, 50, 0.005)); // out of order
        reports.push(rep(1, 200, 3.0)); // teleport
        let mut bad = rep(1, 210, 0.02);
        bad.speed_mps = 500.0; // implausible
        reports.push(bad);
        let q = assess_quality(&reports, CleaningConfig::maritime(), 600.0);
        assert_eq!(q.duplicates, 1);
        assert_eq!(q.out_of_order, 1);
        assert_eq!(q.outliers, 1);
        assert_eq!(q.implausible, 1);
        assert!(q.problem_ratio() > 0.0);
    }

    #[test]
    fn gaps_are_detected_per_mover() {
        let mut reports: Vec<PositionReport> = (0..5).map(|i| rep(1, i * 10, 0.001 * i as f64)).collect();
        reports.push(rep(1, 2_000, 0.01));
        // Second mover reporting regularly across the same wall-clock span.
        for i in 0..10 {
            reports.push(rep(2, i * 100, 0.5 + 0.001 * i as f64));
        }
        let q = assess_quality(&reports, CleaningConfig::maritime(), 600.0);
        assert_eq!(q.movers, 2);
        assert_eq!(q.gaps, 1, "only mover 1 has a gap");
        assert!(q.max_interval_s >= 1_960.0);
    }

    #[test]
    fn multi_mover_streams_do_not_cross_contaminate() {
        // Interleaved movers far apart would look like teleports if state
        // were shared.
        let mut reports = Vec::new();
        for i in 0..20 {
            reports.push(rep(1, i * 10, 0.001 * i as f64));
            reports.push(rep(2, i * 10, 5.0 + 0.001 * i as f64));
        }
        let q = assess_quality(&reports, CleaningConfig::maritime(), 600.0);
        assert_eq!(q.outliers, 0);
        assert_eq!(q.problem_ratio(), 0.0);
    }

    #[test]
    fn generated_noisy_data_yields_expected_problem_classes() {
        use datacron_data::maritime::{VesselClass, VoyageConfig, VoyageGenerator};
        let cfg = VoyageConfig {
            outlier_probability: 0.01,
            duplicate_probability: 0.01,
            gap_probability: 0.005,
            ..VoyageConfig::default()
        };
        let v = VoyageGenerator::new(cfg).voyage(
            1,
            VesselClass::Cargo,
            GeoPoint::new(0.0, 40.0),
            GeoPoint::new(1.0, 40.5),
            Timestamp(0),
            9,
        );
        let q = assess_quality(&v.reports, CleaningConfig::maritime(), 300.0);
        assert!(q.outliers > 0);
        assert!(q.duplicates > 0);
        assert!(q.gaps as usize >= v.truth.gaps.len());
    }
}

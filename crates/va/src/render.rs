//! Text rendering of the VA summaries: histograms and density maps.
//!
//! The figures of §7 are visual; the experiment binaries print the same
//! content as ASCII so the comparisons (e.g. in-mask vs. out-of-mask
//! density, per-cluster arrival histograms) are inspectable in a terminal
//! and diffable in tests.

use datacron_geo::{BoundingBox, EquiGrid, GeoPoint};

/// Renders labelled counts as a horizontal ASCII bar chart, scaled to
/// `width` characters for the largest value.
pub fn ascii_histogram(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {bar} {value:.1}\n",
            bar = "#".repeat(bar_len)
        ));
    }
    out
}

/// A spatial point-density raster over an equi-grid.
#[derive(Debug, Clone)]
pub struct DensityMap {
    grid: EquiGrid,
    counts: Vec<u64>,
    total: u64,
}

impl DensityMap {
    /// An empty map of `rows × cols` cells over `extent`.
    pub fn new(extent: BoundingBox, rows: u32, cols: u32) -> Self {
        let grid = EquiGrid::new(extent, rows, cols);
        let n = grid.cell_count() as usize;
        Self {
            grid,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Adds a point (ignored outside the extent).
    pub fn add(&mut self, p: &GeoPoint) {
        if let Some(cell) = self.grid.cell_of(p) {
            self.counts[self.grid.flat_id(cell) as usize] += 1;
            self.total += 1;
        }
    }

    /// Adds many points.
    pub fn add_all<'a>(&mut self, points: impl IntoIterator<Item = &'a GeoPoint>) {
        for p in points {
            self.add(p);
        }
    }

    /// Points accumulated (inside the extent).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count of one cell by (row, col).
    pub fn count(&self, row: u32, col: u32) -> u64 {
        self.counts[(row * self.grid.cols() + col) as usize]
    }

    /// Density correlation with another map of identical geometry —
    /// the quantitative comparison behind "the density of the trajectories
    /// in the times of occurrence of events vs. the remaining times"
    /// (Figure 10). Returns `None` when geometries differ or either map is
    /// empty.
    pub fn correlation(&self, other: &DensityMap) -> Option<f64> {
        if self.grid != other.grid || self.total == 0 || other.total == 0 {
            return None;
        }
        let n = self.counts.len() as f64;
        let (ma, mb) = (self.total as f64 / n, other.total as f64 / n);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (a, b) in self.counts.iter().zip(&other.counts) {
            let da = *a as f64 - ma;
            let db = *b as f64 - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va == 0.0 || vb == 0.0 {
            return None;
        }
        Some(cov / (va.sqrt() * vb.sqrt()))
    }

    /// Renders the raster as ASCII shades (north at the top).
    pub fn render(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        let shades = [' ', '.', ':', '+', '*', '#'];
        let mut out = String::new();
        for row in (0..self.grid.rows()).rev() {
            for col in 0..self.grid.cols() {
                let c = self.count(row, col);
                let shade = if max == 0 {
                    0
                } else {
                    ((c as f64 / max as f64) * (shades.len() - 1) as f64).round() as usize
                };
                out.push(shades[shade]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_scales_to_width() {
        let rows = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0), ("c".to_string(), 0.0)];
        let h = ascii_histogram(&rows, 10);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(!lines[2].contains('#'));
    }

    #[test]
    fn histogram_empty_and_zero() {
        assert_eq!(ascii_histogram(&[], 10), "");
        let h = ascii_histogram(&[("x".to_string(), 0.0)], 10);
        assert!(h.contains("x"));
    }

    #[test]
    fn density_map_counts_points() {
        let mut m = DensityMap::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 2, 2);
        m.add(&GeoPoint::new(2.0, 2.0)); // SW
        m.add(&GeoPoint::new(7.0, 2.0)); // SE
        m.add(&GeoPoint::new(7.0, 8.0)); // NE
        m.add(&GeoPoint::new(7.1, 8.2)); // NE
        m.add(&GeoPoint::new(50.0, 50.0)); // outside
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert_eq!(m.count(1, 0), 0);
    }

    #[test]
    fn render_puts_north_on_top() {
        let mut m = DensityMap::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 2, 2);
        for _ in 0..5 {
            m.add(&GeoPoint::new(7.0, 8.0)); // NE corner
        }
        let s = m.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().nth(1), Some('#'), "NE is top-right");
        assert_eq!(lines[1].chars().next(), Some(' '));
    }

    #[test]
    fn correlation_of_identical_maps_is_one() {
        let mut a = DensityMap::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 4, 4);
        for i in 0..20 {
            a.add(&GeoPoint::new((i % 10) as f64, (i % 7) as f64));
        }
        let b = a.clone();
        assert!((a.correlation(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_disjoint_maps_is_negative() {
        let ext = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let mut a = DensityMap::new(ext, 2, 2);
        let mut b = DensityMap::new(ext, 2, 2);
        for _ in 0..10 {
            a.add(&GeoPoint::new(2.0, 2.0));
            b.add(&GeoPoint::new(8.0, 8.0));
        }
        assert!(a.correlation(&b).unwrap() < 0.0);
    }

    #[test]
    fn correlation_geometry_mismatch_is_none() {
        let a = DensityMap::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 2, 2);
        let b = DensityMap::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 4, 4);
        assert!(a.correlation(&b).is_none());
    }
}

//! Storage layouts: one-triples-table, vertical partitioning, property
//! tables.
//!
//! "We support different storage layouts, including 'one-triples-table',
//! vertical partitioning, and property tables." All three expose the same
//! scan interface so the executor and the experiments can swap them freely;
//! their cost profiles differ exactly the way the literature predicts
//! (vertical partitioning and property tables win on star joins).

use crate::dictionary::{EncodedTriple, TermId};
use datacron_geo::hash::FxHashMap;

/// Which layout a store partition uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// A single flat triples table (scan everything).
    TriplesTable,
    /// One `(s, o)` table per predicate.
    VerticalPartitioning,
    /// One row per subject with predicate columns.
    PropertyTable,
}

/// The scan interface shared by all layouts.
pub trait StorageLayout: Send + Sync {
    /// Inserts a triple.
    fn insert(&mut self, t: EncodedTriple);

    /// Number of stored triples.
    fn len(&self) -> usize;

    /// `true` when no triples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Subjects having `(p, o)`; `o = None` means any object. Multiplicity
    /// is unspecified (a subject may appear once per matching triple);
    /// callers must treat the result as a set.
    fn subjects_matching(&self, p: TermId, o: Option<TermId>) -> Vec<TermId>;

    /// Objects of `(s, p, ?)`.
    fn objects_of(&self, s: TermId, p: TermId) -> Vec<TermId>;

    /// `true` when the subject has an arm `(p, o)` (`o = None`: any object).
    fn subject_has(&self, s: TermId, p: TermId, o: Option<TermId>) -> bool;
}

/// Flat table.
#[derive(Debug, Default)]
pub struct TriplesTable {
    rows: Vec<EncodedTriple>,
}

impl StorageLayout for TriplesTable {
    fn insert(&mut self, t: EncodedTriple) {
        self.rows.push(t);
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn subjects_matching(&self, p: TermId, o: Option<TermId>) -> Vec<TermId> {
        self.rows
            .iter()
            .filter(|t| t.p == p && o.is_none_or(|o| t.o == o))
            .map(|t| t.s)
            .collect()
    }

    fn objects_of(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.rows
            .iter()
            .filter(|t| t.s == s && t.p == p)
            .map(|t| t.o)
            .collect()
    }

    fn subject_has(&self, s: TermId, p: TermId, o: Option<TermId>) -> bool {
        self.rows
            .iter()
            .any(|t| t.s == s && t.p == p && o.is_none_or(|o| t.o == o))
    }
}

/// One `(s, o)` list per predicate.
#[derive(Debug, Default)]
pub struct VerticalPartitioning {
    tables: FxHashMap<TermId, Vec<(TermId, TermId)>>,
    len: usize,
}

impl StorageLayout for VerticalPartitioning {
    fn insert(&mut self, t: EncodedTriple) {
        self.tables.entry(t.p).or_default().push((t.s, t.o));
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn subjects_matching(&self, p: TermId, o: Option<TermId>) -> Vec<TermId> {
        match self.tables.get(&p) {
            None => Vec::new(),
            Some(rows) => rows
                .iter()
                .filter(|(_, ro)| o.is_none_or(|o| *ro == o))
                .map(|(s, _)| *s)
                .collect(),
        }
    }

    fn objects_of(&self, s: TermId, p: TermId) -> Vec<TermId> {
        match self.tables.get(&p) {
            None => Vec::new(),
            Some(rows) => rows.iter().filter(|(rs, _)| *rs == s).map(|(_, o)| *o).collect(),
        }
    }

    fn subject_has(&self, s: TermId, p: TermId, o: Option<TermId>) -> bool {
        self.tables
            .get(&p)
            .is_some_and(|rows| rows.iter().any(|(rs, ro)| *rs == s && o.is_none_or(|o| *ro == o)))
    }
}

/// One row per subject, keyed by predicate.
#[derive(Debug, Default)]
pub struct PropertyTable {
    rows: FxHashMap<TermId, FxHashMap<TermId, Vec<TermId>>>,
    /// Predicate → subjects index, to seed star scans.
    by_pred: FxHashMap<TermId, Vec<TermId>>,
    len: usize,
}

impl StorageLayout for PropertyTable {
    fn insert(&mut self, t: EncodedTriple) {
        self.rows.entry(t.s).or_default().entry(t.p).or_default().push(t.o);
        self.by_pred.entry(t.p).or_default().push(t.s);
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn subjects_matching(&self, p: TermId, o: Option<TermId>) -> Vec<TermId> {
        match o {
            None => self.by_pred.get(&p).cloned().unwrap_or_default(),
            Some(o) => self
                .by_pred
                .get(&p)
                .into_iter()
                .flatten()
                .filter(|s| {
                    self.rows
                        .get(s)
                        .and_then(|row| row.get(&p))
                        .is_some_and(|objs| objs.contains(&o))
                })
                .copied()
                .collect(),
        }
    }

    fn objects_of(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.rows
            .get(&s)
            .and_then(|row| row.get(&p))
            .cloned()
            .unwrap_or_default()
    }

    fn subject_has(&self, s: TermId, p: TermId, o: Option<TermId>) -> bool {
        self.rows
            .get(&s)
            .and_then(|row| row.get(&p))
            .is_some_and(|objs| o.is_none_or(|o| objs.contains(&o)))
    }
}

/// Creates an empty layout of the given kind.
pub fn make_layout(kind: LayoutKind) -> Box<dyn StorageLayout> {
    match kind {
        LayoutKind::TriplesTable => Box::<TriplesTable>::default(),
        LayoutKind::VerticalPartitioning => Box::<VerticalPartitioning>::default(),
        LayoutKind::PropertyTable => Box::<PropertyTable>::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> EncodedTriple {
        EncodedTriple { s, p, o }
    }

    fn populate(layout: &mut dyn StorageLayout) {
        layout.insert(t(1, 100, 200)); // s1 type A
        layout.insert(t(2, 100, 200)); // s2 type A
        layout.insert(t(3, 100, 201)); // s3 type B
        layout.insert(t(1, 101, 300)); // s1 speed 300
        layout.insert(t(2, 101, 301)); // s2 speed 301
        layout.insert(t(1, 102, 400)); // s1 in area
    }

    fn check(layout: &mut dyn StorageLayout) {
        populate(layout);
        assert_eq!(layout.len(), 6);
        let mut type_a = layout.subjects_matching(100, Some(200));
        type_a.sort();
        assert_eq!(type_a, vec![1, 2]);
        let mut with_speed = layout.subjects_matching(101, None);
        with_speed.sort();
        assert_eq!(with_speed, vec![1, 2]);
        assert_eq!(layout.objects_of(1, 101), vec![300]);
        assert!(layout.subject_has(1, 102, Some(400)));
        assert!(layout.subject_has(1, 102, None));
        assert!(!layout.subject_has(2, 102, None));
        assert!(layout.subjects_matching(999, None).is_empty());
        assert!(layout.objects_of(9, 101).is_empty());
    }

    #[test]
    fn triples_table_semantics() {
        check(&mut TriplesTable::default());
    }

    #[test]
    fn vertical_partitioning_semantics() {
        check(&mut VerticalPartitioning::default());
    }

    #[test]
    fn property_table_semantics() {
        check(&mut PropertyTable::default());
    }

    #[test]
    fn layouts_agree_on_random_data() {
        // Deterministic pseudo-random triples; all layouts must answer
        // identically.
        let mut tt = TriplesTable::default();
        let mut vp = VerticalPartitioning::default();
        let mut pt = PropertyTable::default();
        let mut x: u64 = 12345;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for _ in 0..500 {
            let tr = t(next() % 50, 100 + next() % 5, next() % 30);
            tt.insert(tr);
            vp.insert(tr);
            pt.insert(tr);
        }
        for p in 100..105 {
            for o in [None, Some(3u64), Some(17)] {
                let mut a = tt.subjects_matching(p, o);
                let mut b = vp.subjects_matching(p, o);
                let mut c = pt.subjects_matching(p, o);
                a.sort();
                a.dedup();
                b.sort();
                b.dedup();
                c.sort();
                c.dedup();
                assert_eq!(a, b, "vp mismatch p={p} o={o:?}");
                assert_eq!(a, c, "pt mismatch p={p} o={o:?}");
            }
        }
        for s in 0..50 {
            for p in 100..105 {
                let mut a = tt.objects_of(s, p);
                let mut b = vp.objects_of(s, p);
                let mut c = pt.objects_of(s, p);
                a.sort();
                b.sort();
                c.sort();
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
        }
    }
}

//! The partitioned knowledge store and its star-join executor.

use crate::dictionary::{Dictionary, EncodedTriple, TermId};
use crate::layout::{make_layout, LayoutKind, StorageLayout};
use datacron_geo::{BoundingBox, GeoPoint, StCellEncoder, TimeInterval, Timestamp};
use datacron_rdf::term::{Term, Triple};
use std::collections::HashSet;

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Storage layout used by every partition.
    pub layout: LayoutKind,
    /// Number of partitions (the simulated cluster width).
    pub partitions: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            layout: LayoutKind::VerticalPartitioning,
            partitions: 4,
        }
    }
}

/// How the spatio-temporal constraint of a query is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StExecution {
    /// Filter candidate ids against the encoded cell ranges during the
    /// seed scan (the paper's technique), then refine exactly.
    Pushdown,
    /// Evaluate the whole graph pattern first, filter on exact anchors at
    /// the end (the baseline the paper reports a factor-5 win over).
    PostFilter,
}

/// A star query: arms over one subject variable, plus an optional
/// spatio-temporal constraint on the subject.
#[derive(Debug, Clone)]
pub struct StarQuery {
    /// `(predicate, object)` arms; `None` object = any value.
    pub arms: Vec<(Term, Option<Term>)>,
    /// Spatio-temporal window the subject must fall in.
    pub st: Option<(BoundingBox, TimeInterval)>,
}

/// Execution metrics of one query run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidate subjects produced by the seed scan (after pushdown, when
    /// enabled).
    pub seed_candidates: u64,
    /// Candidates that survived all graph-pattern arms.
    pub pattern_matches: u64,
    /// Final results after exact spatio-temporal refinement.
    pub results: u64,
}

/// The subject-to-partition hash shared by the batch store and the live
/// store, so both place any given subject in the same partition.
/// Multiplicative hash so st ids (which share high bits per cell) still
/// spread across partitions.
pub(crate) fn partition_index(s: TermId, partitions: usize) -> usize {
    (s.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % partitions
}

/// The partitioned, dictionary-encoded triple store.
pub struct KnowledgeStore {
    config: StoreConfig,
    dict: Dictionary,
    partitions: Vec<Box<dyn StorageLayout>>,
}

impl KnowledgeStore {
    /// Creates an empty store.
    pub fn new(encoder: StCellEncoder, config: StoreConfig) -> Self {
        assert!(config.partitions > 0, "need at least one partition");
        let partitions = (0..config.partitions).map(|_| make_layout(config.layout)).collect();
        Self {
            config,
            dict: Dictionary::new(encoder),
            partitions,
        }
    }

    /// The dictionary (for tests/diagnostics).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Total stored triples across partitions.
    pub fn triple_count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    fn partition_of(&self, s: TermId) -> usize {
        partition_index(s, self.config.partitions)
    }

    /// Ingests an ordinary triple.
    pub fn ingest(&mut self, t: &Triple) {
        let s = self.dict.encode(&t.s);
        let p = self.dict.encode(&t.p);
        let o = self.dict.encode(&t.o);
        let part = self.partition_of(s);
        self.partitions[part].insert(EncodedTriple { s, p, o });
    }

    /// Registers `node` as a spatio-temporal entity anchored at
    /// `(point, ts)` and ingests its triples (any triple whose subject is
    /// `node` gets the st-encoded subject id). This is the enriched-
    /// trajectory ingestion path of the batch layer.
    pub fn ingest_node(&mut self, node: &Term, point: &GeoPoint, ts: Timestamp, triples: &[Triple]) {
        let s_id = self.dict.encode_st(node, point, ts);
        for t in triples {
            let s = if &t.s == node { s_id } else { self.dict.encode(&t.s) };
            let p = self.dict.encode(&t.p);
            let o = self.dict.encode(&t.o);
            let part = self.partition_of(s);
            self.partitions[part].insert(EncodedTriple { s, p, o });
        }
    }

    /// Executes a star query, returning the matching subject terms (sorted
    /// by id for determinism) and the execution metrics.
    pub fn execute_star(&self, q: &StarQuery, exec: StExecution) -> (Vec<Term>, QueryStats) {
        let mut stats = QueryStats::default();
        if q.arms.is_empty() {
            return (Vec::new(), stats);
        }
        // Encode the arms; unknown terms mean no matches.
        let mut arms: Vec<(TermId, Option<TermId>)> = Vec::with_capacity(q.arms.len());
        for (p, o) in &q.arms {
            let Some(p_id) = self.dict.id_of(p) else {
                return (Vec::new(), stats);
            };
            let o_id = match o {
                None => None,
                Some(term) => match self.dict.id_of(term) {
                    Some(id) => Some(id),
                    None => return (Vec::new(), stats),
                },
            };
            arms.push((p_id, o_id));
        }

        // Precompute pushdown ranges.
        let pushdown_ranges: Option<Vec<(TermId, TermId)>> = match (exec, &q.st) {
            (StExecution::Pushdown, Some((bbox, interval))) => {
                let mut r = Dictionary::id_ranges(&self.dict.encoder().query_ranges(bbox, interval));
                r.sort_unstable();
                Some(r)
            }
            _ => None,
        };

        // Seed scan: prefer an arm with a constant object (most selective).
        let seed_idx = arms.iter().position(|(_, o)| o.is_some()).unwrap_or(0);
        let (seed_p, seed_o) = arms[seed_idx];
        // Parallel scan across partitions. Scan workers run no user code, so
        // a panic there is a store bug; joining propagates it to the caller.
        let seed: Vec<TermId> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .iter()
                .map(|part| {
                    let ranges = pushdown_ranges.as_deref();
                    scope.spawn(move || {
                        let mut subs = part.subjects_matching(seed_p, seed_o);
                        if let Some(ranges) = ranges {
                            subs.retain(|&s| Dictionary::id_in_ranges(ranges, s));
                        }
                        subs
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("partition scan panicked"))
                .collect()
        });

        let mut candidates: HashSet<TermId> = seed.into_iter().collect();
        stats.seed_candidates = candidates.len() as u64;

        // Remaining arms: semi-join against each candidate's own partition.
        for (i, &(p, o)) in arms.iter().enumerate() {
            if i == seed_idx {
                continue;
            }
            candidates.retain(|&s| self.partitions[self.partition_of(s)].subject_has(s, p, o));
        }
        stats.pattern_matches = candidates.len() as u64;

        // Exact spatio-temporal refinement (both modes — pushdown ranges are
        // cell approximations, so exact anchors decide the final answer).
        let mut results: Vec<TermId> = match &q.st {
            None => candidates.into_iter().collect(),
            Some((bbox, interval)) => candidates
                .into_iter()
                .filter(|&s| {
                    self.dict
                        .anchor(s)
                        .is_some_and(|(p, t)| bbox.contains(&p) && interval.contains(t))
                })
                .collect(),
        };
        results.sort_unstable();
        stats.results = results.len() as u64;
        let terms = results
            .into_iter()
            .map(|id| self.dict.term_of(id).expect("result ids come from the store").clone())
            .collect();
        (terms, stats)
    }

    /// The exact spatio-temporal anchor of a stored entity term, when it
    /// was ingested via [`ingest_node`](Self::ingest_node).
    pub fn anchor_of(&self, term: &Term) -> Option<(GeoPoint, Timestamp)> {
        self.dict.id_of(term).and_then(|id| self.dict.anchor(id))
    }

    /// Objects of `(subject, predicate)` — point lookups for enrichment
    /// reads after a star query.
    pub fn objects_of(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        let (Some(s), Some(p)) = (self.dict.id_of(subject), self.dict.id_of(predicate)) else {
            return Vec::new();
        };
        self.partitions[self.partition_of(s)]
            .objects_of(s, p)
            .into_iter()
            .filter_map(|o| self.dict.term_of(o).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::EquiGrid;

    fn encoder() -> StCellEncoder {
        let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 16, 16);
        StCellEncoder::new(grid, Timestamp(0), 60_000)
    }

    fn store(layout: LayoutKind) -> KnowledgeStore {
        KnowledgeStore::new(
            encoder(),
            StoreConfig {
                layout,
                partitions: 3,
            },
        )
    }

    /// Ingests `n` semantic nodes spread over space/time; node `i` is a
    /// "turn" event iff `i % 4 == 0`.
    fn populate(st: &mut KnowledgeStore, n: usize) {
        let type_p = Term::iri("p:type");
        let node_c = Term::iri("c:Node");
        let event_p = Term::iri("p:event");
        let speed_p = Term::iri("p:speed");
        for i in 0..n {
            let node = Term::iri(format!("n:{i}"));
            let point = GeoPoint::new((i % 100) as f64 * 0.1, ((i / 100) % 100) as f64 * 0.1);
            let ts = Timestamp((i as i64 % 50) * 30_000);
            let event = if i % 4 == 0 { "turn" } else { "cruise" };
            let triples = vec![
                Triple::new(node.clone(), type_p.clone(), node_c.clone()),
                Triple::new(node.clone(), event_p.clone(), Term::str(event)),
                Triple::new(node.clone(), speed_p.clone(), Term::double(i as f64)),
            ];
            st.ingest_node(&node, &point, ts, &triples);
        }
    }

    fn turn_query(st: Option<(BoundingBox, TimeInterval)>) -> StarQuery {
        StarQuery {
            arms: vec![
                (Term::iri("p:type"), Some(Term::iri("c:Node"))),
                (Term::iri("p:event"), Some(Term::str("turn"))),
                (Term::iri("p:speed"), None),
            ],
            st,
        }
    }

    #[test]
    fn star_query_without_st_constraint() {
        let mut s = store(LayoutKind::VerticalPartitioning);
        populate(&mut s, 200);
        let (results, stats) = s.execute_star(&turn_query(None), StExecution::PostFilter);
        assert_eq!(results.len(), 50);
        assert_eq!(stats.results, 50);
        assert!(results.contains(&Term::iri("n:0")));
        assert!(!results.contains(&Term::iri("n:1")));
    }

    #[test]
    fn pushdown_and_postfilter_agree() {
        for layout in [
            LayoutKind::TriplesTable,
            LayoutKind::VerticalPartitioning,
            LayoutKind::PropertyTable,
        ] {
            let mut s = store(layout);
            populate(&mut s, 400);
            let stc = Some((
                BoundingBox::new(1.0, 0.0, 4.0, 0.4),
                TimeInterval::new(Timestamp(0), Timestamp(600_000)),
            ));
            let (a, _) = s.execute_star(&turn_query(stc), StExecution::Pushdown);
            let (b, _) = s.execute_star(&turn_query(stc), StExecution::PostFilter);
            assert_eq!(a, b, "layout {layout:?} disagrees");
            assert!(!a.is_empty(), "constraint should keep some results");
            assert!(a.len() < 100, "constraint should prune");
        }
    }

    #[test]
    fn pushdown_shrinks_seed_candidates() {
        let mut s = store(LayoutKind::VerticalPartitioning);
        populate(&mut s, 1000);
        let stc = Some((
            BoundingBox::new(1.0, 0.0, 2.0, 0.3),
            TimeInterval::new(Timestamp(0), Timestamp(300_000)),
        ));
        let (_, push) = s.execute_star(&turn_query(stc), StExecution::Pushdown);
        let (_, post) = s.execute_star(&turn_query(stc), StExecution::PostFilter);
        assert!(
            push.seed_candidates * 4 < post.seed_candidates,
            "pushdown {} vs postfilter {}",
            push.seed_candidates,
            post.seed_candidates
        );
        assert_eq!(push.results, post.results);
    }

    #[test]
    fn exact_refinement_beats_cell_approximation() {
        // A node whose cell intersects the query box but whose exact anchor
        // is outside must not be returned.
        let mut s = store(LayoutKind::VerticalPartitioning);
        let node = Term::iri("n:edge");
        // Cell size is 10/16 = 0.625 deg. Anchor at 0.6,0.6 (cell row 0).
        s.ingest_node(
            &node,
            &GeoPoint::new(0.6, 0.6),
            Timestamp(0),
            &[Triple::new(node.clone(), Term::iri("p:type"), Term::iri("c:Node"))],
        );
        let q = StarQuery {
            arms: vec![(Term::iri("p:type"), Some(Term::iri("c:Node")))],
            // Query box overlaps the node's cell but not the anchor.
            st: Some((
                BoundingBox::new(0.0, 0.0, 0.5, 0.5),
                TimeInterval::new(Timestamp(0), Timestamp(60_000)),
            )),
        };
        let (results, stats) = s.execute_star(&q, StExecution::Pushdown);
        assert!(results.is_empty());
        assert_eq!(stats.seed_candidates, 1, "cell-level candidate admitted");
        assert_eq!(stats.results, 0, "exact refinement rejected it");
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let mut s = store(LayoutKind::PropertyTable);
        populate(&mut s, 10);
        let q = StarQuery {
            arms: vec![(Term::iri("p:unknown"), None)],
            st: None,
        };
        let (results, _) = s.execute_star(&q, StExecution::PostFilter);
        assert!(results.is_empty());
    }

    #[test]
    fn empty_arms_yield_empty() {
        let s = store(LayoutKind::PropertyTable);
        let q = StarQuery { arms: vec![], st: None };
        assert!(s.execute_star(&q, StExecution::Pushdown).0.is_empty());
    }

    #[test]
    fn objects_of_reads_back() {
        let mut s = store(LayoutKind::VerticalPartitioning);
        populate(&mut s, 20);
        let objs = s.objects_of(&Term::iri("n:4"), &Term::iri("p:event"));
        assert_eq!(objs, vec![Term::str("turn")]);
        assert!(s.objects_of(&Term::iri("n:999"), &Term::iri("p:event")).is_empty());
    }

    #[test]
    fn triples_distribute_across_partitions() {
        let mut s = store(LayoutKind::VerticalPartitioning);
        populate(&mut s, 300);
        assert_eq!(s.triple_count(), 900);
        let sizes: Vec<usize> = s.partitions.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().all(|&n| n > 0), "all partitions used: {sizes:?}");
    }
}

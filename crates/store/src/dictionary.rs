//! Dictionary encoding with spatio-temporal identifiers.
//!
//! Terms are mapped to dense `u64` ids. Ordinary terms get sequential ids
//! with the high bit clear. **Spatio-temporal entities** (semantic nodes
//! carrying a position and a timestamp) get ids with the high bit set whose
//! upper bits are the [`StCellId`] of their spatio-temporal cell:
//!
//! ```text
//!   [1][ st-cell id : 39 bits ][ sequence within cell : 24 bits ]
//! ```
//!
//! A query's spatio-temporal constraint maps to st-cell ranges
//! (`StCellEncoder::query_ranges`); because the cell id occupies the most
//! significant payload bits, each cell range is one *contiguous id range*,
//! so scans discard non-matching triples with two integer comparisons and
//! no dictionary lookup. Exact positions are also retained for final
//! refinement.

use datacron_geo::stcell::IdRange;
use datacron_geo::{GeoPoint, StCellEncoder, StCellId, Timestamp};
use datacron_rdf::term::Term;
use datacron_geo::hash::FxHashMap;
use std::collections::HashMap;

/// A dictionary-encoded term identifier.
pub type TermId = u64;

/// An encoded triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedTriple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

const ST_FLAG: u64 = 1 << 63;
const SEQ_BITS: u32 = 24;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;
/// Maximum st-cell id representable (39 bits).
const CELL_LIMIT: u64 = 1 << (63 - SEQ_BITS);

/// Term ↔ id dictionary with the spatio-temporal id class.
#[derive(Debug)]
pub struct Dictionary {
    encoder: StCellEncoder,
    term_to_id: HashMap<Term, TermId>,
    id_to_term: FxHashMap<TermId, Term>,
    next_plain: TermId,
    /// Next sequence number per st-cell.
    next_in_cell: FxHashMap<StCellId, u64>,
    /// Exact anchor of each st term, for refinement.
    anchors: FxHashMap<TermId, (GeoPoint, Timestamp)>,
}

impl Dictionary {
    /// Creates a dictionary over the given spatio-temporal encoder.
    pub fn new(encoder: StCellEncoder) -> Self {
        Self {
            encoder,
            term_to_id: HashMap::new(),
            id_to_term: FxHashMap::default(),
            next_plain: 0,
            next_in_cell: FxHashMap::default(),
            anchors: FxHashMap::default(),
        }
    }

    /// The spatio-temporal encoder.
    pub fn encoder(&self) -> &StCellEncoder {
        &self.encoder
    }

    /// Encodes an ordinary term, assigning a fresh plain id on first sight.
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = self.next_plain;
        self.next_plain += 1;
        assert!(id & ST_FLAG == 0, "plain id space exhausted");
        self.term_to_id.insert(term.clone(), id);
        self.id_to_term.insert(id, term.clone());
        id
    }

    /// Encodes a spatio-temporal entity term with its exact anchor. The id
    /// embeds the entity's st-cell. Entities outside the encoder's grid or
    /// epoch fall back to plain ids (they can never satisfy an st
    /// constraint anyway).
    pub fn encode_st(&mut self, term: &Term, point: &GeoPoint, ts: Timestamp) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let Some(cell) = self.encoder.encode(point, ts) else {
            return self.encode(term);
        };
        assert!(cell.0 < CELL_LIMIT, "st-cell id space exhausted");
        let seq = self.next_in_cell.entry(cell).or_insert(0);
        assert!(*seq <= SEQ_MASK, "st-cell sequence space exhausted");
        let id = ST_FLAG | (cell.0 << SEQ_BITS) | *seq;
        *seq += 1;
        self.term_to_id.insert(term.clone(), id);
        self.id_to_term.insert(id, term.clone());
        self.anchors.insert(id, (*point, ts));
        id
    }

    /// Looks up an already-encoded term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// Decodes an id.
    pub fn term_of(&self, id: TermId) -> Option<&Term> {
        self.id_to_term.get(&id)
    }

    /// `true` when the id belongs to the spatio-temporal class.
    pub fn is_st(id: TermId) -> bool {
        id & ST_FLAG != 0
    }

    /// The st-cell embedded in an st id.
    pub fn st_cell(id: TermId) -> Option<StCellId> {
        Self::is_st(id).then_some(StCellId((id & !ST_FLAG) >> SEQ_BITS))
    }

    /// The exact anchor of an st term, for refinement.
    pub fn anchor(&self, id: TermId) -> Option<(GeoPoint, Timestamp)> {
        self.anchors.get(&id).copied()
    }

    /// Translates st-cell ranges into *id ranges* over the st id class.
    /// The output is sorted and **coalesced** (overlapping or adjacent
    /// input ranges merge into one), which is exactly the precondition
    /// [`id_in_ranges`](Self::id_in_ranges) needs.
    pub fn id_ranges(ranges: &[IdRange]) -> Vec<(TermId, TermId)> {
        let mut out: Vec<(TermId, TermId)> = ranges
            .iter()
            .map(|r| {
                (
                    ST_FLAG | (r.lo.0 << SEQ_BITS),
                    ST_FLAG | (r.hi.0 << SEQ_BITS) | SEQ_MASK,
                )
            })
            .collect();
        out.sort_unstable();
        let mut merged: Vec<(TermId, TermId)> = Vec::with_capacity(out.len());
        for (lo, hi) in out {
            match merged.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }

    /// Binary-search membership of an id in sorted, **disjoint** id ranges
    /// (as produced by [`id_ranges`](Self::id_ranges); with overlapping
    /// ranges the search could land past the containing one).
    pub fn id_in_ranges(sorted_ranges: &[(TermId, TermId)], id: TermId) -> bool {
        let idx = sorted_ranges.partition_point(|&(lo, _)| lo <= id);
        idx > 0 && id <= sorted_ranges[idx - 1].1
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.term_to_id.len()
    }

    /// `true` when no terms are registered.
    pub fn is_empty(&self) -> bool {
        self.term_to_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{BoundingBox, EquiGrid, TimeInterval};

    fn dict() -> Dictionary {
        let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 16, 16);
        Dictionary::new(StCellEncoder::new(grid, Timestamp(0), 60_000))
    }

    #[test]
    fn plain_ids_round_trip_and_dedupe() {
        let mut d = dict();
        let a = d.encode(&Term::iri("x:a"));
        let b = d.encode(&Term::iri("x:b"));
        assert_ne!(a, b);
        assert_eq!(d.encode(&Term::iri("x:a")), a);
        assert_eq!(d.term_of(a), Some(&Term::iri("x:a")));
        assert!(!Dictionary::is_st(a));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn st_ids_embed_cell_and_round_trip() {
        let mut d = dict();
        let p = GeoPoint::new(3.1, 7.4);
        let t = Timestamp(90_000);
        let id = d.encode_st(&Term::iri("n:1"), &p, t);
        assert!(Dictionary::is_st(id));
        let cell = Dictionary::st_cell(id).unwrap();
        assert_eq!(cell, d.encoder().encode(&p, t).unwrap());
        assert_eq!(d.term_of(id), Some(&Term::iri("n:1")));
        assert_eq!(d.anchor(id), Some((p, t)));
    }

    #[test]
    fn same_cell_entities_get_distinct_ids() {
        let mut d = dict();
        let p = GeoPoint::new(3.1, 7.4);
        let a = d.encode_st(&Term::iri("n:1"), &p, Timestamp(0));
        let b = d.encode_st(&Term::iri("n:2"), &p, Timestamp(1));
        assert_ne!(a, b);
        assert_eq!(Dictionary::st_cell(a), Dictionary::st_cell(b));
    }

    #[test]
    fn out_of_grid_falls_back_to_plain() {
        let mut d = dict();
        let id = d.encode_st(&Term::iri("n:far"), &GeoPoint::new(50.0, 50.0), Timestamp(0));
        assert!(!Dictionary::is_st(id));
    }

    #[test]
    fn id_ranges_match_exactly_the_cells() {
        let mut d = dict();
        // Entities inside and outside the query window.
        let inside = d.encode_st(&Term::iri("n:in"), &GeoPoint::new(2.0, 2.0), Timestamp(30_000));
        let outside_space = d.encode_st(&Term::iri("n:out_s"), &GeoPoint::new(9.0, 9.0), Timestamp(30_000));
        let outside_time = d.encode_st(&Term::iri("n:out_t"), &GeoPoint::new(2.0, 2.0), Timestamp(600_000));
        let qbox = BoundingBox::new(1.0, 1.0, 3.0, 3.0);
        let qiv = TimeInterval::new(Timestamp(0), Timestamp(120_000));
        let mut ranges = Dictionary::id_ranges(&d.encoder().query_ranges(&qbox, &qiv));
        ranges.sort();
        assert!(Dictionary::id_in_ranges(&ranges, inside));
        assert!(!Dictionary::id_in_ranges(&ranges, outside_space));
        assert!(!Dictionary::id_in_ranges(&ranges, outside_time));
        // Plain ids never match.
        let plain = d.encode(&Term::iri("x:a"));
        assert!(!Dictionary::id_in_ranges(&ranges, plain));
    }

    #[test]
    fn id_in_ranges_boundaries() {
        let ranges = vec![(10u64, 20u64), (30, 40)];
        assert!(Dictionary::id_in_ranges(&ranges, 10));
        assert!(Dictionary::id_in_ranges(&ranges, 20));
        assert!(!Dictionary::id_in_ranges(&ranges, 25));
        assert!(Dictionary::id_in_ranges(&ranges, 30));
        assert!(!Dictionary::id_in_ranges(&ranges, 41));
        assert!(!Dictionary::id_in_ranges(&ranges, 5));
    }
}

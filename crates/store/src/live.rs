//! The live (streaming) knowledge store: incremental triple ingestion with
//! snapshot isolation and continuous star-join subscriptions.
//!
//! [`KnowledgeStore`](crate::KnowledgeStore) is a batch-load-then-query
//! structure: ingestion takes `&mut self` and readers wait. The paper's
//! architecture, though, feeds RDF generation into the store *while* the
//! real-time layer keeps producing — the serving-layer bridge from stream
//! processing to low-latency queries. [`LiveStore`] closes that gap:
//!
//! * **Incremental ingestion** — [`ingest_batch`](LiveStore::ingest_batch)
//!   dictionary-encodes a batch of triples on the hot path and appends one
//!   frozen *segment* per touched partition, built from the same
//!   [`StorageLayout`] implementations the batch store uses.
//! * **Snapshot isolation** — committed state is an immutable
//!   [`Generation`]: an `Arc` holding per-partition segment lists and a
//!   triple-count watermark. Publishing a batch swaps one `Arc` pointer;
//!   readers pin a generation ([`snapshot`](LiveStore::snapshot)) and query
//!   it lock-free, so a concurrent reader sees either all of a batch or
//!   none of it, never a half-applied state. The dictionary is append-only
//!   and every id referenced by a committed generation is inserted before
//!   the generation is published, so pinned reads stay consistent while
//!   the dictionary grows.
//! * **Continuous queries** — register a [`StarQuery`] with
//!   [`subscribe`](LiveStore::subscribe) and receive [`StarMatch`]es on a
//!   bounded output [`Topic`](datacron_stream::bus::Topic) as triples
//!   arrive. Star-join matches are *monotone* (triples are only added and
//!   anchors are fixed at encode time), so each subject is emitted exactly
//!   once and the union of emissions equals the result of one
//!   [`execute_star`](LiveSnapshot::execute_star) over the final state —
//!   independent of how the stream was batched. The dictionary's
//!   spatio-temporal pushdown ([`Dictionary::id_ranges`]) prunes candidate
//!   subjects before any pattern matching.
//!
//! # Anchors on the live path
//!
//! The batch path learns each semantic node's exact anchor out-of-band
//! (`ingest_node(node, point, ts, …)`). The live path sees only triples, so
//! it recovers anchors *from the data*: a subject carrying both a
//! `geo:asWKT` `POINT` literal and a datAcron `hasTemporalFeature`
//! dateTime literal in the same batch is spatio-temporally encoded with
//! that anchor. The pipeline publishes each semantic node's graph
//! atomically (one `publish_batch` per critical point), so a drain never
//! splits a node's triples across batches and the derived anchors equal
//! the batch path's exactly — `kg_live` pins this equivalence under chaos.

use crate::dictionary::{Dictionary, EncodedTriple, TermId};
use crate::layout::{make_layout, StorageLayout};
use crate::store::{partition_index, QueryStats, StExecution, StarQuery, StoreConfig};
use crate::subscribe::{Subscription, SubscriptionHandle, SubscriptionStats};
use datacron_geo::{GeoPoint, StCellEncoder, Timestamp};
use datacron_rdf::term::{Literal, Term, Triple};
use datacron_rdf::vocab;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// An immutable committed state of the live store: per-partition lists of
/// frozen segments plus the triple-count watermark. Readers pin a
/// generation and query it without locks; writers never mutate a published
/// generation, they publish a successor.
#[derive(Clone)]
pub struct Generation {
    /// Monotone generation number (0 = empty store).
    number: u64,
    /// Total triples committed up to and including this generation.
    watermark: u64,
    /// Frozen segments, one list per partition.
    segments: Vec<Vec<Arc<dyn StorageLayout>>>,
}

impl Generation {
    fn empty(partitions: usize) -> Self {
        Self {
            number: 0,
            watermark: 0,
            segments: vec![Vec::new(); partitions],
        }
    }

    /// The generation number (how many non-empty batches were committed).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// Total triples committed (the consistency watermark: always a batch
    /// boundary, never mid-batch).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Stored triples, summed over every segment — equals
    /// [`watermark`](Self::watermark) by construction; the snapshot-
    /// isolation tests assert this invariant concurrently with ingestion.
    pub fn triple_count(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|part| part.iter())
            .map(|seg| seg.len() as u64)
            .sum()
    }

    /// Segments in one partition (diagnostics).
    pub fn segment_count(&self) -> usize {
        self.segments.iter().map(|p| p.len()).sum()
    }

    fn subject_has(&self, s: TermId, p: TermId, o: Option<TermId>, partitions: usize) -> bool {
        self.segments[partition_index(s, partitions)]
            .iter()
            .any(|seg| seg.subject_has(s, p, o))
    }
}

/// What one [`LiveStore::ingest_batch`] call committed and matched.
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// Triples appended by this batch.
    pub triples: u64,
    /// Subjects newly registered in the spatio-temporal id class (anchor
    /// derived from their `asWKT`/`hasTemporalFeature` literals).
    pub new_st_subjects: u64,
    /// Matches newly emitted across all subscriptions.
    pub new_matches: u64,
    /// Ingest-to-match latency of each emitted match, nanoseconds from
    /// batch start (one entry per match, emission order).
    pub match_ns: Vec<u64>,
    /// Generation number after the commit.
    pub generation: u64,
    /// Triple watermark after the commit.
    pub watermark: u64,
}

/// The live, concurrently-readable knowledge store.
///
/// All methods take `&self`: share it via `Arc` (or borrow it into scoped
/// threads) and ingest from one thread while others read pinned snapshots.
/// Concurrent `ingest_batch` calls are serialized by an internal writer
/// lock.
pub struct LiveStore {
    config: StoreConfig,
    /// Term dictionary. Append-only: ids are never re-assigned, so readers
    /// holding an older generation can always decode their ids.
    dict: RwLock<Dictionary>,
    /// The committed generation. Swapped atomically (under a short write
    /// lock) after a batch is fully built; readers clone the `Arc`.
    committed: RwLock<Arc<Generation>>,
    /// Serializes writers (ingestion and subscription registration).
    writer: Mutex<()>,
    /// Continuous star-join subscriptions.
    subs: Mutex<Vec<Subscription>>,
    next_sub_id: AtomicU64,
    /// Total spatio-temporally encoded subjects (monotone, set-based).
    st_subjects: AtomicU64,
}

/// Parses a `POINT (lon lat)` WKT literal. Rust's `f64` display is the
/// shortest round-trip form, so `parse` recovers the generating point
/// exactly and live anchors equal batch anchors bit-for-bit.
fn parse_point_wkt(s: &str) -> Option<GeoPoint> {
    let inner = s.trim().strip_prefix("POINT")?.trim().strip_prefix('(')?.strip_suffix(')')?;
    let mut it = inner.split_whitespace();
    let lon: f64 = it.next()?.parse().ok()?;
    let lat: f64 = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(GeoPoint::new(lon, lat))
}

/// Encodes a star query's arms; `None` when any arm term is still unknown
/// to the dictionary — no stored triple can then satisfy every arm, so the
/// query has no matches yet.
fn encode_arms(dict: &Dictionary, q: &StarQuery) -> Option<Vec<(TermId, Option<TermId>)>> {
    let mut arms = Vec::with_capacity(q.arms.len());
    for (p, o) in &q.arms {
        let p_id = dict.id_of(p)?;
        let o_id = match o {
            None => None,
            Some(term) => Some(dict.id_of(term)?),
        };
        arms.push((p_id, o_id));
    }
    Some(arms)
}

/// Exact spatio-temporal refinement of one candidate (both execution
/// modes; identical to the batch executor's final step).
fn anchor_passes(dict: &Dictionary, q: &StarQuery, s: TermId) -> bool {
    match &q.st {
        None => true,
        Some((bbox, interval)) => dict
            .anchor(s)
            .is_some_and(|(p, t)| bbox.contains(&p) && interval.contains(t)),
    }
}

impl LiveStore {
    /// Creates an empty live store over the given spatio-temporal encoder.
    pub fn new(encoder: StCellEncoder, config: StoreConfig) -> Self {
        assert!(config.partitions > 0, "need at least one partition");
        let partitions = config.partitions;
        Self {
            config,
            dict: RwLock::new(Dictionary::new(encoder)),
            committed: RwLock::new(Arc::new(Generation::empty(partitions))),
            writer: Mutex::new(()),
            subs: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
            st_subjects: AtomicU64::new(0),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Pins the committed generation for isolated reads. The snapshot
    /// keeps answering from its pinned state however many batches commit
    /// after it.
    pub fn snapshot(&self) -> LiveSnapshot<'_> {
        LiveSnapshot {
            store: self,
            generation: self.committed.read().expect("store lock poisoned").clone(),
        }
    }

    /// Total committed triples (the current watermark).
    pub fn triple_count(&self) -> u64 {
        self.committed.read().expect("store lock poisoned").watermark
    }

    /// The exact anchor of a spatio-temporally encoded subject, when the
    /// live path derived one from its `asWKT`/`hasTemporalFeature`
    /// literals.
    pub fn anchor_of(&self, term: &Term) -> Option<(GeoPoint, Timestamp)> {
        let dict = self.dict.read().expect("store lock poisoned");
        dict.id_of(term).and_then(|id| dict.anchor(id))
    }

    /// Point-in-time statistics (for health reporting).
    pub fn stats(&self) -> LiveStoreStats {
        let generation = self.committed.read().expect("store lock poisoned").clone();
        let subs = self.subs.lock().expect("store lock poisoned");
        LiveStoreStats {
            generation: generation.number,
            watermark: generation.watermark,
            segments: generation.segment_count() as u64,
            st_subjects: self.st_subjects.load(Ordering::Relaxed),
            subscriptions: subs.len() as u64,
            matches_emitted: subs.iter().map(|s| s.emitted_count()).sum(),
            match_drops: subs.iter().map(|s| s.dropped()).sum(),
        }
    }

    /// Per-subscription statistics, in registration order.
    pub fn subscription_stats(&self) -> Vec<SubscriptionStats> {
        self.subs
            .lock()
            .expect("store lock poisoned")
            .iter()
            .map(Subscription::stats)
            .collect()
    }

    /// Registers a continuous star-join subscription. Matches already
    /// present in the committed state are emitted immediately (backfill),
    /// then every batch that completes a new match emits it exactly once —
    /// the union of emissions always equals a fresh
    /// [`execute_star`](LiveSnapshot::execute_star) over the current state.
    /// Matches land on a bounded topic of the given capacity with
    /// drop-oldest overflow: a subscriber that falls behind observes a
    /// `Lagged` signal and can re-sync from a snapshot query.
    pub fn subscribe(&self, query: StarQuery, capacity: usize) -> SubscriptionHandle {
        let _w = self.writer.lock().expect("store lock poisoned");
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        let generation = self.committed.read().expect("store lock poisoned").clone();
        let dict = self.dict.read().expect("store lock poisoned");
        // Spatio-temporal pushdown ranges depend only on the encoder (fixed
        // at construction), so they are computed once per subscription.
        let ranges = query.st.as_ref().map(|(bbox, interval)| {
            let mut r = Dictionary::id_ranges(&dict.encoder().query_ranges(bbox, interval));
            r.sort_unstable();
            r
        });
        let mut sub = Subscription::new(id, query, ranges, capacity);
        let handle = sub.handle();
        // Backfill: emit everything the committed state already matches.
        let (ids, _) = self.eval_star(&dict, &generation, sub.query(), StExecution::Pushdown);
        for s in ids {
            sub.emit(s, dict.term_of(s).expect("ids come from the store").clone(), None);
        }
        self.subs.lock().expect("store lock poisoned").push(sub);
        handle
    }

    /// Ingests a batch of triples: dictionary-encodes them (deriving
    /// spatio-temporal anchors from `asWKT`/`hasTemporalFeature` literals),
    /// freezes one segment per touched partition, publishes the successor
    /// generation, and evaluates every subscription against the new state.
    /// Concurrent readers observe either the previous or the new
    /// generation, never a partial batch.
    pub fn ingest_batch(&self, triples: &[Triple]) -> BatchSummary {
        let t0 = Instant::now();
        let _w = self.writer.lock().expect("store lock poisoned");
        if triples.is_empty() {
            let generation = self.committed.read().expect("store lock poisoned").clone();
            return BatchSummary {
                generation: generation.number,
                watermark: generation.watermark,
                ..BatchSummary::default()
            };
        }

        // Pass 1: collect anchors — subjects carrying both a WKT point and
        // a temporal literal in this batch.
        let wkt_p = vocab::as_wkt();
        let time_p = vocab::has_time();
        let mut anchors: HashMap<&Term, (Option<GeoPoint>, Option<Timestamp>)> = HashMap::new();
        for t in triples {
            if t.p == wkt_p {
                if let Term::Literal(Literal::Wkt(s)) = &t.o {
                    if let Some(point) = parse_point_wkt(s) {
                        anchors.entry(&t.s).or_default().0 = Some(point);
                    }
                }
            } else if t.p == time_p {
                if let Term::Literal(Literal::DateTime(ms)) = &t.o {
                    anchors.entry(&t.s).or_default().1 = Some(Timestamp(*ms));
                }
            }
        }

        // Pass 2: encode. Anchored subjects are st-encoded at their first
        // appearance (in triple order, so id assignment is deterministic);
        // everything else gets plain ids in encounter order — exactly the
        // order `KnowledgeStore::ingest_node` produces for the same data.
        let mut new_st = 0u64;
        let mut per_part: Vec<Vec<EncodedTriple>> = vec![Vec::new(); self.config.partitions];
        let mut batch_subjects: HashSet<TermId> = HashSet::new();
        {
            let mut dict = self.dict.write().expect("store lock poisoned");
            for t in triples {
                if dict.id_of(&t.s).is_none() {
                    if let Some((Some(point), Some(ts))) = anchors.get(&t.s) {
                        let id = dict.encode_st(&t.s, point, *ts);
                        if Dictionary::is_st(id) {
                            new_st += 1;
                        }
                    }
                }
                let s = dict.encode(&t.s);
                let p = dict.encode(&t.p);
                let o = dict.encode(&t.o);
                batch_subjects.insert(s);
                per_part[partition_index(s, self.config.partitions)].push(EncodedTriple { s, p, o });
            }
        }
        self.st_subjects.fetch_add(new_st, Ordering::Relaxed);

        // Freeze one segment per touched partition and publish the
        // successor generation: readers switch from the old state to the
        // new one at a single pointer swap.
        let prev = self.committed.read().expect("store lock poisoned").clone();
        let mut segments = prev.segments.clone();
        for (part, encoded) in per_part.into_iter().enumerate() {
            if encoded.is_empty() {
                continue;
            }
            let mut layout = make_layout(self.config.layout);
            for e in encoded {
                layout.insert(e);
            }
            segments[part].push(Arc::from(layout));
        }
        let generation = Arc::new(Generation {
            number: prev.number + 1,
            watermark: prev.watermark + triples.len() as u64,
            segments,
        });
        *self.committed.write().expect("store lock poisoned") = generation.clone();

        // Continuous queries: only subjects touched by this batch can have
        // become matches (star-joins are monotone), evaluated in sorted id
        // order for deterministic emission.
        let mut candidates: Vec<TermId> = batch_subjects.into_iter().collect();
        candidates.sort_unstable();
        let mut summary = BatchSummary {
            triples: triples.len() as u64,
            new_st_subjects: new_st,
            generation: generation.number,
            watermark: generation.watermark,
            ..BatchSummary::default()
        };
        let dict = self.dict.read().expect("store lock poisoned");
        let mut subs = self.subs.lock().expect("store lock poisoned");
        for sub in subs.iter_mut() {
            let Some(arms) = encode_arms(&dict, sub.query()) else {
                continue;
            };
            for &s in &candidates {
                if sub.already_emitted(s) {
                    continue;
                }
                // Spatio-temporal pushdown: two integer comparisons per
                // candidate before any pattern matching.
                if let Some(ranges) = sub.ranges() {
                    if !Dictionary::id_in_ranges(ranges, s) {
                        continue;
                    }
                }
                if !arms
                    .iter()
                    .all(|&(p, o)| generation.subject_has(s, p, o, self.config.partitions))
                {
                    continue;
                }
                if !anchor_passes(&dict, sub.query(), s) {
                    continue;
                }
                let latency = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                sub.emit(s, dict.term_of(s).expect("ids come from the store").clone(), Some(latency));
                summary.new_matches += 1;
                summary.match_ns.push(latency);
            }
        }
        summary
    }

    /// The shared star executor over a pinned generation: seed scan (with
    /// pushdown when enabled), semi-join of the remaining arms, exact
    /// anchor refinement. Returns sorted matching ids — the same answer
    /// and [`QueryStats`] semantics as
    /// [`KnowledgeStore::execute_star`](crate::KnowledgeStore::execute_star).
    fn eval_star(
        &self,
        dict: &Dictionary,
        generation: &Generation,
        q: &StarQuery,
        exec: StExecution,
    ) -> (Vec<TermId>, QueryStats) {
        let mut stats = QueryStats::default();
        if q.arms.is_empty() {
            return (Vec::new(), stats);
        }
        let Some(arms) = encode_arms(dict, q) else {
            return (Vec::new(), stats);
        };
        let pushdown_ranges: Option<Vec<(TermId, TermId)>> = match (exec, &q.st) {
            (StExecution::Pushdown, Some((bbox, interval))) => {
                let mut r = Dictionary::id_ranges(&dict.encoder().query_ranges(bbox, interval));
                r.sort_unstable();
                Some(r)
            }
            _ => None,
        };
        let seed_idx = arms.iter().position(|(_, o)| o.is_some()).unwrap_or(0);
        let (seed_p, seed_o) = arms[seed_idx];
        let mut candidates: HashSet<TermId> = HashSet::new();
        for part in &generation.segments {
            for seg in part {
                let mut subs = seg.subjects_matching(seed_p, seed_o);
                if let Some(ranges) = pushdown_ranges.as_deref() {
                    subs.retain(|&s| Dictionary::id_in_ranges(ranges, s));
                }
                candidates.extend(subs);
            }
        }
        stats.seed_candidates = candidates.len() as u64;
        for (i, &(p, o)) in arms.iter().enumerate() {
            if i == seed_idx {
                continue;
            }
            candidates.retain(|&s| generation.subject_has(s, p, o, self.config.partitions));
        }
        stats.pattern_matches = candidates.len() as u64;
        let mut results: Vec<TermId> =
            candidates.into_iter().filter(|&s| anchor_passes(dict, q, s)).collect();
        results.sort_unstable();
        stats.results = results.len() as u64;
        (results, stats)
    }
}

/// Point-in-time statistics of a [`LiveStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStoreStats {
    /// Committed generation number.
    pub generation: u64,
    /// Committed triples.
    pub watermark: u64,
    /// Frozen segments across all partitions.
    pub segments: u64,
    /// Subjects in the spatio-temporal id class.
    pub st_subjects: u64,
    /// Registered subscriptions.
    pub subscriptions: u64,
    /// Matches emitted across all subscriptions.
    pub matches_emitted: u64,
    /// Matches truncated from subscription topics by slow subscribers
    /// (drop-oldest overflow; the subscriber observes `Lagged`).
    pub match_drops: u64,
}

/// A pinned, isolated read view of a [`LiveStore`]: queries answer from
/// the generation committed when the snapshot was taken, unaffected by
/// concurrent ingestion.
pub struct LiveSnapshot<'a> {
    store: &'a LiveStore,
    generation: Arc<Generation>,
}

impl LiveSnapshot<'_> {
    /// The pinned generation.
    pub fn generation(&self) -> &Generation {
        &self.generation
    }

    /// Committed triples at pin time — always a batch boundary.
    pub fn triple_count(&self) -> u64 {
        self.generation.watermark
    }

    /// Executes a star query against the pinned state, with the same
    /// semantics and [`QueryStats`] as
    /// [`KnowledgeStore::execute_star`](crate::KnowledgeStore::execute_star).
    pub fn execute_star(&self, q: &StarQuery, exec: StExecution) -> (Vec<Term>, QueryStats) {
        let dict = self.store.dict.read().expect("store lock poisoned");
        let (ids, stats) = self.store.eval_star(&dict, &self.generation, q, exec);
        let terms = ids
            .into_iter()
            .map(|id| dict.term_of(id).expect("result ids come from the store").clone())
            .collect();
        (terms, stats)
    }

    /// Objects of `(subject, predicate)` in the pinned state.
    pub fn objects_of(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        let dict = self.store.dict.read().expect("store lock poisoned");
        let (Some(s), Some(p)) = (dict.id_of(subject), dict.id_of(predicate)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for seg in &self.generation.segments[partition_index(s, self.store.config.partitions)] {
            out.extend(seg.objects_of(s, p));
        }
        out.into_iter().filter_map(|o| dict.term_of(o).cloned()).collect()
    }
}

/// Emits the triples [`KnowledgeStore::ingest_node`](crate::KnowledgeStore::ingest_node)
/// callers would pass, in live form: the anchor triples (`asWKT` +
/// `hasTemporalFeature`) that let the live path re-derive the node's
/// spatio-temporal anchor. Test/fixture helper.
pub fn anchored_node_triples(node: &Term, point: &GeoPoint, ts: Timestamp, extra: &[Triple]) -> Vec<Triple> {
    let mut out = vec![
        Triple::new(node.clone(), vocab::as_wkt(), Term::wkt(point.to_wkt())),
        Triple::new(node.clone(), vocab::has_time(), Term::datetime(ts.millis())),
    ];
    out.extend(extra.iter().cloned());
    out
}

// StarMatch is re-exported here for discoverability next to the store.
pub use crate::subscribe::StarMatch as LiveStarMatch;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutKind;
    use crate::store::KnowledgeStore;
    use datacron_geo::{BoundingBox, EquiGrid, TimeInterval};

    fn encoder() -> StCellEncoder {
        let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 16, 16);
        StCellEncoder::new(grid, Timestamp(0), 60_000)
    }

    fn node_graph(i: usize) -> (Term, GeoPoint, Timestamp, Vec<Triple>) {
        let node = Term::iri(format!("n:{i}"));
        let point = GeoPoint::new((i % 100) as f64 * 0.1, ((i / 100) % 100) as f64 * 0.1);
        let ts = Timestamp((i as i64 % 50) * 30_000);
        let event = if i.is_multiple_of(4) { "turn" } else { "cruise" };
        let extra = vec![
            Triple::new(node.clone(), Term::iri("p:type"), Term::iri("c:Node")),
            Triple::new(node.clone(), Term::iri("p:event"), Term::str(event)),
            Triple::new(node.clone(), Term::iri("p:speed"), Term::double(i as f64)),
        ];
        (node.clone(), point, ts, anchored_node_triples(&node, &point, ts, &extra))
    }

    fn turn_query(st: Option<(BoundingBox, TimeInterval)>) -> StarQuery {
        StarQuery {
            arms: vec![
                (Term::iri("p:type"), Some(Term::iri("c:Node"))),
                (Term::iri("p:event"), Some(Term::str("turn"))),
                (Term::iri("p:speed"), None),
            ],
            st,
        }
    }

    fn st_window() -> Option<(BoundingBox, TimeInterval)> {
        Some((
            BoundingBox::new(1.0, 0.0, 4.0, 0.4),
            TimeInterval::new(Timestamp(0), Timestamp(600_000)),
        ))
    }

    #[test]
    fn wkt_round_trips_exactly() {
        for p in [
            GeoPoint::new(3.1, 7.4),
            GeoPoint::new(-0.000001, 89.999999),
            GeoPoint::new(0.1 + 0.2, 1.0 / 3.0),
        ] {
            let parsed = parse_point_wkt(&p.to_wkt()).unwrap();
            assert_eq!(parsed.lon.to_bits(), p.lon.to_bits());
            assert_eq!(parsed.lat.to_bits(), p.lat.to_bits());
        }
        assert!(parse_point_wkt("LINESTRING (0 0, 1 1)").is_none());
        assert!(parse_point_wkt("POINT (1 2 3)").is_none());
        assert!(parse_point_wkt("POINT (x y)").is_none());
    }

    #[test]
    fn live_batches_equal_batch_store() {
        // Stream the fixture through the live store in many small batches;
        // the final snapshot must answer exactly like a KnowledgeStore
        // batch-loaded with ingest_node from the same data.
        for layout in [
            LayoutKind::TriplesTable,
            LayoutKind::VerticalPartitioning,
            LayoutKind::PropertyTable,
        ] {
            let config = StoreConfig { layout, partitions: 3 };
            let live = LiveStore::new(encoder(), config.clone());
            let mut batch = KnowledgeStore::new(encoder(), config);
            for i in 0..400 {
                let (node, point, ts, triples) = node_graph(i);
                live.ingest_batch(&triples);
                batch.ingest_node(&node, &point, ts, &triples);
            }
            assert_eq!(live.triple_count() as usize, batch.triple_count());
            for st in [None, st_window()] {
                for exec in [StExecution::Pushdown, StExecution::PostFilter] {
                    let (a, sa) = live.snapshot().execute_star(&turn_query(st), exec);
                    let (b, sb) = batch.execute_star(&turn_query(st), exec);
                    // Ids are assigned in the same order on both paths, so
                    // even the sorted term sequences agree.
                    assert_eq!(a, b, "layout {layout:?} exec {exec:?} st {:?}", st.is_some());
                    assert_eq!(sa, sb, "stats disagree: layout {layout:?} exec {exec:?}");
                }
            }
            // Anchors derived from WKT equal the out-of-band ones.
            for i in [0usize, 7, 123, 399] {
                let (node, ..) = node_graph(i);
                assert_eq!(live.anchor_of(&node), batch.anchor_of(&node), "node {i}");
            }
        }
    }

    #[test]
    fn subscription_emits_exactly_the_final_match_set() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        let handle = live.subscribe(turn_query(st_window()), 1024);
        let mut emitted = Vec::new();
        for i in 0..300 {
            let (_, _, _, triples) = node_graph(i);
            live.ingest_batch(&triples);
        }
        let mut consumer = handle.matches;
        emitted.extend(consumer.drain().expect("bounded topic not overflowed"));
        let subjects: HashSet<Term> = emitted.iter().map(|m| m.subject.clone()).collect();
        assert_eq!(emitted.len(), subjects.len(), "each subject emitted once");
        let (final_set, _) = live.snapshot().execute_star(&turn_query(st_window()), StExecution::Pushdown);
        assert_eq!(subjects, final_set.into_iter().collect::<HashSet<_>>());
        assert!(!subjects.is_empty(), "fixture must produce matches");
        assert!(emitted.iter().all(|m| m.subscription == handle.id));
    }

    #[test]
    fn late_subscription_backfills_committed_matches() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        for i in 0..120 {
            let (_, _, _, triples) = node_graph(i);
            live.ingest_batch(&triples);
        }
        let mut handle = live.subscribe(turn_query(None), 1024);
        let backfilled = handle.matches.drain().expect("no overflow");
        let (final_set, _) = live.snapshot().execute_star(&turn_query(None), StExecution::Pushdown);
        assert_eq!(backfilled.len(), final_set.len());
        // New batches keep appending only new matches.
        for i in 120..160 {
            let (_, _, _, triples) = node_graph(i);
            live.ingest_batch(&triples);
        }
        let incremental = handle.matches.drain().expect("no overflow");
        assert_eq!(backfilled.len() + incremental.len(), final_set.len() + 10,
            "i in 120..160 adds 10 turn nodes");
    }

    #[test]
    fn snapshots_pin_their_generation() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        let (_, _, _, t0) = node_graph(0);
        live.ingest_batch(&t0);
        let pinned = live.snapshot();
        let w0 = pinned.triple_count();
        let (_, _, _, t1) = node_graph(1);
        live.ingest_batch(&t1);
        assert_eq!(pinned.triple_count(), w0, "pinned snapshot is immutable");
        assert_eq!(live.snapshot().triple_count(), w0 + t1.len() as u64);
        assert_eq!(pinned.generation().triple_count(), w0, "watermark equals stored triples");
    }

    #[test]
    fn concurrent_readers_never_observe_partial_batches() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        let batch_len = node_graph(0).3.len() as u64;
        std::thread::scope(|scope| {
            let store = &live;
            let reader = scope.spawn(move || {
                let mut observed = Vec::new();
                for _ in 0..2000 {
                    let snap = store.snapshot();
                    let w = snap.triple_count();
                    assert_eq!(snap.generation().triple_count(), w, "segments sum to watermark");
                    assert_eq!(w % batch_len, 0, "watermark is a batch boundary");
                    observed.push(w);
                }
                observed
            });
            for i in 0..300 {
                let (_, _, _, triples) = node_graph(i);
                assert_eq!(triples.len() as u64, batch_len);
                store.ingest_batch(&triples);
            }
            let observed = reader.join().expect("reader panicked");
            assert!(observed.windows(2).all(|w| w[0] <= w[1]), "watermarks are monotone");
        });
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        let summary = live.ingest_batch(&[]);
        assert_eq!(summary.generation, 0);
        assert_eq!(summary.triples, 0);
        assert_eq!(live.snapshot().generation().number(), 0);
    }

    #[test]
    fn stats_track_ingest_and_matches() {
        let live = LiveStore::new(encoder(), StoreConfig::default());
        let _handle = live.subscribe(turn_query(None), 64);
        for i in 0..40 {
            let (_, _, _, triples) = node_graph(i);
            live.ingest_batch(&triples);
        }
        let stats = live.stats();
        assert_eq!(stats.generation, 40);
        assert_eq!(stats.watermark, live.triple_count());
        assert_eq!(stats.st_subjects, 40, "every node carries an anchor");
        assert_eq!(stats.subscriptions, 1);
        assert_eq!(stats.matches_emitted, 10, "i % 4 == 0 in 0..40");
        assert_eq!(stats.match_drops, 0);
    }
}

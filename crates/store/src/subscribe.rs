//! Continuous star-join subscriptions over the live store.
//!
//! A subscription pairs a [`StarQuery`] with a bounded output
//! [`Topic`]: the store publishes a [`StarMatch`] the first time a subject
//! satisfies every arm (and the exact spatio-temporal refinement), and
//! never again for that subject. Star-joins over an append-only store are
//! monotone — a subject that matches keeps matching — so emit-once is
//! well-defined and the emission union is independent of batching.
//!
//! The output topic is bounded with drop-oldest overflow: a subscriber
//! that stalls loses the *oldest* matches and observes a `Lagged` signal
//! on its next poll (the truncation is counted, never silent), at which
//! point it can re-sync with one snapshot query. This keeps a slow
//! subscriber from exerting backpressure on the ingestion hot path while
//! staying within the bus's loss-accounting contract.

use crate::dictionary::TermId;
use crate::store::StarQuery;
use datacron_rdf::term::Term;
use datacron_stream::bus::{Consumer, OverflowPolicy, Topic};
use std::collections::HashSet;
use std::sync::Arc;

/// One continuous-query match: `subject` satisfied every arm of the
/// subscription's star query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarMatch {
    /// The subscription that matched.
    pub subscription: u64,
    /// The matching subject.
    pub subject: Term,
    /// Ingest-to-match latency in nanoseconds (from the start of the
    /// batch that completed the match); `None` for backfilled matches
    /// that were already present when the subscription was registered.
    pub latency_ns: Option<u64>,
}

/// The subscriber's end of a continuous query.
pub struct SubscriptionHandle {
    /// Subscription id (echoed in every [`StarMatch`]).
    pub id: u64,
    /// Consumer over the match topic. `Err(Lagged)` means the subscriber
    /// fell more than the topic capacity behind and old matches were
    /// truncated — re-sync with a snapshot query.
    pub matches: Consumer<StarMatch>,
    /// The match topic itself (for health/stats or extra consumers).
    pub topic: Arc<Topic<StarMatch>>,
}

/// Point-in-time statistics of one subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Subscription id.
    pub id: u64,
    /// Matches emitted so far (monotone).
    pub emitted: u64,
    /// Matches truncated from the output topic by drop-oldest overflow.
    pub dropped: u64,
    /// Output topic capacity.
    pub capacity: usize,
}

/// Store-side state of one continuous query.
pub(crate) struct Subscription {
    id: u64,
    query: StarQuery,
    /// Pre-computed sorted pushdown ranges (`None` when the query has no
    /// spatio-temporal constraint).
    ranges: Option<Vec<(TermId, TermId)>>,
    topic: Arc<Topic<StarMatch>>,
    capacity: usize,
    /// Subjects already emitted (emit-once contract).
    emitted: HashSet<TermId>,
}

impl Subscription {
    pub(crate) fn new(
        id: u64,
        query: StarQuery,
        ranges: Option<Vec<(TermId, TermId)>>,
        capacity: usize,
    ) -> Self {
        Self {
            id,
            query,
            ranges,
            topic: Topic::bounded(format!("kg.sub.{id}"), capacity.max(1), OverflowPolicy::DropOldest),
            capacity: capacity.max(1),
            emitted: HashSet::new(),
        }
    }

    pub(crate) fn handle(&self) -> SubscriptionHandle {
        SubscriptionHandle {
            id: self.id,
            matches: self.topic.consumer(),
            topic: self.topic.clone(),
        }
    }

    pub(crate) fn query(&self) -> &StarQuery {
        &self.query
    }

    pub(crate) fn ranges(&self) -> Option<&[(TermId, TermId)]> {
        self.ranges.as_deref()
    }

    pub(crate) fn already_emitted(&self, s: TermId) -> bool {
        self.emitted.contains(&s)
    }

    pub(crate) fn emit(&mut self, s: TermId, subject: Term, latency_ns: Option<u64>) {
        if !self.emitted.insert(s) {
            return;
        }
        // DropOldest never refuses; overflow truncates the oldest match
        // and is visible in `dropped()` and the subscriber's Lagged error.
        self.topic.publish(StarMatch {
            subscription: self.id,
            subject,
            latency_ns,
        });
    }

    pub(crate) fn emitted_count(&self) -> u64 {
        self.emitted.len() as u64
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.topic.stats().dropped
    }

    pub(crate) fn stats(&self) -> SubscriptionStats {
        SubscriptionStats {
            id: self.id,
            emitted: self.emitted_count(),
            dropped: self.dropped(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_query() -> StarQuery {
        StarQuery {
            arms: vec![(Term::iri("p:a"), None)],
            st: None,
        }
    }

    #[test]
    fn emit_once_per_subject() {
        let mut sub = Subscription::new(7, any_query(), None, 16);
        let mut handle = sub.handle();
        sub.emit(1, Term::iri("s:1"), Some(10));
        sub.emit(1, Term::iri("s:1"), Some(20));
        sub.emit(2, Term::iri("s:2"), None);
        let got = handle.matches.drain().expect("no overflow");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].subject, Term::iri("s:1"));
        assert_eq!(got[0].latency_ns, Some(10));
        assert_eq!(got[1].latency_ns, None);
        assert_eq!(sub.emitted_count(), 2);
    }

    #[test]
    fn slow_subscriber_sees_lagged_not_silence() {
        let mut sub = Subscription::new(0, any_query(), None, 4);
        let mut handle = sub.handle();
        for i in 0..10u64 {
            sub.emit(i, Term::iri(format!("s:{i}")), Some(i));
        }
        let err = handle.matches.drain().expect_err("must signal truncation");
        assert_eq!(err.skipped, 6);
        assert_eq!(sub.dropped(), 6);
        let got = handle.matches.drain().expect("caught up");
        assert_eq!(got.len(), 4, "newest matches survive");
        assert_eq!(got.last().unwrap().subject, Term::iri("s:9"));
    }

    #[test]
    fn stats_reflect_capacity_and_counts() {
        let mut sub = Subscription::new(3, any_query(), Some(vec![(1, 2)]), 8);
        sub.emit(1, Term::iri("s:1"), None);
        let stats = sub.stats();
        assert_eq!(
            stats,
            SubscriptionStats {
                id: 3,
                emitted: 1,
                dropped: 0,
                capacity: 8
            }
        );
        assert_eq!(sub.ranges(), Some(&[(1u64, 2u64)][..]));
    }
}

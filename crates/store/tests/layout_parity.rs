//! `execute_star` parity across storage layouts: the same ingested data
//! must produce identical results — and identical `QueryStats` — under
//! the triples-table, vertical-partitioning, and property-table layouts,
//! for both execution modes. Candidate sets are set-valued (duplicates
//! from a layout's physical organisation are collapsed before counting),
//! so every `QueryStats` field is defined and comparable across layouts.

use datacron_geo::{BoundingBox, EquiGrid, GeoPoint, StCellEncoder, TimeInterval, Timestamp};
use datacron_rdf::term::{Term, Triple};
use datacron_store::{KnowledgeStore, LayoutKind, StExecution, StarQuery, StoreConfig};

const LAYOUTS: [LayoutKind; 3] = [
    LayoutKind::TriplesTable,
    LayoutKind::VerticalPartitioning,
    LayoutKind::PropertyTable,
];

fn encoder() -> StCellEncoder {
    let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 16, 16);
    StCellEncoder::new(grid, Timestamp(0), 60_000)
}

/// A fixture with st-anchored semantic nodes, plain triples, duplicate
/// triples, and multi-valued predicates — the cases where layouts differ
/// most in physical organisation.
fn load(store: &mut KnowledgeStore, partitions_hint: usize) {
    assert!(partitions_hint > 0);
    for i in 0..240usize {
        let node = Term::iri(format!("n:{i}"));
        let point = GeoPoint::new((i % 100) as f64 * 0.1, ((i / 10) % 100) as f64 * 0.1);
        let ts = Timestamp((i as i64 % 40) * 45_000);
        let event = match i % 3 {
            0 => "turn",
            1 => "cruise",
            _ => "stop",
        };
        let mut triples = vec![
            Triple::new(node.clone(), Term::iri("p:type"), Term::iri("c:Node")),
            Triple::new(node.clone(), Term::iri("p:event"), Term::str(event)),
            Triple::new(node.clone(), Term::iri("p:speed"), Term::double(i as f64 * 0.5)),
        ];
        // Multi-valued predicate: several observers per node.
        for o in 0..(i % 3) {
            triples.push(Triple::new(
                node.clone(),
                Term::iri("p:observed_by"),
                Term::iri(format!("s:{o}")),
            ));
        }
        // Exact duplicate triple (idempotence differs per layout's physical
        // storage; logical answers must not).
        triples.push(Triple::new(node.clone(), Term::iri("p:type"), Term::iri("c:Node")));
        store.ingest_node(&node, &point, ts, &triples);
    }
    // Plain (non-anchored) triples sharing the predicates.
    for i in 0..40usize {
        store.ingest(&Triple::new(
            Term::iri(format!("x:{i}")),
            Term::iri("p:type"),
            Term::iri("c:Node"),
        ));
        store.ingest(&Triple::new(
            Term::iri(format!("x:{i}")),
            Term::iri("p:event"),
            Term::str("turn"),
        ));
    }
}

fn queries() -> Vec<StarQuery> {
    let window = (
        BoundingBox::new(1.0, 1.0, 6.0, 6.0),
        TimeInterval::new(Timestamp(0), Timestamp(900_000)),
    );
    vec![
        // Constant-object seed, no st constraint.
        StarQuery {
            arms: vec![
                (Term::iri("p:type"), Some(Term::iri("c:Node"))),
                (Term::iri("p:event"), Some(Term::str("turn"))),
            ],
            st: None,
        },
        // Open arm included.
        StarQuery {
            arms: vec![
                (Term::iri("p:event"), Some(Term::str("cruise"))),
                (Term::iri("p:speed"), None),
                (Term::iri("p:type"), None),
            ],
            st: Some(window),
        },
        // No constant object anywhere: seed falls back to the first arm.
        StarQuery {
            arms: vec![(Term::iri("p:event"), None), (Term::iri("p:observed_by"), None)],
            st: Some(window),
        },
        // Unknown term: empty everywhere.
        StarQuery {
            arms: vec![(Term::iri("p:missing"), None)],
            st: None,
        },
    ]
}

#[test]
fn execute_star_parity_across_layouts() {
    for partitions in [1usize, 4] {
        let stores: Vec<(LayoutKind, KnowledgeStore)> = LAYOUTS
            .iter()
            .map(|&layout| {
                let mut s = KnowledgeStore::new(encoder(), StoreConfig { layout, partitions });
                load(&mut s, partitions);
                (layout, s)
            })
            .collect();
        for (qi, q) in queries().iter().enumerate() {
            for exec in [StExecution::Pushdown, StExecution::PostFilter] {
                let (base_results, base_stats) = stores[0].1.execute_star(q, exec);
                for (layout, store) in &stores[1..] {
                    let (results, stats) = store.execute_star(q, exec);
                    assert_eq!(
                        results, base_results,
                        "results diverge: query {qi} {exec:?} {layout:?} vs {:?} ({partitions} partitions)",
                        stores[0].0
                    );
                    assert_eq!(
                        stats, base_stats,
                        "stats diverge: query {qi} {exec:?} {layout:?} vs {:?} ({partitions} partitions)",
                        stores[0].0
                    );
                }
            }
        }
    }
}

#[test]
fn pushdown_and_postfilter_agree_on_results_per_layout() {
    for layout in LAYOUTS {
        let mut store = KnowledgeStore::new(encoder(), StoreConfig { layout, partitions: 4 });
        load(&mut store, 4);
        for (qi, q) in queries().iter().enumerate() {
            let (push, push_stats) = store.execute_star(q, StExecution::Pushdown);
            let (post, post_stats) = store.execute_star(q, StExecution::PostFilter);
            assert_eq!(push, post, "query {qi} {layout:?}");
            assert_eq!(push_stats.results, post_stats.results, "query {qi} {layout:?}");
            // Pushdown can only shrink the seed set.
            assert!(
                push_stats.seed_candidates <= post_stats.seed_candidates,
                "query {qi} {layout:?}"
            );
        }
    }
}

//! Property tests for the dictionary encoding: round-trips, anchor
//! stability, and id-range membership edge cases.

use datacron_geo::stcell::IdRange;
use datacron_geo::{BoundingBox, EquiGrid, GeoPoint, StCellEncoder, StCellId, Timestamp};
use datacron_rdf::term::Term;
use datacron_store::Dictionary;
use proptest::prelude::*;

const ST_FLAG: u64 = 1 << 63;
const SEQ_BITS: u32 = 24;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

fn dict() -> Dictionary {
    let grid = EquiGrid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 16, 16);
    Dictionary::new(StCellEncoder::new(grid, Timestamp(0), 60_000))
}

/// Sorted id ranges from raw cell bounds, the way query pushdown builds
/// them.
fn ranges_of(cells: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let raw: Vec<IdRange> = cells
        .iter()
        .map(|&(a, b)| IdRange {
            lo: StCellId(a.min(b)),
            hi: StCellId(a.max(b)),
        })
        .collect();
    let mut ranges = Dictionary::id_ranges(&raw);
    ranges.sort_unstable();
    ranges
}

/// Reference membership: linear scan over the (possibly overlapping)
/// ranges.
fn in_ranges_naive(ranges: &[(u64, u64)], id: u64) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= id && id <= hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `encode` / `term_of` round-trip: every encoded term decodes back to
    /// itself, re-encoding is stable, and the dictionary length equals the
    /// number of distinct terms.
    #[test]
    fn encode_term_of_round_trip(names in proptest::collection::vec(0u32..40, 1..60)) {
        let mut d = dict();
        let terms: Vec<Term> = names.iter().map(|n| Term::iri(format!("t:{n}"))).collect();
        let ids: Vec<u64> = terms.iter().map(|t| d.encode(t)).collect();
        for (term, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(d.term_of(id), Some(term));
            prop_assert_eq!(d.id_of(term), Some(id));
            prop_assert_eq!(d.encode(term), id, "re-encoding must be stable");
            prop_assert!(!Dictionary::is_st(id));
        }
        let distinct: std::collections::HashSet<&Term> = terms.iter().collect();
        prop_assert_eq!(d.len(), distinct.len());
    }

    /// `encode_st` anchor stability: the first anchor wins — re-encoding
    /// the same term with a different position/time returns the original
    /// id and leaves the stored anchor bit-identical; the embedded cell
    /// always equals the encoder's cell for that anchor.
    #[test]
    fn encode_st_anchor_stability(
        entities in proptest::collection::vec(
            (0u32..20, 0.0f64..10.0, 0.0f64..10.0, 0i64..3_600_000),
            1..40,
        ),
    ) {
        let mut d = dict();
        let mut first_anchor: std::collections::HashMap<u32, (u64, GeoPoint, Timestamp)> =
            std::collections::HashMap::new();
        for &(n, lon, lat, ms) in &entities {
            let term = Term::iri(format!("n:{n}"));
            let point = GeoPoint::new(lon, lat);
            let ts = Timestamp(ms);
            let id = d.encode_st(&term, &point, ts);
            match first_anchor.get(&n) {
                None => {
                    prop_assert!(Dictionary::is_st(id), "in-grid anchors get st ids");
                    let cell = Dictionary::st_cell(id).unwrap();
                    prop_assert_eq!(cell, d.encoder().encode(&point, ts).unwrap());
                    prop_assert_eq!(d.anchor(id), Some((point, ts)));
                    first_anchor.insert(n, (id, point, ts));
                }
                Some(&(first_id, fp, ft)) => {
                    prop_assert_eq!(id, first_id, "re-encoding returns the original id");
                    let (ap, at) = d.anchor(id).unwrap();
                    prop_assert_eq!(ap.lon.to_bits(), fp.lon.to_bits());
                    prop_assert_eq!(ap.lat.to_bits(), fp.lat.to_bits());
                    prop_assert_eq!(at, ft, "the first anchor wins");
                }
            }
        }
    }

    /// `id_in_ranges` agrees with a naive linear scan on random
    /// (overlapping, adjacent, duplicated) range sets, probed at the
    /// boundary ids of every range and around the ST flag bit.
    #[test]
    fn id_in_ranges_matches_naive(
        cells in proptest::collection::vec((0u64..200, 0u64..200), 0..12),
        probes in proptest::collection::vec(0u64..(210u64 << 24), 0..32),
    ) {
        let ranges = ranges_of(&cells);
        let mut ids: Vec<u64> = probes.iter().map(|p| ST_FLAG | p).collect();
        for &(lo, hi) in &ranges {
            // Probe every boundary and its neighbours, including values
            // that step just outside the st id class.
            ids.extend([lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1), lo & !ST_FLAG, hi & !ST_FLAG]);
        }
        ids.extend([0, ST_FLAG, ST_FLAG - 1, u64::MAX]);
        for id in ids {
            prop_assert_eq!(
                Dictionary::id_in_ranges(&ranges, id),
                in_ranges_naive(&ranges, id),
                "id {:#x} ranges {:?}", id, ranges
            );
        }
    }
}

#[test]
fn empty_ranges_match_nothing() {
    let ranges = ranges_of(&[]);
    assert!(ranges.is_empty());
    for id in [0u64, 1, ST_FLAG, ST_FLAG | 1, u64::MAX] {
        assert!(!Dictionary::id_in_ranges(&ranges, id));
    }
}

#[test]
fn adjacent_and_overlapping_ranges_have_no_gaps() {
    // Cells 3..=5 and 6..=8 are adjacent: the id just past cell 5's last
    // sequence number is cell 6's first.
    let ranges = ranges_of(&[(3, 5), (6, 8)]);
    let last_of_5 = ST_FLAG | (5u64 << SEQ_BITS) | SEQ_MASK;
    let first_of_6 = ST_FLAG | (6u64 << SEQ_BITS);
    assert_eq!(last_of_5 + 1, first_of_6);
    assert!(Dictionary::id_in_ranges(&ranges, last_of_5));
    assert!(Dictionary::id_in_ranges(&ranges, first_of_6));
    // Overlapping ranges behave like their union.
    let overlapping = ranges_of(&[(3, 6), (5, 8)]);
    for cell in 3..=8u64 {
        let id = ST_FLAG | (cell << SEQ_BITS) | 7;
        assert!(Dictionary::id_in_ranges(&overlapping, id), "cell {cell}");
    }
    assert!(!Dictionary::id_in_ranges(&overlapping, ST_FLAG | (2u64 << SEQ_BITS) | SEQ_MASK));
    assert!(!Dictionary::id_in_ranges(&overlapping, ST_FLAG | (9u64 << SEQ_BITS)));
}

#[test]
fn st_flag_boundary_ids() {
    // A range over cell 0 starts exactly at the ST flag; the largest plain
    // id (ST_FLAG - 1) must not match it.
    let ranges = ranges_of(&[(0, 0)]);
    assert_eq!(ranges[0].0, ST_FLAG);
    assert!(Dictionary::id_in_ranges(&ranges, ST_FLAG));
    assert!(!Dictionary::id_in_ranges(&ranges, ST_FLAG - 1));
    assert!(!Dictionary::id_in_ranges(&ranges, 0));
}

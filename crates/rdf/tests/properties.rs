//! Property tests for the RDF layer: BGP evaluation equals brute force,
//! graphs keep set semantics, template instantiation is total on bound
//! vectors.

use datacron_rdf::generator::{GraphTemplate, TermTemplate, TripleGenerator, VariableVector};
use datacron_rdf::graph::Graph;
use datacron_rdf::query::{evaluate, PatternTerm, QueryPattern};
use datacron_rdf::term::{Literal, Term, Triple};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_triples() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..40)
}

fn term(prefix: &str, i: u8) -> Term {
    Term::iri(format!("{prefix}:{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Graph insertion deduplicates: size equals the distinct triple count,
    /// and matching honours every mask.
    #[test]
    fn graph_set_semantics_and_masks(raw in arb_triples()) {
        let triples: Vec<Triple> = raw
            .iter()
            .map(|&(s, p, o)| Triple::new(term("s", s), term("p", p), term("o", o)))
            .collect();
        let distinct: HashSet<&Triple> = triples.iter().collect();
        let graph: Graph = triples.iter().cloned().collect();
        prop_assert_eq!(graph.len(), distinct.len());
        // Spot-check the (s, p, o) masks against brute force.
        for s in 0..6u8 {
            let expect = distinct.iter().filter(|t| t.s == term("s", s)).count();
            prop_assert_eq!(graph.matching(Some(&term("s", s)), None, None).len(), expect);
        }
        for p in 0..3u8 {
            let expect = distinct.iter().filter(|t| t.p == term("p", p)).count();
            prop_assert_eq!(graph.matching(None, Some(&term("p", p)), None).len(), expect);
        }
    }

    /// A two-pattern star query over random graphs equals the brute-force
    /// join.
    #[test]
    fn bgp_matches_brute_force(raw in arb_triples()) {
        let graph: Graph = raw
            .iter()
            .map(|&(s, p, o)| Triple::new(term("s", s), term("p", p), term("o", o)))
            .collect();
        let q = vec![
            QueryPattern::new(PatternTerm::var("x"), PatternTerm::iri("p:0"), PatternTerm::var("y")),
            QueryPattern::new(PatternTerm::var("x"), PatternTerm::iri("p:1"), PatternTerm::var("z")),
        ];
        let sols = evaluate(&graph, &q);
        // Brute force join over the raw triples.
        let distinct: HashSet<&(u8, u8, u8)> = raw.iter().collect();
        let mut expected = HashSet::new();
        for &&(s1, p1, o1) in &distinct {
            if p1 != 0 {
                continue;
            }
            for &&(s2, p2, o2) in &distinct {
                if p2 == 1 && s1 == s2 {
                    expected.insert((s1, o1, o2));
                }
            }
        }
        let got: HashSet<(u8, u8, u8)> = sols
            .iter()
            .map(|b| {
                let parse = |t: &Term| -> u8 {
                    t.as_iri().unwrap().split(':').nth(1).unwrap().parse().unwrap()
                };
                (parse(&b["x"]), parse(&b["y"]), parse(&b["z"]))
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Template instantiation succeeds for every pattern whose variables
    /// are bound, and the produced IRIs embed the lexical forms.
    #[test]
    fn templates_are_total_on_bound_vectors(id in 0i64..10_000, speed in 0.0f64..50.0) {
        let vars = VariableVector::new()
            .with("id", Literal::Int(id))
            .with("speed", Literal::Double(speed));
        let template = GraphTemplate::new()
            .pattern(
                TermTemplate::IriFunc("e:{id}".into()),
                TermTemplate::Const(Term::iri("p:speed")),
                TermTemplate::Var("speed".into()),
            )
            .pattern(
                TermTemplate::IriFunc("e:{id}".into()),
                TermTemplate::Const(Term::iri("p:type")),
                TermTemplate::Const(Term::iri("c:Entity")),
            );
        let mut gen = TripleGenerator::new(template);
        let triples = gen.generate(&vars);
        prop_assert_eq!(triples.len(), 2);
        prop_assert_eq!(gen.skipped_patterns(), 0);
        let expected_iri = format!("e:{id}");
        prop_assert_eq!(triples[0].s.as_iri(), Some(expected_iri.as_str()));
        prop_assert_eq!(&triples[0].o, &Term::double(speed));
    }
}

//! A string interner for hot-path RDF generation.
//!
//! Template instantiation builds every IRI with `format!` and rehashes
//! `String` variable names per record — fine for the flexible
//! [`generator`](crate::generator) framework, far too slow for a
//! million-records/sec real-time layer. [`Interner`] maps each distinct
//! string to a dense `u32` [`Sym`] backed by one append-only arena of
//! reference-counted strings, so the hot path passes and stores 4-byte
//! symbols and materialises [`Term`]s (an `Arc` clone, no copy) only at
//! the sink boundary where a triple is actually emitted.
//!
//! # Determinism
//!
//! Symbols are assigned in first-intern order, so two runs that intern the
//! same strings in the same order assign identical symbols. Symbols are
//! process-local handles: they are never checkpointed or sent across
//! shards — only the materialised terms are — so sharded and
//! single-threaded runs stay bit-identical regardless of per-shard intern
//! order.

use crate::term::{Literal, Term};
use datacron_geo::hash::FxHashMap;
use std::sync::Arc;

/// A dense handle to an interned string (index into the arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Append-only string arena with O(1) symbol lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    arena: Vec<Arc<str>>,
    index: FxHashMap<Arc<str>, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, returning its symbol; the same string always maps
    /// to the same symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.index.get(s) {
            return Sym(id);
        }
        let arc: Arc<str> = Arc::from(s);
        let id = u32::try_from(self.arena.len()).expect("interner overflow");
        self.arena.push(arc.clone());
        self.index.insert(arc, id);
        Sym(id)
    }

    /// The interned string behind a symbol.
    ///
    /// # Panics
    /// Panics when `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &Arc<str> {
        &self.arena[sym.0 as usize]
    }

    /// Materialises a symbol as an IRI term (one `Arc` clone, no copy).
    pub fn iri(&self, sym: Sym) -> Term {
        Term::Iri(self.resolve(sym).clone())
    }

    /// Materialises a symbol as a string-literal term.
    pub fn str_literal(&self, sym: Sym) -> Term {
        Term::Literal(Literal::Str(self.resolve(sym).clone()))
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("http://ex/a");
        let b = i.intern("http://ex/b");
        assert_ne!(a, b);
        assert_eq!(i.intern("http://ex/a"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(&**i.resolve(a), "http://ex/a");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn materialised_terms_share_the_arena_allocation() {
        let mut i = Interner::new();
        let s = i.intern("x:y");
        let t1 = i.iri(s);
        let t2 = i.iri(s);
        assert_eq!(t1, t2);
        assert_eq!(t1, Term::iri("x:y"));
        match (&t1, &t2) {
            (Term::Iri(a), Term::Iri(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        assert_eq!(i.str_literal(s), Term::Literal(Literal::str("x:y")));
    }
}

//! Data connectors for the surveillance sources.
//!
//! "The data connector is responsible to connect to a data source and accept
//! the data provided. It is capable of applying basic data cleaning
//! operations, computing and converting values, … e.g. extracting the
//! Well-Known-Text representation of a given geometry."
//!
//! Connectors turn domain records into [`VariableVector`]s, and this module
//! also ships the standard datAcron graph templates those vectors feed,
//! so `connector + template` lifts a whole stream with two lines of code.

use crate::generator::{GraphTemplate, TermTemplate, TripleGenerator, VariableVector};
use crate::term::{Literal, Triple};
use crate::vocab;
use datacron_geo::PositionReport;
use datacron_synopses::CriticalPoint;

/// Connects raw position reports to variable vectors.
pub fn position_report_vector(r: &PositionReport) -> VariableVector {
    VariableVector::new()
        .with("kind", Literal::str(r.entity.kind.to_string()))
        .with("id", Literal::Int(r.entity.id as i64))
        .with("ts", Literal::DateTime(r.ts.millis()))
        .with("wkt", Literal::wkt(r.point.to_wkt()))
        .with("lon", Literal::Double(r.point.lon))
        .with("lat", Literal::Double(r.point.lat))
        .with("speed", Literal::Double(r.speed_mps))
        .with("heading", Literal::Double(r.heading_deg))
        .with("altitude", Literal::Double(r.altitude_m))
}

/// Connects synopses critical points: the position-report fields plus the
/// critical-point kind annotation.
pub fn critical_point_vector(cp: &CriticalPoint) -> VariableVector {
    position_report_vector(&cp.report).with("event", Literal::str(cp.kind.label()))
}

/// The standard datAcron graph template for semantic nodes produced from
/// critical points: node typed as `:SemanticNode`, attached to the entity's
/// trajectory, annotated with geometry, time, kinematics, and event type.
pub fn semantic_node_template() -> GraphTemplate {
    let node = || TermTemplate::IriFunc(format!("{}node/{{kind}}/{{id}}/{{ts}}", vocab::DATACRON));
    let traj = || TermTemplate::IriFunc(format!("{}trajectory/{{kind}}/{{id}}", vocab::DATACRON));
    let entity = || TermTemplate::IriFunc(format!("{}{{kind}}/{{id}}", vocab::DATACRON));
    GraphTemplate::new()
        .pattern(node(), TermTemplate::Const(vocab::rdf_type()), TermTemplate::Const(vocab::semantic_node_class()))
        .pattern(traj(), TermTemplate::Const(vocab::rdf_type()), TermTemplate::Const(vocab::trajectory_class()))
        .pattern(traj(), TermTemplate::Const(vocab::of_moving_object()), entity())
        .pattern(traj(), TermTemplate::Const(vocab::has_node()), node())
        .pattern(node(), TermTemplate::Const(vocab::as_wkt()), TermTemplate::Var("wkt".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_time()), TermTemplate::Var("ts".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_speed()), TermTemplate::Var("speed".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_heading()), TermTemplate::Var("heading".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_altitude()), TermTemplate::Var("altitude".into()))
        .pattern(node(), TermTemplate::Const(vocab::event_type()), TermTemplate::Var("event".into()))
}

/// The raw-position template (no event annotation; positions typed
/// `:RawPosition`).
pub fn raw_position_template() -> GraphTemplate {
    let node = || TermTemplate::IriFunc(format!("{}raw/{{kind}}/{{id}}/{{ts}}", vocab::DATACRON));
    GraphTemplate::new()
        .pattern(node(), TermTemplate::Const(vocab::rdf_type()), TermTemplate::Const(vocab::raw_position_class()))
        .pattern(node(), TermTemplate::Const(vocab::as_wkt()), TermTemplate::Var("wkt".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_time()), TermTemplate::Var("ts".into()))
        .pattern(node(), TermTemplate::Const(vocab::has_speed()), TermTemplate::Var("speed".into()))
}

/// Lifts a stream of critical points into triples with the standard
/// template — the per-record path the RDF-generation experiment measures.
pub fn lift_critical_points(points: &[CriticalPoint]) -> Vec<Triple> {
    let mut gen = TripleGenerator::new(semantic_node_template());
    let mut out = Vec::with_capacity(points.len() * 10);
    for cp in points {
        out.extend(gen.generate(&critical_point_vector(cp)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{EntityId, GeoPoint, Timestamp};
    use datacron_synopses::CriticalKind;

    fn cp() -> CriticalPoint {
        let mut r = PositionReport::basic(
            EntityId::vessel(42),
            Timestamp::from_secs(100),
            GeoPoint::new(23.5, 37.9),
        );
        r.speed_mps = 7.2;
        r.heading_deg = 185.0;
        CriticalPoint::new(r, CriticalKind::ChangeInHeading { delta_deg: 25.0 })
    }

    #[test]
    fn connector_extracts_all_fields() {
        let v = critical_point_vector(&cp());
        assert_eq!(v.get("id"), Some(&Literal::Int(42)));
        assert_eq!(v.get("event"), Some(&Literal::str("change_in_heading")));
        assert_eq!(v.get("wkt"), Some(&Literal::wkt("POINT (23.5 37.9)")));
        assert_eq!(v.get("ts"), Some(&Literal::DateTime(100_000)));
    }

    #[test]
    fn semantic_node_template_emits_full_graph() {
        let triples = lift_critical_points(&[cp()]);
        assert_eq!(triples.len(), 10, "all ten patterns instantiate");
        // The node IRI is shared across its annotations.
        let node_subjects = triples
            .iter()
            .filter(|t| t.s.as_iri().is_some_and(|i| i.contains("node/vessel/42/100000")))
            .count();
        assert_eq!(node_subjects, 7, "type + wkt + time + speed + heading + altitude + event");
        // Trajectory links exist.
        assert!(triples.iter().any(|t| t.p == vocab::has_node()));
        assert!(triples.iter().any(|t| t.p == vocab::of_moving_object()));
    }

    #[test]
    fn raw_template_is_smaller() {
        let mut gen = TripleGenerator::new(raw_position_template());
        let triples = gen.generate(&position_report_vector(&cp().report));
        assert_eq!(triples.len(), 4);
    }

    #[test]
    fn distinct_records_produce_distinct_nodes() {
        let a = cp();
        let mut b = cp();
        b.report.ts = Timestamp::from_secs(200);
        let ta = lift_critical_points(&[a]);
        let tb = lift_critical_points(&[b]);
        assert_ne!(ta[0].s, tb[0].s);
    }
}

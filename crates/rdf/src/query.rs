//! Basic-graph-pattern evaluation.
//!
//! The link-discovery component "continuously applies SPARQL queries on each
//! RDF graph fragment produced by an RDF generator, to filter only those
//! triples relevant to the computation of a relation". The star-join
//! experiment of the knowledge-graph store also evaluates BGPs. This module
//! provides the shared evaluator: conjunctive triple patterns with
//! variables, solved by index-backed nested-loop joins with greedy
//! most-selective-first ordering.

use crate::graph::Graph;
use crate::term::Term;
use std::collections::HashMap;

/// A pattern position: a constant term or a named variable.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    /// Must equal this term.
    Const(Term),
    /// Binds (or must match an existing binding of) this variable.
    Var(String),
}

impl PatternTerm {
    /// Variable shorthand.
    pub fn var(name: impl Into<String>) -> Self {
        PatternTerm::Var(name.into())
    }

    /// Constant shorthand.
    pub fn iri(s: impl AsRef<str>) -> Self {
        PatternTerm::Const(Term::iri(s))
    }
}

/// One triple pattern of a query.
#[derive(Debug, Clone)]
pub struct QueryPattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl QueryPattern {
    /// Creates a pattern.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        Self { s, p, o }
    }
}

/// A solution: variable name → bound term.
pub type Binding = HashMap<String, Term>;

fn resolve<'a>(pt: &'a PatternTerm, binding: &'a Binding) -> Option<&'a Term> {
    match pt {
        PatternTerm::Const(t) => Some(t),
        PatternTerm::Var(name) => binding.get(name),
    }
}

/// Evaluates a conjunction of patterns over a graph, returning all
/// solutions. Patterns are greedily reordered each step to evaluate the one
/// with the most bound positions first.
pub fn evaluate(graph: &Graph, patterns: &[QueryPattern]) -> Vec<Binding> {
    let mut order: Vec<&QueryPattern> = patterns.iter().collect();
    let mut solutions = vec![Binding::new()];
    while !order.is_empty() && !solutions.is_empty() {
        // Selectivity under the first current solution (all share bound vars
        // at this depth only approximately; the greedy heuristic is fine).
        let sample = &solutions[0];
        let best_idx = order
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| {
                [&p.s, &p.p, &p.o]
                    .iter()
                    .filter(|pt| resolve(pt, sample).is_some())
                    .count()
            })
            .map(|(i, _)| i)
            .expect("order non-empty");
        let pattern = order.remove(best_idx);
        let mut next = Vec::new();
        for binding in &solutions {
            let s = resolve(&pattern.s, binding).cloned();
            let p = resolve(&pattern.p, binding).cloned();
            let o = resolve(&pattern.o, binding).cloned();
            for t in graph.matching(s.as_ref(), p.as_ref(), o.as_ref()) {
                let mut b = binding.clone();
                let mut ok = true;
                for (pt, actual) in [(&pattern.s, &t.s), (&pattern.p, &t.p), (&pattern.o, &t.o)] {
                    if let PatternTerm::Var(name) = pt {
                        match b.get(name) {
                            Some(bound) if bound != actual => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                b.insert(name.clone(), actual.clone());
                            }
                        }
                    }
                }
                if ok {
                    next.push(b);
                }
            }
        }
        solutions = next;
    }
    solutions
}

/// Builds a star query: one subject variable `?s` with the given
/// (predicate, object-pattern) arms — the query shape of the store
/// experiment (§4.2.5).
pub fn star_query(arms: &[(Term, PatternTerm)]) -> Vec<QueryPattern> {
    arms.iter()
        .map(|(p, o)| QueryPattern::new(PatternTerm::var("s"), PatternTerm::Const(p.clone()), o.clone()))
        .collect()
}

/// Recognises a BGP as a *star*: every pattern shares one subject
/// variable, every predicate is constant, and each object is either a
/// constant or a variable that appears nowhere else (so the arm is an
/// existence test). Returns the `(predicate, object)` arm list — `None`
/// object for open arms — which is exactly the shape the store's
/// encoded-id executor (`StarQuery`) accepts; returns `None` for anything
/// else (the general [`evaluate`] path handles those).
pub fn as_star(patterns: &[QueryPattern]) -> Option<Vec<(Term, Option<Term>)>> {
    if patterns.is_empty() {
        return None;
    }
    let PatternTerm::Var(subject) = &patterns[0].s else {
        return None;
    };
    // Object variables must be distinct from the subject and from each
    // other: a repeated variable is a join, not an existence test.
    let mut seen_vars = std::collections::HashSet::new();
    let mut arms = Vec::with_capacity(patterns.len());
    for pat in patterns {
        match &pat.s {
            PatternTerm::Var(v) if v == subject => {}
            _ => return None,
        }
        let PatternTerm::Const(p) = &pat.p else {
            return None;
        };
        let o = match &pat.o {
            PatternTerm::Const(t) => Some(t.clone()),
            PatternTerm::Var(v) => {
                if v == subject || !seen_vars.insert(v.clone()) {
                    return None;
                }
                None
            }
        };
        arms.push((p.clone(), o));
    }
    Some(arms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        [
            t("a", "type", "Vessel"),
            t("b", "type", "Vessel"),
            t("c", "type", "Aircraft"),
            t("a", "flag", "GR"),
            t("b", "flag", "MT"),
            t("a", "in", "area1"),
            t("b", "in", "area1"),
            t("c", "in", "area2"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn single_pattern_all_matches() {
        let g = sample();
        let sols = evaluate(
            &g,
            &[QueryPattern::new(PatternTerm::var("x"), PatternTerm::iri("type"), PatternTerm::var("t"))],
        );
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn star_join_conjunction() {
        let g = sample();
        let q = star_query(&[
            (Term::iri("type"), PatternTerm::iri("Vessel")),
            (Term::iri("in"), PatternTerm::iri("area1")),
            (Term::iri("flag"), PatternTerm::var("flag")),
        ]);
        let sols = evaluate(&g, &q);
        assert_eq!(sols.len(), 2);
        let flags: Vec<_> = sols.iter().map(|b| b["flag"].clone()).collect();
        assert!(flags.contains(&Term::iri("GR")));
        assert!(flags.contains(&Term::iri("MT")));
    }

    #[test]
    fn shared_variable_joins_across_patterns() {
        let g = sample();
        // Entities sharing an area with "a", excluding a itself via type arm.
        let q = vec![
            QueryPattern::new(PatternTerm::iri("a"), PatternTerm::iri("in"), PatternTerm::var("area")),
            QueryPattern::new(PatternTerm::var("other"), PatternTerm::iri("in"), PatternTerm::var("area")),
        ];
        let sols = evaluate(&g, &q);
        let others: Vec<_> = sols.iter().map(|b| b["other"].clone()).collect();
        assert!(others.contains(&Term::iri("a")));
        assert!(others.contains(&Term::iri("b")));
        assert!(!others.contains(&Term::iri("c")));
    }

    #[test]
    fn repeated_variable_must_agree() {
        let mut g = Graph::new();
        g.insert(t("x", "p", "x"));
        g.insert(t("x", "p", "y"));
        let q = vec![QueryPattern::new(PatternTerm::var("v"), PatternTerm::iri("p"), PatternTerm::var("v"))];
        let sols = evaluate(&g, &q);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["v"], Term::iri("x"));
    }

    #[test]
    fn unsatisfiable_query_is_empty() {
        let g = sample();
        let q = star_query(&[
            (Term::iri("type"), PatternTerm::iri("Vessel")),
            (Term::iri("in"), PatternTerm::iri("area2")),
        ]);
        assert!(evaluate(&g, &q).is_empty());
    }

    #[test]
    fn empty_pattern_list_yields_unit_solution() {
        let g = sample();
        let sols = evaluate(&g, &[]);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn star_queries_are_recognised() {
        let q = star_query(&[
            (Term::iri("type"), PatternTerm::iri("Vessel")),
            (Term::iri("flag"), PatternTerm::var("flag")),
        ]);
        let arms = as_star(&q).expect("star shape");
        assert_eq!(
            arms,
            vec![
                (Term::iri("type"), Some(Term::iri("Vessel"))),
                (Term::iri("flag"), None),
            ]
        );
    }

    #[test]
    fn non_star_shapes_are_rejected() {
        // Different subject variables.
        let q = vec![
            QueryPattern::new(PatternTerm::var("s"), PatternTerm::iri("p"), PatternTerm::iri("o")),
            QueryPattern::new(PatternTerm::var("t"), PatternTerm::iri("p"), PatternTerm::iri("o")),
        ];
        assert!(as_star(&q).is_none());
        // Constant subject.
        let q = vec![QueryPattern::new(PatternTerm::iri("a"), PatternTerm::iri("p"), PatternTerm::var("o"))];
        assert!(as_star(&q).is_none());
        // Variable predicate.
        let q = vec![QueryPattern::new(PatternTerm::var("s"), PatternTerm::var("p"), PatternTerm::iri("o"))];
        assert!(as_star(&q).is_none());
        // Object variable repeated across arms (a join, not a star arm).
        let q = vec![
            QueryPattern::new(PatternTerm::var("s"), PatternTerm::iri("p"), PatternTerm::var("x")),
            QueryPattern::new(PatternTerm::var("s"), PatternTerm::iri("q"), PatternTerm::var("x")),
        ];
        assert!(as_star(&q).is_none());
        // Object variable equal to the subject.
        let q = vec![QueryPattern::new(PatternTerm::var("s"), PatternTerm::iri("p"), PatternTerm::var("s"))];
        assert!(as_star(&q).is_none());
        // Empty BGP.
        assert!(as_star(&[]).is_none());
    }

    #[test]
    fn as_star_agrees_with_evaluate_on_subjects() {
        let g = sample();
        let q = star_query(&[
            (Term::iri("type"), PatternTerm::iri("Vessel")),
            (Term::iri("flag"), PatternTerm::var("flag")),
        ]);
        let arms = as_star(&q).expect("star shape");
        // The extracted arms, evaluated naively over the graph, bind the
        // same subject set as the general evaluator.
        let via_eval: std::collections::HashSet<Term> =
            evaluate(&g, &q).into_iter().map(|b| b["s"].clone()).collect();
        let via_arms: std::collections::HashSet<Term> = g
            .matching(None, None, None)
            .iter()
            .map(|t| t.s.clone())
            .filter(|s| {
                arms.iter().all(|(p, o)| !g.matching(Some(s), Some(p), o.as_ref()).is_empty())
            })
            .collect();
        assert_eq!(via_eval, via_arms);
    }
}

//! The datAcron ontology vocabulary (§4.1).
//!
//! IRIs for the concepts and relations of the datAcron ontology (Figure 3 of
//! the paper): trajectories, trajectory parts, semantic nodes, raw
//! positions, events, and the spatio-temporal relations link discovery
//! produces (`dul:within` / `geosparql:nearTo`). Namespaces follow the
//! ontologies the datAcron model builds on (DUL, GeoSPARQL, SSN).

use crate::term::Term;

/// datAcron namespace.
pub const DATACRON: &str = "http://www.datacron-project.eu/datAcron#";
/// DOLCE+DnS Ultralite namespace.
pub const DUL: &str = "http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#";
/// GeoSPARQL namespace.
pub const GEO: &str = "http://www.opengis.net/ont/geosparql#";
/// RDF namespace.
pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

/// `rdf:type`.
pub fn rdf_type() -> Term {
    Term::iri(format!("{RDF}type"))
}

/// The `:Trajectory` class.
pub fn trajectory_class() -> Term {
    Term::iri(format!("{DATACRON}Trajectory"))
}

/// The `:TrajectoryPart` class.
pub fn trajectory_part_class() -> Term {
    Term::iri(format!("{DATACRON}TrajectoryPart"))
}

/// The `:SemanticNode` class (critical points / meaningful events along a
/// trajectory).
pub fn semantic_node_class() -> Term {
    Term::iri(format!("{DATACRON}SemanticNode"))
}

/// The `:RawPosition` class.
pub fn raw_position_class() -> Term {
    Term::iri(format!("{DATACRON}RawPosition"))
}

/// The `dul:Event` class.
pub fn event_class() -> Term {
    Term::iri(format!("{DUL}Event"))
}

/// `:hasPart` — trajectory to trajectory part.
pub fn has_part() -> Term {
    Term::iri(format!("{DATACRON}hasPart"))
}

/// `:hasNode` — trajectory part to semantic node.
pub fn has_node() -> Term {
    Term::iri(format!("{DATACRON}hasNode"))
}

/// `:ofMovingObject` — trajectory to moving entity.
pub fn of_moving_object() -> Term {
    Term::iri(format!("{DATACRON}ofMovingObject"))
}

/// `:hasGeometry` — any feature to its WKT geometry.
pub fn has_geometry() -> Term {
    Term::iri(format!("{GEO}hasGeometry"))
}

/// `:hasWKT` — geometry node to WKT serialisation.
pub fn as_wkt() -> Term {
    Term::iri(format!("{GEO}asWKT"))
}

/// `:hasTemporalFeature` — node to timestamp.
pub fn has_time() -> Term {
    Term::iri(format!("{DATACRON}hasTemporalFeature"))
}

/// `:hasSpeed` (m/s).
pub fn has_speed() -> Term {
    Term::iri(format!("{DATACRON}hasSpeed"))
}

/// `:hasHeading` (degrees).
pub fn has_heading() -> Term {
    Term::iri(format!("{DATACRON}hasHeading"))
}

/// `:hasAltitude` (m).
pub fn has_altitude() -> Term {
    Term::iri(format!("{DATACRON}hasAltitude"))
}

/// `:eventType` — semantic node to its critical-point kind.
pub fn event_type() -> Term {
    Term::iri(format!("{DATACRON}eventType"))
}

/// `dul:within` — the containment relation link discovery materialises.
pub fn within() -> Term {
    Term::iri(format!("{DUL}within"))
}

/// `geosparql:nearTo` — the proximity relation link discovery materialises.
pub fn near_to() -> Term {
    Term::iri(format!("{GEO}nearTo"))
}

/// `:occurredAt` — event to spatio-temporal anchor.
pub fn occurred_at() -> Term {
    Term::iri(format!("{DATACRON}occurredAt"))
}

/// `:reportedBy` — position to data source.
pub fn reported_by() -> Term {
    Term::iri(format!("{DATACRON}reportedBy"))
}

/// IRI of a moving entity.
pub fn entity_iri(entity: datacron_geo::EntityId) -> Term {
    Term::iri(format!("{DATACRON}{}/{}", entity.kind, entity.id))
}

/// IRI of an entity's trajectory.
pub fn trajectory_iri(entity: datacron_geo::EntityId) -> Term {
    Term::iri(format!("{DATACRON}trajectory/{}/{}", entity.kind, entity.id))
}

/// IRI of a semantic node of an entity's trajectory at a timestamp.
pub fn node_iri(entity: datacron_geo::EntityId, ts_ms: i64) -> Term {
    Term::iri(format!("{DATACRON}node/{}/{}/{}", entity.kind, entity.id, ts_ms))
}

/// IRI of a stationary region.
pub fn region_iri(region_id: u64) -> Term {
    Term::iri(format!("{DATACRON}region/{region_id}"))
}

/// IRI of a port.
pub fn port_iri(port_id: u64) -> Term {
    Term::iri(format!("{DATACRON}port/{port_id}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::EntityId;

    #[test]
    fn iris_are_namespaced() {
        assert!(trajectory_class().as_iri().unwrap().starts_with(DATACRON));
        assert!(within().as_iri().unwrap().starts_with(DUL));
        assert!(near_to().as_iri().unwrap().starts_with(GEO));
        assert!(rdf_type().as_iri().unwrap().ends_with("type"));
    }

    #[test]
    fn entity_iris_are_unique_per_kind() {
        let v = entity_iri(EntityId::vessel(7));
        let a = entity_iri(EntityId::aircraft(7));
        assert_ne!(v, a);
        assert!(v.as_iri().unwrap().contains("vessel/7"));
    }

    #[test]
    fn node_iris_encode_time() {
        let n1 = node_iri(EntityId::vessel(1), 1000);
        let n2 = node_iri(EntityId::vessel(1), 2000);
        assert_ne!(n1, n2);
    }
}

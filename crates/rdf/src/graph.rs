//! An in-memory RDF graph with lookup indexes.
//!
//! This is the working representation of RDF fragments as they flow between
//! components (link discovery applies its filter queries on each generated
//! fragment). Persistent, partitioned storage with dictionary encoding lives
//! in `datacron-store`.

use crate::term::{Term, Triple};
use std::collections::{HashMap, HashSet};

/// An in-memory triple set with SPO/POS/OSP hash indexes.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_s: HashMap<Term, Vec<usize>>,
    by_p: HashMap<Term, Vec<usize>>,
    by_o: HashMap<Term, Vec<usize>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; returns `false` for duplicates (set semantics).
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.seen.insert(t.clone()) {
            return false;
        }
        let idx = self.triples.len();
        self.by_s.entry(t.s.clone()).or_default().push(idx);
        self.by_p.entry(t.p.clone()).or_default().push(idx);
        self.by_o.entry(t.o.clone()).or_default().push(idx);
        self.triples.push(t);
        true
    }

    /// Inserts many triples.
    pub fn extend(&mut self, ts: impl IntoIterator<Item = Triple>) {
        for t in ts {
            self.insert(t);
        }
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.seen.contains(t)
    }

    /// Triples matching a `(s?, p?, o?)` mask, using the most selective
    /// available index.
    pub fn matching(&self, s: Option<&Term>, p: Option<&Term>, o: Option<&Term>) -> Vec<&Triple> {
        let candidates: Box<dyn Iterator<Item = usize> + '_> = match (s, p, o) {
            (Some(s), _, _) => Box::new(self.by_s.get(s).into_iter().flatten().copied()),
            (None, _, Some(o)) => Box::new(self.by_o.get(o).into_iter().flatten().copied()),
            (None, Some(p), None) => Box::new(self.by_p.get(p).into_iter().flatten().copied()),
            (None, None, None) => Box::new(0..self.triples.len()),
        };
        candidates
            .map(|i| &self.triples[i])
            .filter(|t| {
                s.is_none_or(|s| &t.s == s) && p.is_none_or(|p| &t.p == p) && o.is_none_or(|o| &t.o == o)
            })
            .collect()
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: &Term, p: &Term) -> Vec<&Term> {
        self.matching(Some(s), Some(p), None).into_iter().map(|t| &t.o).collect()
    }

    /// Subjects of `(?, p, o)`.
    pub fn subjects(&self, p: &Term, o: &Term) -> Vec<&Term> {
        self.matching(None, Some(p), Some(o)).into_iter().map(|t| &t.s).collect()
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        [
            t("a", "knows", "b"),
            t("a", "knows", "c"),
            t("b", "knows", "c"),
            t("a", "name", "x"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert(t("a", "p", "b")));
        assert!(!g.insert(t("a", "p", "b")));
        assert_eq!(g.len(), 1);
        assert!(g.contains(&t("a", "p", "b")));
    }

    #[test]
    fn matching_by_each_position() {
        let g = sample();
        assert_eq!(g.matching(Some(&Term::iri("a")), None, None).len(), 3);
        assert_eq!(g.matching(None, Some(&Term::iri("knows")), None).len(), 3);
        assert_eq!(g.matching(None, None, Some(&Term::iri("c"))).len(), 2);
        assert_eq!(g.matching(None, None, None).len(), 4);
        assert_eq!(
            g.matching(Some(&Term::iri("a")), Some(&Term::iri("knows")), Some(&Term::iri("b"))).len(),
            1
        );
        assert!(g.matching(Some(&Term::iri("zz")), None, None).is_empty());
    }

    #[test]
    fn objects_and_subjects() {
        let g = sample();
        let objs = g.objects(&Term::iri("a"), &Term::iri("knows"));
        assert_eq!(objs.len(), 2);
        let subs = g.subjects(&Term::iri("knows"), &Term::iri("c"));
        assert_eq!(subs.len(), 2);
    }
}
